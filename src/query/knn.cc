#include "query/knn.h"

#include <algorithm>
#include <queue>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "query/kernels.h"
#include "storage/prefetch.h"

namespace dqmo {
namespace {

/// Moving-kNN fence economics: how often the cached candidate set answered
/// a frame without touching the index at all.
struct KnnMetrics {
  Counter* full_searches;
  Counter* cache_answers;
  Histogram* nodes_per_search;

  static KnnMetrics& Get() {
    static KnnMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return KnnMetrics{
          r.GetCounter("dqmo_knn_full_searches_total",
                       "Moving-kNN frames that ran a full index search"),
          r.GetCounter("dqmo_knn_cache_answers_total",
                       "Moving-kNN frames answered from the cached fence"),
          r.GetHistogram("dqmo_knn_nodes_per_search",
                         "Node loads (physical + decoded) per full search"),
      };
    }();
    return m;
  }
};

struct HeapEntry {
  double min_distance;
  bool is_object;
  PageId page = kInvalidPageId;
  StBox bounds;  // When !is_object: parent-entry box (empty for root).
  MotionSegment motion;

  friend bool operator>(const HeapEntry& a, const HeapEntry& b) {
    return a.min_distance > b.min_distance;
  }
};

/// Min-heap with a read-only window onto its backing array: raw()[0] is the
/// top and the heap-property prefix clusters the nearest entries — the
/// pages worth speculating on. The heap invariant is never touched.
struct MinHeap
    : std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                          std::greater<>> {
  const std::vector<HeapEntry>& raw() const { return c; }
};

/// Hints the prefetcher with the node pages in the heap's front region.
/// Called after a node pop, before its scan, so speculative reads overlap
/// the node's CPU work.
void HintPrefetch(const KnnOptions& options, const MinHeap& heap,
                  std::vector<PageId>* scratch) {
  Prefetcher* pf = options.prefetcher;
  if (pf == nullptr || pf->depth() == 0 || heap.empty()) return;
  const std::vector<HeapEntry>& raw = heap.raw();
  const size_t window = std::min(raw.size(), 2 * pf->depth() + 4);
  scratch->clear();
  for (size_t i = 0; i < window; ++i) {
    if (raw[i].is_object) continue;
    scratch->push_back(raw[i].page);
    if (scratch->size() >= pf->depth()) break;
  }
  if (scratch->empty()) return;
  QueryBudget* budget = options.budget;
  pf->Hint(scratch->data(), scratch->size(),
           budget == nullptr
               ? Prefetcher::ChargeFn()
               : Prefetcher::ChargeFn(
                     [budget] { return budget->TryChargePrefetch(); }));
}

}  // namespace

Result<std::vector<Neighbor>> KnnAt(const RTree& tree, const Vec& point,
                                    double t, int k, QueryStats* stats,
                                    PageReader* reader, double prune_bound) {
  KnnOptions options;
  options.reader = reader;
  options.prune_bound = prune_bound;
  return KnnAt(tree, point, t, k, stats, options);
}

Result<std::vector<Neighbor>> KnnAt(const RTree& tree, const Vec& point,
                                    double t, int k, QueryStats* stats,
                                    const KnnOptions& options) {
  if (k < 1) return Status::InvalidArgument("k must be >= 1");
  if (point.dims != tree.dims()) {
    return Status::InvalidArgument("query point dims mismatch");
  }
  DQMO_CHECK(stats != nullptr);

  std::vector<Neighbor> best;  // Sorted ascending by distance, size <= k.
  auto worst_bound = [&]() {
    return static_cast<int>(best.size()) < k
               ? options.prune_bound
               : std::min(options.prune_bound, best.back().distance);
  };

  // Kernel outputs, reused across every node scan of this search.
  std::vector<double> dist_scratch;
  std::vector<uint8_t> alive_scratch;
  std::vector<PageId> hint_scratch;
  const bool soa = options.hot_path == HotPath::kSoa;

  Tracer::SpanScope heap_span(SpanKind::kHeapOp);
  MinHeap heap;
  heap.push(HeapEntry{0.0, false, tree.root(), StBox(), {}});
  while (!heap.empty()) {
    HeapEntry top = std::move(const_cast<HeapEntry&>(heap.top()));
    heap.pop();
    if (top.min_distance > worst_bound()) break;  // Nothing closer remains.
    if (top.is_object) {
      best.push_back(Neighbor{std::move(top.motion), top.min_distance});
      std::inplace_merge(best.begin(), best.end() - 1, best.end(),
                         [](const Neighbor& a, const Neighbor& b) {
                           return a.distance < b.distance;
                         });
      if (static_cast<int>(best.size()) > k) best.pop_back();
      continue;
    }
    if (options.budget != nullptr && !options.budget->TryChargeNode()) {
      // Out of budget: every remaining node is skipped (already-enqueued
      // objects may still surface); the degraded-kNN contract applies.
      if (options.skip_report != nullptr) {
        options.skip_report->RecordSkip(top.page, top.bounds,
                                        options.budget->StopStatus());
      }
      stats->pages_skipped.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Declare the heap's nearest node pages before the (synchronous) scan
    // of this one: the speculative reads land while it is scanned.
    HintPrefetch(options, heap, &hint_scratch);
    if (soa) {
      DQMO_ASSIGN_OR_RETURN(
          std::shared_ptr<const SoaNode> node,
          tree.LoadNodeSoaOrSkip(top.page, top.bounds, options.fault_policy,
                                 options.skip_report, stats,
                                 options.reader));
      if (node == nullptr) continue;  // Subtree skipped.
      // Legacy charges one distance computation per entry before the alive
      // filter; the kernels evaluate exactly those entries. `best` cannot
      // change during one node scan (only object pops change it), so the
      // bound is loop-invariant here exactly as in the legacy loop.
      stats->distance_computations.fetch_add(
          static_cast<uint64_t>(node->count), std::memory_order_relaxed);
      const double bound = worst_bound();
      if (node->is_leaf()) {
        KnnLeafDistanceBatch(*node, t, point, &dist_scratch, &alive_scratch);
        for (int i = 0; i < node->count; ++i) {
          if (alive_scratch[static_cast<size_t>(i)] == 0) continue;
          const double d = dist_scratch[static_cast<size_t>(i)];
          if (d > bound) continue;
          heap.push(
              HeapEntry{d, true, kInvalidPageId, StBox(), node->SegmentAt(i)});
        }
      } else {
        KnnEntryDistanceBatch(*node, t, point, &dist_scratch,
                              &alive_scratch);
        for (int i = 0; i < node->count; ++i) {
          if (alive_scratch[static_cast<size_t>(i)] == 0) continue;
          const double d = dist_scratch[static_cast<size_t>(i)];
          if (d > bound) continue;
          heap.push(HeapEntry{d, false,
                              node->child[static_cast<size_t>(i)],
                              node->EntryBoundsAt(i),
                              {}});
        }
      }
      continue;
    }
    DQMO_ASSIGN_OR_RETURN(
        std::optional<Node> maybe_node,
        tree.LoadNodeOrSkip(top.page, top.bounds, options.fault_policy,
                            options.skip_report, stats, options.reader));
    if (!maybe_node.has_value()) continue;  // Subtree skipped.
    const Node& node = *maybe_node;
    if (node.is_leaf()) {
      for (const MotionSegment& m : node.segments) {
        ++stats->distance_computations;
        if (!m.seg.time.Contains(t)) continue;  // Not alive at t.
        const double d = m.seg.DistanceAt(t, point);
        if (d > worst_bound()) continue;
        heap.push(HeapEntry{d, true, kInvalidPageId, StBox(), m});
      }
    } else {
      for (const ChildEntry& e : node.children) {
        ++stats->distance_computations;
        if (!e.bounds.time.Contains(t)) continue;
        const double d = e.bounds.spatial.MinDistance(point);
        if (d > worst_bound()) continue;
        heap.push(HeapEntry{d, false, e.child, e.bounds, {}});
      }
    }
  }
  stats->objects_returned += best.size();
  return best;
}

MovingKnnQuery::MovingKnnQuery(const RTree* tree, int k,
                               const Options& options)
    : tree_(tree), k_(k), options_(options) {
  DQMO_CHECK(tree != nullptr);
  DQMO_CHECK(k >= 1);
}

MovingKnnQuery::MovingKnnQuery(const RTree* tree, int k)
    : MovingKnnQuery(tree, k, Options()) {}

Result<std::vector<Neighbor>> MovingKnnQuery::At(double t,
                                                 const Vec& point) {
  if (t < previous_t_) {
    return Status::InvalidArgument(
        "moving kNN instants must be non-decreasing");
  }
  previous_t_ = t;
  skip_report_.Reset();

  // Try to answer from the cached candidate set.
  if (has_cache_ && tree_->stamp() == cache_stamp_) {
    // Every cached candidate must still be represented by its cached
    // segment; a rolled-over segment means the object's current position
    // is not in the cache.
    bool all_alive = true;
    std::vector<Neighbor> now;
    now.reserve(cached_.size());
    for (const Neighbor& n : cached_) {
      if (!n.motion.seg.time.Contains(t)) {
        all_alive = false;
        break;
      }
      ++stats_.distance_computations;
      now.push_back(Neighbor{n.motion, n.motion.seg.DistanceAt(t, point)});
    }
    if (all_alive && static_cast<int>(now.size()) >= k_) {
      std::sort(now.begin(), now.end(),
                [](const Neighbor& a, const Neighbor& b) {
                  return a.distance < b.distance;
                });
      const double moved = point.DistanceTo(cache_point_);
      const double drift = tree_->max_speed() * (t - cache_t_);
      const double safe =
          fence_ - moved - drift - options_.discontinuity_margin;
      const double kth = now[static_cast<size_t>(k_) - 1].distance;
      if (kth <= safe) {
        now.resize(static_cast<size_t>(k_));
        ++cache_answers_;
        KnnMetrics::Get().cache_answers->Add();
        stats_.objects_returned += now.size();
        return now;
      }
    }
  }

  // Full search: fetch k + m candidates and rebuild the fence.
  KnnOptions knn_options;
  knn_options.reader = options_.reader;
  knn_options.fault_policy = options_.fault_policy;
  knn_options.skip_report = &skip_report_;
  knn_options.hot_path = options_.hot_path;
  knn_options.budget = options_.budget;
  knn_options.prefetcher = options_.prefetcher;
  const uint64_t loads0 = stats_.node_reads.load(std::memory_order_relaxed) +
                          stats_.decoded_hits.load(std::memory_order_relaxed);
  DQMO_ASSIGN_OR_RETURN(
      std::vector<Neighbor> candidates,
      KnnAt(*tree_, point, t, fetch_count(), &stats_, knn_options));
  ++full_searches_;
  KnnMetrics& km = KnnMetrics::Get();
  km.full_searches->Add();
  km.nodes_per_search->Record(
      stats_.node_reads.load(std::memory_order_relaxed) +
      stats_.decoded_hits.load(std::memory_order_relaxed) - loads0);
  if (skip_report_.pages_skipped() == 0) {
    has_cache_ = true;
    cached_ = candidates;
    fence_ = static_cast<int>(candidates.size()) < fetch_count()
                 ? kInf
                 : candidates.back().distance;
    cache_t_ = t;
    cache_point_ = point;
    cache_stamp_ = tree_->stamp();
  } else {
    // Degraded search: the candidate set may miss true neighbors, so a
    // fence built from it is unsound — answer this frame degraded but make
    // the next frame re-search the (hopefully recovered) index.
    has_cache_ = false;
  }

  if (static_cast<int>(candidates.size()) > k_) {
    candidates.resize(static_cast<size_t>(k_));
  }
  return candidates;
}

}  // namespace dqmo
