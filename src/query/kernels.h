// Batch-prune kernels over SoA-decoded nodes — the compute half of the
// zero-copy query hot path (rtree/node_soa.h is the data half).
//
// Each kernel evaluates one node-wide prune decision for *all* entries of a
// decoded node at once, reading the node's column arrays with stride-1
// loads: PDQ trajectory-overlap candidacy, NPDQ discardability under double
// temporal axes, and kNN minimum-distance lower bounds. The query drivers
// (pdq.cc / npdq.cc / knn.cc) call these and then act on the per-entry
// results, instead of re-deriving geometry entry by entry through AoS
// structs.
//
// Bit-identity contract: every kernel reproduces the legacy per-entry
// scalar code (Trajectory::OverlapTimes, npdq.cc's Discardable,
// Box::MinDistance / StSegment::DistanceAt) operation-for-operation — same
// IEEE ops in the same order, division kept as division, no FMA
// contraction — so batch results are bit-identical to the AoS path. The
// AVX2 variants emulate std::min/std::max with compare+blend (NOT
// vminpd/vmaxpd, which differ on signed zeros) and are therefore also
// bit-identical; tests/kernels_test.cc enforces all of this property-style.
//
// Dispatch: ActiveSimdLevel() picks AVX2 when the CPU supports it, unless
// the DQMO_DISABLE_SIMD environment variable is set (CI exercises the
// fallback) or a test pinned a level via ForceSimdLevel().
#ifndef DQMO_QUERY_KERNELS_H_
#define DQMO_QUERY_KERNELS_H_

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "geom/box.h"
#include "geom/timeset.h"
#include "geom/trajectory.h"
#include "geom/vec.h"
#include "rtree/node_soa.h"

namespace dqmo {

/// Instruction-set tier a kernel runs at.
enum class SimdLevel {
  kScalar,  // Portable C++ (auto-vectorization friendly).
  kAvx2,    // 4-wide double lanes via AVX2 intrinsics.
};

const char* SimdLevelName(SimdLevel level);

/// The level kernels currently dispatch to: a forced level if one is set,
/// else the detected one (AVX2 iff the CPU supports it and the
/// DQMO_DISABLE_SIMD environment variable is unset/"0"). Thread-safe.
SimdLevel ActiveSimdLevel();

/// Pins the dispatch level (tests / ablations); nullopt returns to
/// auto-detection. Forcing kAvx2 on a CPU without AVX2 is the caller's
/// crash to keep.
void ForceSimdLevel(std::optional<SimdLevel> level);

/// Per-segment linear border coefficients of a query trajectory, hoisted
/// out of the per-entry loops: for segment j and dimension i the window's
/// upper/lower borders are U(t) = a + b*t exactly as trapezoid.cc's
/// file-local Linear::Through computes them. Build once per trajectory.
struct TrajectoryCoeffs {
  struct Border {
    double a = 0.0;
    double b = 0.0;
  };
  struct Seg {
    Interval time;
    std::array<Border, kMaxSpatialDims> upper{};
    std::array<Border, kMaxSpatialDims> lower{};
  };

  int dims = 2;
  std::vector<Seg> segs;

  static TrajectoryCoeffs Build(const QueryTrajectory& trajectory);
};

/// PDQ internal-node candidacy: (*out)[k] becomes
/// trajectory.OverlapTimes(entry k's bounds) for every entry of the
/// internal node. `out` is grown to node.count if needed and the first
/// node.count TimeSets are Clear()ed and refilled in place (capacity
/// reuse). Dispatches scalar/AVX2.
void PdqOverlapBoxBatch(const TrajectoryCoeffs& coeffs, const SoaNode& node,
                        std::vector<TimeSet>* out);

/// PDQ leaf candidacy: (*out)[k] becomes
/// trajectory.OverlapTimes(segment k) for every motion segment of the
/// leaf. Scalar only: the linear-solve branch structure depends on
/// per-entry velocity signs, which defeats lane-uniform vectorization.
void PdqOverlapSegmentsBatch(const TrajectoryCoeffs& coeffs,
                             const SoaNode& node, std::vector<TimeSet>* out);

/// NPDQ per-entry decision for an internal node.
enum : uint8_t {
  kNpdqSkip = 0,     // !entry.bounds.Overlaps(q): prune silently.
  kNpdqDiscard = 1,  // Overlaps but Discardable(p, q, entry): count+prune.
  kNpdqVisit = 2,    // Recurse into the child.
};

/// Classifies every entry of an internal node for NPDQ snapshot `q` with
/// usable previous snapshot `p` (nullptr when no previous is usable:
/// entries then never classify as kNpdqDiscard). `intersection_contained`
/// selects the Lemma-1 spatial rule (true) vs whole-node containment.
/// `out` is resized to node.count.
void NpdqClassifyBatch(const StBox* p, const StBox& q,
                       bool intersection_contained, const SoaNode& node,
                       std::vector<uint8_t>* out);

/// NPDQ leaf emission: (*out)[k] = 1 iff leaf segment k satisfies snapshot
/// `q` and was *not* already retrieved by usable previous snapshot `p`
/// (nullptr when no previous is usable — segments then only need to
/// satisfy `q`). `exact` selects LeafSemantics::kExact (space-time line
/// intersection; scalar only, the solve branches on per-entry velocity
/// signs) vs bounding-box semantics (dispatches scalar/AVX2). `out` is
/// resized to node.count.
///
/// Bounding-box bit-identity note: the legacy test is
/// QuantizeOutward(m.Bounds()).Overlaps(box), but leaf columns hold
/// float32 page values widened to double, and outward float quantization
/// is the identity on float-representable doubles (the cast is exact, so
/// neither bound moves). The kernel therefore tests Bounds() overlap
/// directly from the columns; tests/kernels_test.cc verifies the
/// equivalence against the quantizing legacy code property-style.
void NpdqLeafMatchBatch(const StBox* p, const StBox& q, bool exact,
                        const SoaNode& node, std::vector<uint8_t>* out);

/// kNN internal-node lower bounds: for every entry,
/// (*alive)[k] = entry.bounds.time.Contains(t) and
/// (*dist)[k] = entry.bounds.spatial.MinDistance(point). Distances of
/// non-alive entries are unspecified. Both outputs are resized to
/// node.count. Dispatches scalar/AVX2.
void KnnEntryDistanceBatch(const SoaNode& node, double t, const Vec& point,
                           std::vector<double>* dist,
                           std::vector<uint8_t>* alive);

/// kNN leaf distances: for every motion segment,
/// (*alive)[k] = segment.time.Contains(t) and
/// (*dist)[k] = segment.DistanceAt(t, point). Distances of non-alive
/// segments are unspecified. Dispatches scalar/AVX2.
void KnnLeafDistanceBatch(const SoaNode& node, double t, const Vec& point,
                          std::vector<double>* dist,
                          std::vector<uint8_t>* alive);

}  // namespace dqmo

#endif  // DQMO_QUERY_KERNELS_H_
