#include "query/join.h"

#include <unordered_map>

#include "common/check.h"

namespace dqmo {
namespace {

/// Memoizing node loader: during one join, each node of each tree is read
/// (and charged) at most once, as in a pinned synchronized traversal.
class NodeCache {
 public:
  NodeCache(const RTree* tree, PageReader* reader, QueryStats* stats)
      : tree_(tree), reader_(reader), stats_(stats) {}

  Result<const Node*> Get(PageId pid) {
    auto it = cache_.find(pid);
    if (it != cache_.end()) return &it->second;
    DQMO_ASSIGN_OR_RETURN(Node node, tree_->LoadNode(pid, stats_, reader_));
    auto [pos, inserted] = cache_.emplace(pid, std::move(node));
    (void)inserted;
    return &pos->second;
  }

 private:
  const RTree* tree_;
  PageReader* reader_;
  QueryStats* stats_;
  std::unordered_map<PageId, Node> cache_;
};

/// Prune test for a pair of space-time boxes.
bool PairViable(const StBox& a, const StBox& b, const Interval& window,
                double delta) {
  const Interval times = a.time.Intersect(b.time).Intersect(window);
  if (times.empty()) return false;
  return a.spatial.MinDistance(b.spatial) <= delta;
}

struct JoinDriver {
  NodeCache* left_cache;
  NodeCache* right_cache;
  const DistanceJoinOptions* options;
  QueryStats* stats;
  bool self_join;
  std::vector<JoinPair>* out;

  Status LeafPairs(const Node& a, const Node& b) {
    for (const MotionSegment& ma : a.segments) {
      for (const MotionSegment& mb : b.segments) {
        if (self_join) {
          // Report unordered pairs once; skip same-object pairs
          // (consecutive segments of one trajectory trivially touch).
          if (ma.oid == mb.oid) continue;
          if (!(ma.key() < mb.key())) continue;
        }
        ++stats->distance_computations;
        const Interval close = WithinDistanceTime(
            ma.seg, mb.seg, options->delta, options->time_window);
        if (close.empty()) continue;
        out->push_back(JoinPair{ma, mb, close});
        ++stats->objects_returned;
      }
    }
    return Status::OK();
  }

  Status Visit(PageId left_pid, PageId right_pid) {
    DQMO_ASSIGN_OR_RETURN(const Node* a, left_cache->Get(left_pid));
    DQMO_ASSIGN_OR_RETURN(const Node* b, right_cache->Get(right_pid));
    if (a->is_leaf() && b->is_leaf()) return LeafPairs(*a, *b);

    // Expand the non-leaf side; with two internal nodes, expand the
    // higher-level one so the traversal stays balanced.
    const bool expand_left =
        !a->is_leaf() && (b->is_leaf() || a->level >= b->level);
    if (expand_left) {
      const StBox b_bounds = b->ComputeBounds();
      // Copy the children: the cache may rehash (invalidating `a`) while
      // descendants are loaded during recursion.
      const std::vector<ChildEntry> children = a->children;
      for (const ChildEntry& e : children) {
        ++stats->distance_computations;
        if (!PairViable(e.bounds, b_bounds, options->time_window,
                        options->delta)) {
          continue;
        }
        DQMO_RETURN_IF_ERROR(Visit(e.child, right_pid));
      }
      return Status::OK();
    }
    const StBox a_bounds = a->ComputeBounds();
    const std::vector<ChildEntry> children = b->children;
    for (const ChildEntry& e : children) {
      ++stats->distance_computations;
      if (!PairViable(a_bounds, e.bounds, options->time_window,
                      options->delta)) {
        continue;
      }
      DQMO_RETURN_IF_ERROR(Visit(left_pid, e.child));
    }
    return Status::OK();
  }
};

Result<std::vector<JoinPair>> RunJoin(const RTree& left, const RTree& right,
                                      const DistanceJoinOptions& options,
                                      QueryStats* stats, bool self_join) {
  if (left.dims() != right.dims()) {
    return Status::InvalidArgument("joined trees differ in dimensionality");
  }
  if (options.delta < 0.0) {
    return Status::InvalidArgument("join distance must be >= 0");
  }
  DQMO_CHECK(stats != nullptr);
  std::vector<JoinPair> out;
  NodeCache left_cache(&left, options.left_reader, stats);
  // For a self-join, share one cache so each node is read once overall.
  NodeCache right_cache_storage(&right, options.right_reader, stats);
  NodeCache* right_cache = self_join ? &left_cache : &right_cache_storage;
  JoinDriver driver{&left_cache, right_cache, &options, stats, self_join,
                    &out};
  DQMO_RETURN_IF_ERROR(driver.Visit(left.root(), right.root()));
  return out;
}

}  // namespace

Result<std::vector<JoinPair>> DistanceJoin(const RTree& left,
                                           const RTree& right,
                                           const DistanceJoinOptions& options,
                                           QueryStats* stats) {
  return RunJoin(left, right, options, stats, /*self_join=*/false);
}

Result<std::vector<JoinPair>> SelfDistanceJoin(
    const RTree& tree, const DistanceJoinOptions& options,
    QueryStats* stats) {
  return RunJoin(tree, tree, options, stats, /*self_join=*/true);
}

}  // namespace dqmo
