// Predictive Dynamic Query processing (Sect. 4.1 of the paper).
//
// A PDQ is associated with a known query trajectory (key snapshots). One
// priority-queue traversal of the R-tree, ordered by the time each index
// entry *enters* the moving query window, serves every frame of the dynamic
// query incrementally: each node is read at most once for the whole query,
// independent of the frame rate, and each object is returned exactly once,
// together with the time set during which it stays in view (so the client
// cache can evict it at its disappearance time).
#ifndef DQMO_QUERY_PDQ_H_
#define DQMO_QUERY_PDQ_H_

#include <deque>
#include <memory>
#include <optional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "common/result.h"
#include "geom/trajectory.h"
#include "motion/motion_segment.h"
#include "query/budget.h"
#include "query/kernels.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace dqmo {

class Prefetcher;

/// One retrieved object plus the exact times it is inside the moving window.
struct PdqResult {
  MotionSegment motion;
  TimeSet visible_times;
};

/// Priority-queue evaluator for predictive dynamic queries.
///
/// Not thread-safe; one instance per running dynamic query, exactly like
/// the per-query priority queue of the paper.
class PredictiveDynamicQuery : public UpdateListener {
 public:
  /// How the processor reacts when an insertion creates new index nodes
  /// (Sect. 4.1, Update Management).
  enum class UpdatePolicy {
    /// Push the lowest-common-ancestor entry of the new nodes into the
    /// queue; duplicates are eliminated when popped (the paper's default).
    kLcaInsert,
    /// Empty the queue and rebuild from the root (the paper's alternative
    /// for splits near the root). Already-returned objects stay suppressed;
    /// node re-reads are re-charged, which is the cost this policy trades.
    kRebuild,
  };

  struct Options {
    /// Page source for reads; nullptr uses the tree's backing file.
    PageReader* reader = nullptr;
    /// Subscribe to concurrent insertions. When false the query assumes a
    /// static (historical) database, the common case in the paper.
    bool track_updates = false;
    UpdatePolicy update_policy = UpdatePolicy::kLcaInsert;
    /// With kLcaInsert: if the reported subtree's level is >= this value,
    /// fall back to a rebuild anyway ("if the lowest common ancestor ... is
    /// close to the root, it is better to empty the priority queues").
    /// Default never triggers.
    int rebuild_level_threshold = 1 << 20;
    /// Reaction to unreadable nodes (rtree/fault_policy.h). Under
    /// kSkipSubtree an unexplorable subtree is dropped from the queue and
    /// recorded in skip_report(); results become a subset of the fault-free
    /// answer and integrity() flips to kPartial.
    FaultPolicy fault_policy = FaultPolicy::kFailFast;
    /// kSoa explores nodes through the decoded-node cache and the batch
    /// kernels (query/kernels.h); kLegacyAos keeps the original per-entry
    /// path. Results and counters are bit-identical either way.
    HotPath hot_path = HotPath::kSoa;
    /// Per-frame work budget + cancellation (query/budget.h); not owned,
    /// may be null (unbudgeted — the bit-identical default). One node
    /// charge per queue pop of a node item; a failed charge requeues the
    /// node for a later frame, records it in skip_report(), and ends the
    /// frame degraded (kPartial) with the results found so far.
    QueryBudget* budget = nullptr;
    /// Speculative read driver (storage/prefetch.h); not owned, may be null
    /// (no speculation — the bit-identical default). The priority queue IS
    /// the declared future: before exploring a popped node the query peeks
    /// the heap's front region and hints the node pages most imminent to
    /// pop, so their disk reads land while this node's entries are being
    /// decoded and filtered. Results and node-level counters are unchanged;
    /// only prefetch_* IoStats counters move. Pair with `budget` to bound
    /// speculation per frame (Limits::prefetch_budget).
    Prefetcher* prefetcher = nullptr;
  };

  /// Creates the processor. `tree` must outlive it. `trajectory` dims must
  /// match the tree's.
  static Result<std::unique_ptr<PredictiveDynamicQuery>> Make(
      RTree* tree, QueryTrajectory trajectory, const Options& options);

  /// Creates the processor with default options (static database reads).
  static Result<std::unique_ptr<PredictiveDynamicQuery>> Make(
      RTree* tree, QueryTrajectory trajectory);

  ~PredictiveDynamicQuery() override;

  PredictiveDynamicQuery(const PredictiveDynamicQuery&) = delete;
  PredictiveDynamicQuery& operator=(const PredictiveDynamicQuery&) = delete;

  /// The paper's getNext(t_start, t_end): returns the next object that is
  /// inside the moving window at some instant of [t_start, t_end] and has
  /// not been returned before, or nullopt when no (more) such object exists
  /// yet. Frames must advance monotonically: t_start must be >= the
  /// t_start of every previous call.
  Result<std::optional<PdqResult>> GetNext(double t_start, double t_end);

  /// Drains GetNext for one frame interval: all newly visible objects in
  /// [t_start, t_end].
  Result<std::vector<PdqResult>> Frame(double t_start, double t_end);

  const QueryTrajectory& trajectory() const { return trajectory_; }
  const QueryStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Subtrees skipped so far (only populated under kSkipSubtree);
  /// accumulates over the whole life of the query.
  const SkipReport& skip_report() const { return skip_report_; }
  /// kPartial once any subtree was skipped.
  ResultIntegrity integrity() const { return skip_report_.integrity(); }

  // UpdateListener interface (invoked by the tree when track_updates).
  void OnObjectInserted(const MotionSegment& m) override;
  void OnSubtreeCreated(const ChildEntry& subtree, int level) override;
  void OnRootSplit(PageId new_root) override;

 private:
  PredictiveDynamicQuery(RTree* tree, QueryTrajectory trajectory,
                         const Options& options);

  struct Item {
    double priority = 0.0;  // Earliest remaining time the item is in view.
    bool is_object = false;
    PageId page = kInvalidPageId;  // When !is_object.
    StBox bounds;  // When !is_object: parent-entry box (empty for root).
    MotionSegment motion;          // When is_object.
    TimeSet times;
  };

  struct ItemCompare {
    bool operator()(const Item& a, const Item& b) const {
      return a.priority > b.priority;  // Min-heap on priority.
    }
  };

  /// Min-heap with a window onto its backing array: raw()[0] is the top and
  /// the heap-property prefix around it holds the most-imminent items —
  /// exactly the pages worth speculating on. Read-only access; the heap
  /// invariant is never touched.
  struct PeekQueue
      : std::priority_queue<Item, std::vector<Item>, ItemCompare> {
    const std::vector<Item>& raw() const { return c; }
  };

  void PushNodeItem(PageId page, const StBox& bounds, TimeSet times,
                    double not_before);
  void PushObjectItem(const MotionSegment& m, TimeSet times,
                      double not_before);
  /// Hints the prefetcher with the node pages in the heap's front region
  /// (no-op without a prefetcher). Called after a node pop, before its
  /// exploration, so speculative reads overlap the node's CPU work.
  void HintPrefetch();
  void RebuildFromRoot();
  Status Explore(const Item& node_item, double t_start);
  Status ExploreLegacy(const Item& node_item, double t_start);

  /// Identity of a popped item, recorded for duplicate elimination without
  /// copying the item's TimeSet/MotionSegment payload.
  struct DedupKey {
    bool is_object = false;
    PageId page = kInvalidPageId;
    MotionSegment::Key key{0, 0.0};

    bool Matches(const Item& item) const {
      if (is_object != item.is_object) return false;
      if (is_object) return key == item.motion.key();
      return page == item.page;
    }
  };

  /// Pop-side duplicate elimination (footnote 2 of the paper): identities
  /// popped at the current priority value.
  bool IsDuplicate(const Item& item);

  RTree* tree_;
  QueryTrajectory trajectory_;
  Options options_;
  TrajectoryCoeffs coeffs_;
  PeekQueue queue_;
  // Objects already returned; guards exactly-once delivery across update
  // notifications and queue rebuilds.
  std::unordered_set<MotionSegment::Key, MotionKeyHash> returned_;
  std::vector<DedupKey> dedup_window_;
  // Kernel output TimeSets, reused across Explore calls so the hot path
  // performs no per-node allocation once capacities have warmed up.
  std::vector<TimeSet> overlap_scratch_;
  // Page ids collected by HintPrefetch, reused across calls.
  std::vector<PageId> hint_scratch_;
  double dedup_priority_ = -kInf;
  double last_t_start_;
  bool attached_ = false;
  QueryStats stats_;
  SkipReport skip_report_;
};

}  // namespace dqmo

#endif  // DQMO_QUERY_PDQ_H_
