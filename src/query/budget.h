// QueryBudget: per-frame work budget + cooperative cancellation for the
// query engines (DESIGN.md "Overload & admission control").
//
// A server frame must not run arbitrarily long: a session crossing a dense
// region (or an adversarial spec) can otherwise hold its pool thread while
// every other client's latency climbs. The budget bounds one frame's work
// along two axes — a wall-clock deadline and a node-read cap — and carries
// a sticky cancellation flag another thread may raise at any time. The
// traversal loops (PDQ / NPDQ / kNN, both hot paths) charge one unit per
// node pop; the first failed charge makes the traversal finish the frame
// degraded through the existing kSkipSubtree machinery: the unexplored
// subtree is recorded in the SkipReport, the frame's integrity flips to
// kPartial, and the caller gets everything found so far.
//
// Determinism contract: a null budget pointer (or a never-armed budget) is
// never consulted, so unbudgeted runs stay bit-identical to the pre-budget
// engine. The clock is injectable for deterministic deadline tests.
#ifndef DQMO_QUERY_BUDGET_H_
#define DQMO_QUERY_BUDGET_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "common/status.h"

namespace dqmo {

/// Why a budgeted traversal stopped early (kNone: it did not).
enum class BudgetStop : uint8_t {
  kNone = 0,
  kDeadline,   // The frame's wall-clock deadline expired.
  kNodes,      // The frame's node-read budget was spent.
  kCancelled,  // Another thread requested cancellation.
};

/// Stable human-readable name ("deadline", "nodes", "cancelled", "none").
const char* BudgetStopName(BudgetStop stop);

/// One frame's work allowance. Armed per frame by the session runner,
/// charged per node pop by the traversal loops.
///
/// Threading: ArmFrame/Disarm/TryChargeNode/stop belong to the traversal
/// thread; RequestCancel (and cancel_requested) may be called from any
/// thread — that is the cooperative-cancellation channel.
class QueryBudget {
 public:
  /// Monotonic nanosecond clock; injectable so deadline behaviour is
  /// testable without sleeping (same pattern as RetryingPageReader::Clock).
  using Clock = std::function<uint64_t()>;

  struct Limits {
    uint64_t frame_deadline_ns = 0;  // 0: no wall-clock bound.
    uint64_t node_budget = 0;        // 0: no node-read bound.
    /// Speculative (prefetch) reads allowed this frame; 0: unlimited.
    /// Charged by Prefetcher::Hint, separately from node charges, so
    /// speculation never eats the traversal's own node budget — it is
    /// extra disk work, bounded on its own axis.
    uint64_t prefetch_budget = 0;
  };

  QueryBudget();
  explicit QueryBudget(Clock clock);

  /// Starts a new frame: clears any previous stop, resets the node count,
  /// and fixes the absolute deadline. A pending cancellation request is
  /// *not* cleared — cancellation is sticky until Disarm.
  void ArmFrame(const Limits& limits);

  /// Returns the budget to the never-consulted state (clears limits, stop,
  /// and the cancellation flag).
  void Disarm();

  bool armed() const { return armed_; }

  /// Raises the sticky cancellation flag; the owning traversal observes it
  /// at its next node charge. Safe from any thread.
  void RequestCancel() { cancel_.store(true, std::memory_order_release); }
  bool cancel_requested() const {
    return cancel_.load(std::memory_order_acquire);
  }

  /// Charges one node read against the frame. True: proceed. False: the
  /// frame is out of budget (or cancelled) — record the subtree as skipped
  /// and finish degraded. Unarmed budgets always grant. The first refusal
  /// latches stop() and bumps dqmo_budget_exhausted_total; later calls
  /// refuse cheaply without re-reading the clock.
  bool TryChargeNode();

  /// Charges one speculative read against the frame's prefetch allowance.
  /// True: issue it. False: out of prefetch budget, frame stopped, or
  /// cancellation pending — skip the speculation (never degrades the
  /// frame: prefetch is an optimization, not work the query owes).
  /// Unarmed budgets always grant; refusal latches nothing.
  bool TryChargePrefetch();

  BudgetStop stop() const { return stop_; }
  bool stopped() const { return stop_ != BudgetStop::kNone; }

  /// ResourceExhausted status naming the stop cause, for SkipReport
  /// entries (kNone yields OK).
  Status StopStatus() const;

  /// Nodes charged since the last ArmFrame.
  uint64_t nodes_charged() const { return nodes_charged_; }

  /// Speculative reads charged since the last ArmFrame.
  uint64_t prefetches_charged() const { return prefetches_charged_; }

 private:
  void LatchStop(BudgetStop stop);

  Clock clock_;
  bool armed_ = false;
  uint64_t deadline_ns_ = 0;  // Absolute; 0 = none.
  uint64_t node_budget_ = 0;
  uint64_t nodes_charged_ = 0;
  uint64_t prefetch_budget_ = 0;
  uint64_t prefetches_charged_ = 0;
  BudgetStop stop_ = BudgetStop::kNone;
  std::atomic<bool> cancel_{false};
};

}  // namespace dqmo

#endif  // DQMO_QUERY_BUDGET_H_
