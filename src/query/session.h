// DynamicQuerySession: automated PDQ <-> NPDQ hand-off (the paper's
// future-work item (iv): "find automated ways to handle the PDQ <-> NPDQ
// hand-off" and (Sect. 4) the three operating modes — Snapshot, Predictive,
// Non-Predictive — of a system using dynamic queries).
//
// The session consumes the observer's state (position, velocity) once per
// frame and decides how to evaluate the frame:
//
//  * Predictive: while the observer stays within `deviation_bound` of a
//    constant-velocity prediction, frames are served by an SPDQ — a PDQ
//    over the predicted trajectory with windows inflated by the bound
//    (Sect. 4's Semi-Predictive Dynamic Query).
//  * Non-predictive: when the observer deviates (interaction, teleports),
//    the session falls back to NPDQ and keeps watching the motion; after
//    `stable_frames_to_predict` consecutive frames consistent with a
//    constant-velocity fit, it refits a prediction and hands back.
//
// Delivery contract: within one mode, each object is delivered at most
// once; a hand-off may re-deliver objects the client already caches (the
// disappearance-time cache absorbs duplicates). No visible object is ever
// missed. SPDQ frames may deliver a superset of the exact view (the
// inflated window), exactly as Sect. 4 describes.
//
// Sharded lockstep contract (server/router.h): the sharded engine runs one
// DynamicQuerySession per shard, all fed the identical observer state each
// frame. Every decision a session makes — hand-off, refit, horizon renewal
// — depends only on the observer's motion, never on what the frame
// delivered, so N lockstep sessions stay in the same mode on the same
// frames and their per-frame streams union (deduplicated, entry-time
// merged) to exactly the single-tree session's stream. Keep it that way:
// a future heuristic that consults delivered results would silently break
// the router's exactness argument.
#ifndef DQMO_QUERY_SESSION_H_
#define DQMO_QUERY_SESSION_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/result.h"
#include "geom/trajectory.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/rtree.h"

namespace dqmo {

/// Orchestrates dynamic-query evaluation for one observer.
class DynamicQuerySession {
 public:
  struct Options {
    /// Side length of the (square) view window around the observer.
    double window = 8.0;
    /// Maximum tolerated deviation from the predicted path before handing
    /// off to NPDQ; also the SPDQ window inflation.
    double deviation_bound = 1.0;
    /// How far ahead (time units) each predictive trajectory extends; the
    /// PDQ is renewed when the prediction horizon is exhausted.
    double prediction_horizon = 5.0;
    /// Consecutive in-bound frames required before handing back to PDQ.
    int stable_frames_to_predict = 5;
    /// Evaluation options for the NPDQ fallback. (Its fault_policy field is
    /// overridden by the session-level `fault_policy` below.)
    NpdqOptions npdq;
    /// Page source for PDQ reads (nullptr: the tree's file).
    PageReader* reader = nullptr;
    /// Reaction to unreadable nodes, applied to both engines
    /// (rtree/fault_policy.h). Under kSkipSubtree a frame served from a
    /// degraded traversal is flagged FrameResult::integrity == kPartial,
    /// and a degraded *predictive* frame additionally hands the session off
    /// to NPDQ: the PDQ reads every node once, so a subtree it skipped is
    /// lost for its whole remaining run, while NPDQ re-reads per snapshot
    /// and recovers as soon as the fault clears.
    FaultPolicy fault_policy = FaultPolicy::kFailFast;
    /// Hot-path selector applied to both engines (overrides npdq.hot_path,
    /// like fault_policy above). kSoa serves frames through the decoded-node
    /// cache and batch kernels; kLegacyAos keeps the pre-optimization path.
    HotPath hot_path = HotPath::kSoa;
    /// Per-frame work budget + cancellation, applied to both engines
    /// (overrides npdq.budget, like fault_policy above); not owned, may be
    /// null. The caller arms it before each OnFrame; a budget-stopped
    /// frame is served kPartial through the kSkipSubtree machinery, and —
    /// like any degraded frame — never poisons future completeness: a
    /// degraded predictive frame hands off to NPDQ, a degraded NPDQ frame
    /// resets the snapshot history.
    QueryBudget* budget = nullptr;
    /// Speculative read driver, applied to both engines (overrides
    /// npdq.prefetcher, like budget above); not owned, may be null. Each
    /// engine declares its own future — the SPDQ its priority-queue front,
    /// the NPDQ its recursion frontier — through the same Prefetcher, so a
    /// hand-off simply changes who is hinting.
    Prefetcher* prefetcher = nullptr;
  };

  enum class Mode { kPredictive, kNonPredictive };

  struct FrameResult {
    /// Objects delivered this frame (new to the current mode's run).
    std::vector<MotionSegment> fresh;
    /// The mode that served this frame.
    Mode mode = Mode::kNonPredictive;
    /// True if this frame triggered a mode change.
    bool handoff = false;
    /// kPartial when this frame's traversal skipped unreadable subtrees
    /// (only possible under FaultPolicy::kSkipSubtree); `fresh` may then
    /// miss visible objects.
    ResultIntegrity integrity = ResultIntegrity::kComplete;
  };

  struct SessionStats {
    uint64_t predictive_frames = 0;
    uint64_t non_predictive_frames = 0;
    uint64_t handoffs_to_npdq = 0;
    uint64_t handoffs_to_pdq = 0;
    uint64_t pdq_renewals = 0;  // Prediction horizon exhausted, refit.
    uint64_t degraded_frames = 0;  // Frames answered kPartial.
    /// PDQ -> NPDQ handoffs forced by a degraded predictive traversal
    /// (subset of handoffs_to_npdq).
    uint64_t degraded_fallbacks = 0;
  };

  /// `tree` must outlive the session.
  DynamicQuerySession(RTree* tree, const Options& options);

  /// Reports the observer's state at time `t` (strictly increasing) and
  /// evaluates the frame covering [previous t, t].
  Result<FrameResult> OnFrame(double t, const Vec& position,
                              const Vec& velocity);

  Mode mode() const { return mode_; }
  const SessionStats& session_stats() const { return session_stats_; }

  /// Adjusts the prediction horizon used by future predictive (re)fits —
  /// the overload governor shrinks it under load so each SPDQ covers less
  /// future and enqueues fewer subtrees. Takes effect at the next
  /// StartPredictive; a running SPDQ is not rebuilt.
  void set_prediction_horizon(double horizon);

  /// Every subtree skipped over the session's lifetime (both engines).
  const SkipReport& skip_report() const { return skip_report_; }

  /// Combined query-processing cost across both engines.
  QueryStats TotalStats() const;

 private:
  /// (Re)builds the SPDQ from a constant-velocity prediction anchored at
  /// (t, position, velocity).
  Status StartPredictive(double t, const Vec& position, const Vec& velocity);

  /// Serves a frame through the NPDQ fallback.
  Result<std::vector<MotionSegment>> NpdqFrame(double t0, double t1,
                                               const Vec& position);

  Vec PredictedAt(double t) const;

  RTree* tree_;
  Options options_;
  Mode mode_ = Mode::kNonPredictive;
  double last_t_ = -kInf;

  // Predictive state.
  std::unique_ptr<PredictiveDynamicQuery> spdq_;
  /// Prefix of spdq_'s (accumulating) skip report already folded into
  /// skip_report_; reset whenever a new SPDQ is built.
  size_t spdq_skips_merged_ = 0;
  double prediction_t0_ = 0.0;
  Vec prediction_origin_;
  Vec prediction_velocity_;
  double prediction_end_ = 0.0;

  // Non-predictive state.
  NonPredictiveDynamicQuery npdq_;
  int stable_streak_ = 0;
  std::optional<std::pair<double, Vec>> streak_anchor_;  // (t, position).
  Vec last_velocity_;

  SessionStats session_stats_;
  QueryStats retired_pdq_stats_;  // Stats of finished PDQ instances.
  SkipReport skip_report_;        // Session-lifetime accumulation.
};

}  // namespace dqmo

#endif  // DQMO_QUERY_SESSION_H_
