#include "psi/psi.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Interval product {v * t : v in vs, t in ts} (both non-empty).
Interval IntervalMul(const Interval& vs, const Interval& ts) {
  const double a = vs.lo * ts.lo;
  const double b = vs.lo * ts.hi;
  const double c = vs.hi * ts.lo;
  const double d = vs.hi * ts.hi;
  return Interval(std::min(std::min(a, b), std::min(c, d)),
                  std::max(std::max(a, b), std::max(c, d)));
}

}  // namespace

Result<std::unique_ptr<PsiIndex>> PsiIndex::Create(PageStore* file,
                                                   const Options& options) {
  if (options.dims < 1 || 2 * options.dims > kMaxSpatialDims) {
    return Status::InvalidArgument(
        StrFormat("PSI native dims %d out of range", options.dims));
  }
  auto index = std::unique_ptr<PsiIndex>(new PsiIndex());
  index->options_ = options;
  RTree::Options tree_options;
  tree_options.dims = 2 * options.dims;
  tree_options.fill_factor = options.fill_factor;
  DQMO_ASSIGN_OR_RETURN(index->tree_, RTree::Create(file, tree_options));
  return index;
}

MotionSegment PsiIndex::ToParametric(const MotionSegment& m) const {
  DQMO_DCHECK(m.seg.dims() == options_.dims);
  const Vec v = m.seg.Velocity();
  Vec param(2 * options_.dims);
  for (int i = 0; i < options_.dims; ++i) {
    // Position at the reference time: a = p0 - v * (t_l - t_ref).
    param[i] =
        m.seg.p0[i] - v[i] * (m.seg.time.lo - options_.reference_time);
    param[options_.dims + i] = v[i];
  }
  // A parametric point: a degenerate segment at `param` over the validity
  // interval (the leaf layout then stores (oid, time, param, param)).
  return MotionSegment(m.oid, StSegment(param, param, m.seg.time));
}

MotionSegment PsiIndex::FromParametric(const MotionSegment& pm) const {
  DQMO_DCHECK(pm.seg.dims() == 2 * options_.dims);
  Vec p0(options_.dims);
  Vec p1(options_.dims);
  for (int i = 0; i < options_.dims; ++i) {
    const double a = pm.seg.p0[i];
    const double v = pm.seg.p0[options_.dims + i];
    p0[i] = a + v * (pm.seg.time.lo - options_.reference_time);
    p1[i] = a + v * (pm.seg.time.hi - options_.reference_time);
  }
  return MotionSegment(pm.oid, StSegment(p0, p1, pm.seg.time));
}

Status PsiIndex::Insert(const MotionSegment& m) {
  if (m.seg.dims() != options_.dims) {
    return Status::InvalidArgument("segment dims mismatch");
  }
  if (m.seg.time.empty()) {
    return Status::InvalidArgument("motion segment has empty valid time");
  }
  return tree_->Insert(ToParametric(m));
}

Status PsiIndex::Visit(PageId pid, const StBox& q, QueryStats* stats,
                       PageReader* reader,
                       std::vector<MotionSegment>* out) const {
  DQMO_ASSIGN_OR_RETURN(Node node, tree_->LoadNode(pid, stats, reader));
  const int d = options_.dims;
  if (node.is_leaf()) {
    for (const MotionSegment& pm : node.segments) {
      ++stats->distance_computations;
      const MotionSegment native = FromParametric(pm);
      if (native.seg.Intersects(q)) {
        out->push_back(native);
        ++stats->objects_returned;
      }
    }
    return Status::OK();
  }
  for (const ChildEntry& e : node.children) {
    ++stats->distance_computations;
    // Times at which children can matter for q.
    const Interval times = e.bounds.time.Intersect(q.time);
    if (times.empty()) continue;
    // Reachability test with interval arithmetic: position_i(t) lies in
    // A_i + V_i * (t - t_ref); prune unless every native dimension's
    // reachable band overlaps the query window. Conservative: a child may
    // still miss (the wedge is not a box), the exact leaf test decides.
    const Interval tau = times.Shift(-options_.reference_time);
    bool viable = true;
    for (int i = 0; i < d && viable; ++i) {
      const Interval& a = e.bounds.spatial.extent(i);
      const Interval& v = e.bounds.spatial.extent(d + i);
      const Interval reach = IntervalMul(v, tau).Shift(a.lo).Cover(
          IntervalMul(v, tau).Shift(a.hi));
      viable = reach.Overlaps(q.spatial.extent(i));
    }
    if (!viable) continue;
    DQMO_RETURN_IF_ERROR(Visit(e.child, q, stats, reader, out));
  }
  return Status::OK();
}

Result<std::vector<MotionSegment>> PsiIndex::RangeSearch(
    const StBox& q, QueryStats* stats, PageReader* reader) const {
  if (q.spatial.dims != options_.dims) {
    return Status::InvalidArgument("query dims mismatch");
  }
  DQMO_CHECK(stats != nullptr);
  std::vector<MotionSegment> out;
  if (q.empty()) return out;
  DQMO_RETURN_IF_ERROR(Visit(tree_->root(), q, stats, reader, &out));
  return out;
}

}  // namespace dqmo
