// Parametric Space Indexing (PSI) — the alternative to Native Space
// Indexing that the paper discusses in Sect. 2/3.2 (from its refs [14,15]):
// instead of indexing a motion's swept region in (space x time), index its
// *motion parameters* — the position at a global reference time and the
// velocity — as a point in a 2d-dimensional parametric space, tagged with
// the update's validity interval.
//
// The paper reports that "NSI outperforms PSI, because of the loss of
// locality associated with PSI" and uses NSI exclusively; this module
// exists to reproduce that comparison (bench/abl_psi). A spatio-temporal
// range query maps to a non-rectangular wedge in parametric space, so the
// search descends with a conservative reachable-interval test
// (position(t) = a + v * (t - t_ref), evaluated with interval arithmetic
// over a node's parameter box and clipped validity times) and applies the
// exact segment test at the leaves.
#ifndef DQMO_PSI_PSI_H_
#define DQMO_PSI_PSI_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "motion/motion_segment.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"

namespace dqmo {

/// R-tree over motion parameters. Internally reuses the paged R-tree with
/// 2d "spatial" dimensions: dims 0..d-1 hold the reference-time position
/// `a`, dims d..2d-1 the velocity `v`; the temporal extent holds the
/// update's validity interval, exactly as in NSI.
class PsiIndex {
 public:
  struct Options {
    int dims = 2;               // Native spatial dimensionality.
    double fill_factor = 0.5;
    double reference_time = 0.0;  // t_ref for the position parameter.
  };

  /// Creates a fresh parametric index in the (empty) page file.
  static Result<std::unique_ptr<PsiIndex>> Create(PageStore* file,
                                                  const Options& options);

  int dims() const { return options_.dims; }
  const RTree& tree() const { return *tree_; }
  uint64_t num_segments() const { return tree_->num_segments(); }

  /// Inserts a motion segment (converted to its parametric form).
  Status Insert(const MotionSegment& m);

  /// Spatio-temporal range query with the same semantics as
  /// RTree::RangeSearch: all motions whose exact trajectory intersects `q`
  /// (results carry native-space geometry reconstructed from the stored
  /// parameters; keys match the NSI-stored form).
  Result<std::vector<MotionSegment>> RangeSearch(
      const StBox& q, QueryStats* stats, PageReader* reader = nullptr) const;

  /// Conversion helpers (exposed for tests).
  MotionSegment ToParametric(const MotionSegment& m) const;
  MotionSegment FromParametric(const MotionSegment& pm) const;

 private:
  PsiIndex() = default;

  Status Visit(PageId pid, const StBox& q, QueryStats* stats,
               PageReader* reader, std::vector<MotionSegment>* out) const;

  Options options_;
  std::unique_ptr<RTree> tree_;
};

}  // namespace dqmo

#endif  // DQMO_PSI_PSI_H_
