#include "workload/data_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Folds a coordinate into [0, size] by mirror reflection (handles
/// excursions longer than one fold).
double Reflect(double x, double size) {
  const double period = 2.0 * size;
  x = std::fmod(x, period);
  if (x < 0.0) x += period;
  return x <= size ? x : period - x;
}

/// Uniform random direction on the unit sphere of the given dims.
Vec RandomDirection(Rng* rng, int dims) {
  for (;;) {
    Vec v(dims);
    for (int i = 0; i < dims; ++i) v[i] = rng->Normal();
    const double n = v.Norm();
    if (n > 1e-9) return v * (1.0 / n);
  }
}

}  // namespace

Result<std::vector<MotionSegment>> GenerateMotionData(
    const DataGeneratorOptions& options) {
  if (options.dims < 1 || options.dims > kMaxSpatialDims) {
    return Status::InvalidArgument("dims out of range");
  }
  if (options.num_objects < 1) {
    return Status::InvalidArgument("need at least one object");
  }
  if (options.horizon <= 0.0 || options.space_size <= 0.0) {
    return Status::InvalidArgument("horizon and space size must be positive");
  }
  if (options.min_update_interval <= 0.0) {
    return Status::InvalidArgument("min update interval must be positive");
  }
  if (options.shape == WorkloadShape::kSkewed && options.hotspots < 1) {
    return Status::InvalidArgument("skewed workload needs >= 1 hotspot");
  }
  if (options.shape == WorkloadShape::kClusteredFastMovers &&
      (options.fast_fraction < 0.0 || options.fast_fraction > 1.0)) {
    return Status::InvalidArgument("fast_fraction must be in [0, 1]");
  }

  // Shape state is drawn from a separate stream so WorkloadShape::kUniform
  // stays byte-identical to the pre-shape generator (same master forks).
  Rng shape_rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<Vec> hotspot_centers;
  if (options.shape == WorkloadShape::kSkewed) {
    hotspot_centers.reserve(static_cast<size_t>(options.hotspots));
    for (int h = 0; h < options.hotspots; ++h) {
      Vec c(options.dims);
      for (int i = 0; i < options.dims; ++i) {
        c[i] = shape_rng.Uniform(0.0, options.space_size);
      }
      hotspot_centers.push_back(c);
    }
  }
  const int num_fast =
      options.shape == WorkloadShape::kClusteredFastMovers
          ? static_cast<int>(options.fast_fraction * options.num_objects)
          : 0;

  Rng master(options.seed);
  std::vector<MotionSegment> segments;
  segments.reserve(static_cast<size_t>(
      options.num_objects * options.horizon / options.mean_update_interval));

  for (int oid = 0; oid < options.num_objects; ++oid) {
    Rng rng = master.Fork();
    const bool fast = oid < num_fast;
    Vec pos(options.dims);
    for (int i = 0; i < options.dims; ++i) {
      pos[i] = rng.Uniform(0.0, options.space_size);
    }
    if (options.shape == WorkloadShape::kSkewed) {
      const Vec& center =
          hotspot_centers[static_cast<size_t>(oid) %
                          hotspot_centers.size()];
      const double stddev = options.hotspot_stddev_frac * options.space_size;
      for (int i = 0; i < options.dims; ++i) {
        pos[i] = std::clamp(center[i] + shape_rng.Normal(0.0, stddev), 0.0,
                            options.space_size);
      }
    } else if (fast) {
      for (int i = 0; i < options.dims; ++i) {
        pos[i] = shape_rng.Uniform(0.10 * options.space_size,
                                   0.25 * options.space_size);
      }
    }
    const double mean_speed =
        fast ? options.mean_speed * options.fast_speed_multiplier
             : options.mean_speed;
    double t = 0.0;
    while (t < options.horizon) {
      const double dt = std::min(
          options.horizon - t,
          std::max(options.min_update_interval,
                   rng.Normal(options.mean_update_interval,
                              options.update_interval_stddev)));
      const double speed =
          std::max(0.0, rng.Normal(mean_speed, options.speed_stddev));
      const Vec dir = RandomDirection(&rng, options.dims);
      Vec end(options.dims);
      for (int i = 0; i < options.dims; ++i) {
        end[i] = Reflect(pos[i] + dir[i] * speed * dt, options.space_size);
      }
      segments.emplace_back(static_cast<ObjectId>(oid),
                            StSegment(pos, end, Interval(t, t + dt)));
      pos = end;
      t += dt;
    }
  }

  if (options.sort_by_start_time) {
    std::stable_sort(segments.begin(), segments.end(),
                     [](const MotionSegment& a, const MotionSegment& b) {
                       return a.seg.time.lo < b.seg.time.lo;
                     });
  }
  return segments;
}

}  // namespace dqmo
