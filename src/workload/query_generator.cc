#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

double SpeedForOverlap(const QueryWorkloadOptions& options) {
  return options.window * (1.0 - options.overlap) / options.snapshot_interval;
}

Result<DynamicQueryWorkload> GenerateDynamicQuery(
    const QueryWorkloadOptions& options, Rng* rng) {
  DQMO_CHECK(rng != nullptr);
  if (options.dims < 1 || options.dims > kMaxSpatialDims) {
    return Status::InvalidArgument("dims out of range");
  }
  if (options.overlap < 0.0 || options.overlap >= 1.0) {
    return Status::InvalidArgument("overlap must be in [0, 1)");
  }
  if (options.window <= 0.0 || options.window >= options.space_size) {
    return Status::InvalidArgument(
        "window must be positive and smaller than the space");
  }
  if (options.snapshot_interval <= 0.0 || options.num_snapshots < 1) {
    return Status::InvalidArgument("bad snapshot schedule");
  }
  const int num_frames = options.num_snapshots + 1;  // First + subsequent.
  const double duration = num_frames * options.snapshot_interval;
  if (duration >= options.horizon) {
    return Status::InvalidArgument(
        StrFormat("dynamic query duration %.3f exceeds horizon %.3f",
                  duration, options.horizon));
  }

  const double half = 0.5 * options.window;
  const double lo = half;
  const double hi = options.space_size - half;
  const double speed = SpeedForOverlap(options);

  const double t0 = rng->Uniform(0.0, options.horizon - duration);
  const double t1 = t0 + duration;

  // Window center: fixed in all axes except a random one, along which it
  // moves at `speed` with a random initial sign, bouncing between lo/hi.
  Vec center(options.dims);
  for (int i = 0; i < options.dims; ++i) center[i] = rng->Uniform(lo, hi);
  const int axis = rng->UniformInt(0, options.dims - 1);
  double sign = rng->Bernoulli(0.5) ? 1.0 : -1.0;

  // Key snapshot times: start, end, every bounce, plus regular refreshes.
  std::vector<double> key_times;
  key_times.push_back(t0);
  if (speed > 0.0) {
    double t = t0;
    double x = center[axis];
    double v = sign * speed;
    while (t < t1) {
      const double to_wall = v > 0.0 ? (hi - x) / v : (lo - x) / v;
      const double t_wall = t + to_wall;
      if (t_wall >= t1) break;
      key_times.push_back(t_wall);
      x = v > 0.0 ? hi : lo;
      v = -v;
      t = t_wall;
    }
  }
  for (double t = t0 + options.key_snapshot_interval; t < t1;
       t += options.key_snapshot_interval) {
    key_times.push_back(t);
  }
  key_times.push_back(t1);
  std::sort(key_times.begin(), key_times.end());
  // Merge keys closer than epsilon to keep times strictly increasing.
  constexpr double kMinKeyGap = 1e-7;
  std::vector<double> merged;
  for (double t : key_times) {
    if (merged.empty() || t - merged.back() > kMinKeyGap) merged.push_back(t);
  }
  if (merged.back() < t1) merged.push_back(t1);

  // Evaluate the center position at a time by replaying the bounces.
  auto center_at = [&](double t) {
    Vec c = center;
    if (speed <= 0.0) return c;
    double x = center[axis];
    double v = sign * speed;
    double now = t0;
    for (;;) {
      const double to_wall = v > 0.0 ? (hi - x) / v : (lo - x) / v;
      const double t_wall = now + to_wall;
      if (t_wall >= t) {
        x += v * (t - now);
        break;
      }
      x = v > 0.0 ? hi : lo;
      v = -v;
      now = t_wall;
    }
    c[axis] = std::clamp(x, lo, hi);
    return c;
  };

  std::vector<KeySnapshot> keys;
  keys.reserve(merged.size());
  for (double t : merged) {
    keys.emplace_back(t, Box::Centered(center_at(t), options.window));
  }
  DQMO_ASSIGN_OR_RETURN(QueryTrajectory trajectory,
                        QueryTrajectory::Make(std::move(keys)));

  DynamicQueryWorkload workload;
  workload.trajectory = std::move(trajectory);
  workload.frame_times.reserve(static_cast<size_t>(num_frames) + 1);
  for (int i = 0; i <= num_frames; ++i) {
    workload.frame_times.push_back(
        std::min(t1, t0 + i * options.snapshot_interval));
  }
  return workload;
}

}  // namespace dqmo
