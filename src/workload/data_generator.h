// Synthetic mobile-object workload matching Sect. 5 of the paper:
// "5000 objects ... moving randomly in a 2-d space of size 100-by-100
// length units, updating their motion approximately (random variable,
// normally distributed) every 1 time unit over a time period of 100 time
// units ... each object moves in various directions with a speed of
// approximately 1 length unit / 1 time unit", yielding ~0.5M segments.
#ifndef DQMO_WORKLOAD_DATA_GENERATOR_H_
#define DQMO_WORKLOAD_DATA_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "motion/motion_segment.h"

namespace dqmo {

/// Spatial/kinematic shape of the generated population. The sharding
/// differential sweeps (tests/shard_test.cc) run every shape: kUniform
/// spreads load evenly over a spatial grid of shards, kSkewed concentrates
/// it on few cells, and kClusteredFastMovers stresses the speed split
/// (fast objects both cluster spatially and land in the fast shard class).
enum class WorkloadShape {
  /// Paper's Sect. 5 workload: uniform start positions, N(mean, stddev)
  /// speeds. The default; byte-identical to the pre-shape generator.
  kUniform,
  /// Start positions drawn from `hotspots` Gaussian blobs (centers
  /// seed-derived, stddev = hotspot_stddev_frac * space_size), clamped to
  /// the space. Motion model unchanged.
  kSkewed,
  /// The first fast_fraction of objects start inside one cluster box
  /// ([0.1, 0.25] * space_size per dim) and move with mean speed scaled by
  /// fast_speed_multiplier; the rest are kUniform objects.
  kClusteredFastMovers,
};

struct DataGeneratorOptions {
  int dims = 2;
  int num_objects = 5000;
  double space_size = 100.0;  // Space is [0, space_size]^dims.
  double horizon = 100.0;     // Motions generated over [0, horizon].
  /// Update inter-arrival: max(min_update_interval, N(mean, stddev)).
  double mean_update_interval = 1.0;
  double update_interval_stddev = 0.25;
  double min_update_interval = 0.05;
  /// Speed: max(0, N(mean, stddev)) length units per time unit.
  double mean_speed = 1.0;
  double speed_stddev = 0.25;
  uint64_t seed = 42;
  /// Emit segments ordered by start time (the order updates would reach
  /// the database); false keeps per-object order.
  bool sort_by_start_time = true;

  /// Population shape (see WorkloadShape). kUniform reproduces the
  /// pre-shape generator bit for bit.
  WorkloadShape shape = WorkloadShape::kUniform;
  /// kSkewed: number of Gaussian hotspots and their spread as a fraction
  /// of space_size.
  int hotspots = 8;
  double hotspot_stddev_frac = 0.05;
  /// kClusteredFastMovers: fraction of objects that are clustered fast
  /// movers, and their mean-speed scale factor.
  double fast_fraction = 0.2;
  double fast_speed_multiplier = 4.0;
};

/// Generates the motion-segment stream. Each object starts at a uniform
/// random location and performs piecewise-linear motion, changing direction
/// and speed at every update; positions reflect off the space boundary.
/// Deterministic in options.seed.
Result<std::vector<MotionSegment>> GenerateMotionData(
    const DataGeneratorOptions& options);

}  // namespace dqmo

#endif  // DQMO_WORKLOAD_DATA_GENERATOR_H_
