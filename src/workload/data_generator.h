// Synthetic mobile-object workload matching Sect. 5 of the paper:
// "5000 objects ... moving randomly in a 2-d space of size 100-by-100
// length units, updating their motion approximately (random variable,
// normally distributed) every 1 time unit over a time period of 100 time
// units ... each object moves in various directions with a speed of
// approximately 1 length unit / 1 time unit", yielding ~0.5M segments.
#ifndef DQMO_WORKLOAD_DATA_GENERATOR_H_
#define DQMO_WORKLOAD_DATA_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "motion/motion_segment.h"

namespace dqmo {

struct DataGeneratorOptions {
  int dims = 2;
  int num_objects = 5000;
  double space_size = 100.0;  // Space is [0, space_size]^dims.
  double horizon = 100.0;     // Motions generated over [0, horizon].
  /// Update inter-arrival: max(min_update_interval, N(mean, stddev)).
  double mean_update_interval = 1.0;
  double update_interval_stddev = 0.25;
  double min_update_interval = 0.05;
  /// Speed: max(0, N(mean, stddev)) length units per time unit.
  double mean_speed = 1.0;
  double speed_stddev = 0.25;
  uint64_t seed = 42;
  /// Emit segments ordered by start time (the order updates would reach
  /// the database); false keeps per-object order.
  bool sort_by_start_time = true;
};

/// Generates the motion-segment stream. Each object starts at a uniform
/// random location and performs piecewise-linear motion, changing direction
/// and speed at every update; positions reflect off the space boundary.
/// Deterministic in options.seed.
Result<std::vector<MotionSegment>> GenerateMotionData(
    const DataGeneratorOptions& options);

}  // namespace dqmo

#endif  // DQMO_WORKLOAD_DATA_GENERATOR_H_
