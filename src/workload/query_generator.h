// Dynamic-query workload matching Sect. 5 of the paper: trajectories of a
// square observer window moving through the space, one snapshot query every
// 0.1 time unit, with the trajectory speed chosen to hit a target overlap
// between consecutive snapshots (the paper sweeps 0, 25, 50, 80, 90 and
// 99.99%) and window sizes 8x8 / 14x14 / 20x20.
#ifndef DQMO_WORKLOAD_QUERY_GENERATOR_H_
#define DQMO_WORKLOAD_QUERY_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "geom/trajectory.h"

namespace dqmo {

struct QueryWorkloadOptions {
  int dims = 2;
  double space_size = 100.0;
  double horizon = 100.0;
  /// Side length of the (square) observer window.
  double window = 8.0;
  /// One snapshot query per this many time units (paper: 0.1).
  double snapshot_interval = 0.1;
  /// Snapshots per dynamic query beyond the first (paper averages
  /// "subsequent" cost over 50 consecutive queries).
  int num_snapshots = 50;
  /// Target fractional overlap in [0, 1) between consecutive snapshot
  /// windows; determines the trajectory speed:
  /// speed = window * (1 - overlap) / snapshot_interval.
  double overlap = 0.9;
  /// Key snapshots (PDQ trajectory definition) at least this often; bounce
  /// points always produce keys.
  double key_snapshot_interval = 1.0;
};

/// A generated dynamic query: the PDQ trajectory plus the frame boundaries
/// at which snapshot queries fire. Frame i covers
/// [frame_times[i], frame_times[i+1]]; there are num_snapshots + 1 frames
/// (the "first query" plus the measured subsequent ones).
struct DynamicQueryWorkload {
  QueryTrajectory trajectory;
  std::vector<double> frame_times;  // size num_snapshots + 2.

  int num_frames() const { return static_cast<int>(frame_times.size()) - 1; }

  /// The i-th snapshot query box (FrameQuery over frame i).
  StBox Frame(int i) const {
    return trajectory.FrameQuery(frame_times[static_cast<size_t>(i)],
                                 frame_times[static_cast<size_t>(i) + 1]);
  }
};

/// Generates one dynamic query: random start location/time and a random
/// axis-aligned direction (the overlap target is exact for axis-aligned
/// motion); the window bounces off the space boundary, producing additional
/// key snapshots. Deterministic in *rng.
Result<DynamicQueryWorkload> GenerateDynamicQuery(
    const QueryWorkloadOptions& options, Rng* rng);

/// The speed implied by an overlap target (exposed for tests).
double SpeedForOverlap(const QueryWorkloadOptions& options);

}  // namespace dqmo

#endif  // DQMO_WORKLOAD_QUERY_GENERATOR_H_
