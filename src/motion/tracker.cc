#include "motion/tracker.h"

#include "common/check.h"

namespace dqmo {

DeadReckoningTracker::DeadReckoningTracker(ObjectId oid, double threshold,
                                           double start_time,
                                           const Vec& position,
                                           const Vec& velocity)
    : oid_(oid),
      threshold_(threshold),
      report_time_(start_time),
      report_pos_(position),
      report_vel_(velocity),
      last_time_(start_time),
      last_pos_(position),
      last_vel_(velocity) {
  DQMO_CHECK(threshold > 0.0);
}

Vec DeadReckoningTracker::PredictedAt(double t) const {
  DQMO_DCHECK(t >= report_time_);
  return report_pos_ + report_vel_ * (t - report_time_);
}

std::optional<MotionSegment> DeadReckoningTracker::Observe(
    double t, const Vec& position, const Vec& velocity) {
  DQMO_CHECK(t > last_time_);
  last_time_ = t;
  last_pos_ = position;
  last_vel_ = velocity;
  const Vec predicted = PredictedAt(t);
  if (predicted.DistanceTo(position) <= threshold_) {
    return std::nullopt;  // Database representation still within bounds.
  }
  // Close the segment covering [report_time_, t]. Its geometry is what the
  // database believed: the dead-reckoned straight line. The representation
  // error over this closed segment stayed within the threshold because we
  // close it at the first observation that exceeded it.
  MotionSegment closed = MotionSegment::FromUpdate(
      oid_, report_pos_, report_vel_, Interval(report_time_, t));
  // Open a new segment from the true state.
  report_time_ = t;
  report_pos_ = position;
  report_vel_ = velocity;
  ++updates_emitted_;
  return closed;
}

std::optional<MotionSegment> DeadReckoningTracker::Finish() {
  if (last_time_ <= report_time_) return std::nullopt;
  return MotionSegment::FromUpdate(oid_, report_pos_, report_vel_,
                                   Interval(report_time_, last_time_));
}

}  // namespace dqmo
