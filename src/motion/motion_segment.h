// MotionSegment: the record type stored at the leaf level of the NSI index.
//
// Each motion update of an object (Sect. 3.1) contributes one segment: the
// object id, the valid time interval [t_l, t_h] and the linear motion over
// it. Per the NSI optimization of Sect. 3.2, leaves store the exact segment
// endpoints, not the bounding box.
#ifndef DQMO_MOTION_MOTION_SEGMENT_H_
#define DQMO_MOTION_MOTION_SEGMENT_H_

#include <string>
#include <vector>

#include "common/types.h"
#include "geom/segment.h"

namespace dqmo {

/// One indexed motion update of one object.
struct MotionSegment {
  ObjectId oid = 0;
  StSegment seg;

  MotionSegment() = default;
  MotionSegment(ObjectId id, StSegment s) : oid(id), seg(std::move(s)) {}

  /// Builds a segment from the paper's update form: initial location
  /// x(t_l), constant velocity v, valid time [t_l, t_h] (Eq. (1)).
  static MotionSegment FromUpdate(ObjectId oid, const Vec& x_at_tl,
                                  const Vec& velocity, Interval valid_time);

  const Interval& valid_time() const { return seg.time; }

  /// Location function f(t) for t within the valid time.
  Vec PositionAt(double t) const { return seg.PositionAt(t); }

  /// Space-time bounding rectangle (internal-node form).
  StBox Bounds() const { return seg.Bounds(); }

  /// Identity of a segment: an object has at most one segment per start
  /// time, so (oid, t_l) identifies it. Used for result bookkeeping and the
  /// PDQ duplicate-elimination check.
  struct Key {
    ObjectId oid;
    double t_start;

    friend bool operator==(const Key& a, const Key& b) {
      return a.oid == b.oid && a.t_start == b.t_start;
    }
    friend bool operator<(const Key& a, const Key& b) {
      if (a.oid != b.oid) return a.oid < b.oid;
      return a.t_start < b.t_start;
    }
  };

  Key key() const { return Key{oid, seg.time.lo}; }

  std::string ToString() const;
};

/// Hash for MotionSegment::Key (for unordered containers in result checks).
struct MotionKeyHash {
  size_t operator()(const MotionSegment::Key& k) const {
    uint64_t h = k.oid;
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(k.t_start));
    __builtin_memcpy(&bits, &k.t_start, sizeof(bits));
    h ^= bits + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};

/// Sorts segments by (oid, start time); used to canonicalize result sets.
void SortByKey(std::vector<MotionSegment>* segments);

}  // namespace dqmo

#endif  // DQMO_MOTION_MOTION_SEGMENT_H_
