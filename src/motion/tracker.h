// Dead-reckoning update policy (Sect. 3.1 of the paper).
//
// An object's true velocity changes continuously; reporting every change
// would flood the database. Instead the object (or its tracking sensor)
// reports a new motion vector only when the database's predicted location
// — obtained by extrapolating the last report with Eq. (1) — drifts from
// the true location by more than a threshold. The database's error is then
// bounded by that threshold at all times.
#ifndef DQMO_MOTION_TRACKER_H_
#define DQMO_MOTION_TRACKER_H_

#include <optional>
#include <vector>

#include "common/types.h"
#include "geom/vec.h"
#include "motion/motion_segment.h"

namespace dqmo {

/// Tracks one object and decides when to emit motion updates.
///
/// Usage: construct with the first observation, then feed time-ordered
/// (time, true position, true velocity) observations via Observe(). When
/// the prediction error exceeds the threshold, Observe() returns the motion
/// segment that just *closed* (from the previous report to now) — that
/// segment is what gets inserted into the index. Finish() closes the final
/// open segment.
class DeadReckoningTracker {
 public:
  /// `threshold`: maximum tolerated distance between the database's
  /// predicted location and the true location before an update is forced.
  DeadReckoningTracker(ObjectId oid, double threshold, double start_time,
                       const Vec& position, const Vec& velocity);

  /// Feeds a ground-truth observation at time `t` (strictly increasing).
  /// Returns the closed motion segment if this observation triggered an
  /// update, std::nullopt otherwise.
  std::optional<MotionSegment> Observe(double t, const Vec& position,
                                       const Vec& velocity);

  /// Closes and returns the currently open segment, ending at the last
  /// observed time. Returns nullopt if no time has elapsed since the last
  /// report.
  std::optional<MotionSegment> Finish();

  /// The database's predicted location at time t (>= last report time),
  /// per the last reported motion parameters.
  Vec PredictedAt(double t) const;

  /// Number of updates emitted so far (excluding Finish()).
  int updates_emitted() const { return updates_emitted_; }

  ObjectId oid() const { return oid_; }
  double threshold() const { return threshold_; }

 private:
  ObjectId oid_;
  double threshold_;
  // Last reported motion parameters theta = (x(t_l), v) at time t_l.
  double report_time_;
  Vec report_pos_;
  Vec report_vel_;
  // Most recent ground truth seen.
  double last_time_;
  Vec last_pos_;
  Vec last_vel_;
  int updates_emitted_ = 0;
};

}  // namespace dqmo

#endif  // DQMO_MOTION_TRACKER_H_
