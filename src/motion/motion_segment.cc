#include "motion/motion_segment.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

MotionSegment MotionSegment::FromUpdate(ObjectId oid, const Vec& x_at_tl,
                                        const Vec& velocity,
                                        Interval valid_time) {
  DQMO_DCHECK(!valid_time.empty());
  const Vec end = x_at_tl + velocity * valid_time.length();
  return MotionSegment(oid, StSegment(x_at_tl, end, valid_time));
}

std::string MotionSegment::ToString() const {
  return StrFormat("motion{oid=%u, %s}", oid, seg.ToString().c_str());
}

void SortByKey(std::vector<MotionSegment>* segments) {
  std::sort(segments->begin(), segments->end(),
            [](const MotionSegment& a, const MotionSegment& b) {
              return a.key() < b.key();
            });
}

}  // namespace dqmo
