#include "server/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "geom/box.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/session.h"

namespace dqmo {
namespace {

/// Gate + scheduler metrics (process-wide; the ExecutorReport remains the
/// exact per-run account).
struct ExecMetrics {
  Histogram* reader_wait_ns;
  Histogram* writer_wait_ns;
  Histogram* handover_ns;
  Histogram* queue_wait_ns;
  Histogram* session_ns;
  Counter* sessions;
  Counter* session_objects;

  static ExecMetrics& Get() {
    static ExecMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ExecMetrics{
          r.GetHistogram("dqmo_gate_reader_wait_ns",
                         "TreeGate shared-side acquisition wait"),
          r.GetHistogram("dqmo_gate_writer_wait_ns",
                         "TreeGate exclusive-side acquisition wait"),
          r.GetHistogram("dqmo_gate_handover_ns",
                         "WriteGuard release: invalidate + seal + WAL sync"),
          r.GetHistogram("dqmo_exec_queue_wait_ns",
                         "Submit-to-start wait in the session thread pool"),
          r.GetHistogram("dqmo_exec_session_ns",
                         "Wall time of one complete query session"),
          r.GetCounter("dqmo_exec_sessions_total",
                       "Query sessions run to completion (or first error)"),
          r.GetCounter("dqmo_exec_session_objects_total",
                       "Objects delivered across all sessions"),
      };
    }();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Result checksums. FNV-1a over a canonical byte stream: frame index, then
// the frame's results sorted by key. Canonicalization makes the checksum a
// function of *what* was delivered, never of thread scheduling.

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void FoldBytes(uint64_t* h, const void* p, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

inline void FoldU64(uint64_t* h, uint64_t v) { FoldBytes(h, &v, sizeof(v)); }

inline void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  FoldU64(h, bits);
}

void FoldSegments(uint64_t* h, std::vector<MotionSegment>* fresh) {
  SortByKey(fresh);
  for (const MotionSegment& m : *fresh) {
    FoldU64(h, m.oid);
    FoldDouble(h, m.seg.time.lo);
  }
}

// ---------------------------------------------------------------------------
// Observer model: the same random-turn flight as bench/abl_session.cc's
// Pilot, parameterized by the bounce region so tests can confine sessions
// spatially. Driven entirely by the session's own Rng — deterministic.

struct Observer {
  Vec pos;
  Vec vel;
  double next_turn = 0.0;

  void Advance(Rng* rng, const SessionSpec& spec, double t) {
    if (t >= next_turn) {
      const double angle = rng->Uniform(0, 2 * M_PI);
      const double speed = rng->Uniform(0.5, 2.0);
      vel = Vec(speed * std::cos(angle), speed * std::sin(angle));
      next_turn = t + rng->Uniform(0.5 * spec.mean_leg, 1.5 * spec.mean_leg);
    }
    for (int d = 0; d < 2; ++d) {
      pos[d] += vel[d] * spec.frame_dt;
      if (pos[d] < spec.region_lo || pos[d] > spec.region_hi) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], spec.region_lo, spec.region_hi);
      }
    }
  }
};

Observer MakeObserver(Rng* rng, const SessionSpec& spec) {
  // Start well inside the region so the first frames are not all bounces.
  const double margin = 0.1 * (spec.region_hi - spec.region_lo);
  Observer obs;
  obs.pos = Vec(rng->Uniform(spec.region_lo + margin, spec.region_hi - margin),
                rng->Uniform(spec.region_lo + margin, spec.region_hi - margin));
  obs.vel = Vec(1.0, 0.0);
  return obs;
}

/// Holds the gate's shared side for one frame (no-op when gate is null).
std::shared_lock<std::shared_mutex> LockFrame(TreeGate* gate) {
  if (gate == nullptr) return std::shared_lock<std::shared_mutex>();
  return gate->LockShared();
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool.

ThreadPool::ThreadPool(int num_threads) {
  DQMO_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) return;  // stop_ and drained.
    std::function<void()> task = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    task();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// TreeGate.

std::shared_lock<std::shared_mutex> TreeGate::LockShared() {
  const uint64_t tick = TickNs();
  Tracer::SpanScope span(SpanKind::kGateWait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  ExecMetrics::Get().reader_wait_ns->RecordSince(tick);
  return lock;
}

TreeGate::WriteGuard::WriteGuard(TreeGate* gate) : gate_(gate) {
  const uint64_t tick = TickNs();
  lock_ = std::unique_lock<std::shared_mutex>(gate->mu_);
  ExecMetrics::Get().writer_wait_ns->RecordSince(tick);
}

TreeGate::WriteGuard::~WriteGuard() {
  ScopedLatencyTimer handover_timer(ExecMetrics::Get().handover_ns);
  // Still exclusive here: hand the dirtied pages over to the readers.
  // Stale cached copies are dropped first, then every dirty page is
  // sealed, so the next shared section reads fresh, checksummed bytes
  // without mutating anything but atomic counters.
  if (gate_->file_ != nullptr) {
    if (gate_->pool_ != nullptr || gate_->node_cache_ != nullptr) {
      for (PageId id : gate_->file_->dirty_page_ids()) {
        if (gate_->pool_ != nullptr) gate_->pool_->Invalidate(id);
        if (gate_->node_cache_ != nullptr) gate_->node_cache_->Invalidate(id);
      }
    }
    gate_->file_->SealAllDirty();
  }
  // Durability handover: drain the batched redo records before readers
  // resume, so no session ever observes an un-logged motion. Sync failures
  // are parked on the gate (a dtor cannot return them).
  if (gate_->wal_ != nullptr) {
    Status s = gate_->wal_->Sync();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(gate_->wal_status_mu_);
      if (gate_->wal_status_.ok()) gate_->wal_status_ = std::move(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Session runners.

namespace {

SessionResult RunHandoffSession(RTree* tree, const SessionSpec& spec,
                                PageReader* reader, TreeGate* gate) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);

  DynamicQuerySession::Options sopt;
  sopt.window = spec.window;
  sopt.reader = reader;
  sopt.npdq.reader = reader;
  sopt.hot_path = spec.hot_path;
  DynamicQuerySession session(tree, sopt);

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto frame = session.OnFrame(t, obs.pos, obs.vel);
    if (!frame.ok()) {
      out.status = frame.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &frame->fresh);
    out.objects_delivered += frame->fresh.size();
    ++out.frames_completed;
  }
  // The session (and its SPDQ's update listener) must unregister before
  // the gate lock of the last frame is long gone; destruction here is
  // outside any shared section, which is fine — AddListener/RemoveListener
  // are internally synchronized against the writer's notifications.
  out.stats = session.TotalStats();
  return out;
}

SessionResult RunNpdqSession(RTree* tree, const SessionSpec& spec,
                             PageReader* reader, TreeGate* gate) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);

  NpdqOptions nopt;
  nopt.reader = reader;
  nopt.hot_path = spec.hot_path;
  NonPredictiveDynamicQuery npdq(tree, nopt);

  double prev_t = spec.t0;
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    const StBox q(Box::Centered(obs.pos, spec.window), Interval(prev_t, t));
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto fresh = npdq.Execute(q);
    if (!fresh.ok()) {
      out.status = fresh.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &*fresh);
    out.objects_delivered += fresh->size();
    ++out.frames_completed;
    prev_t = t;
  }
  out.stats = npdq.stats();
  return out;
}

SessionResult RunKnnSession(RTree* tree, const SessionSpec& spec,
                            PageReader* reader, TreeGate* gate) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);

  MovingKnnQuery::Options kopt;
  kopt.reader = reader;
  kopt.hot_path = spec.hot_path;
  MovingKnnQuery knn(tree, spec.k, kopt);

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto neighbors = knn.At(t, obs.pos);
    if (!neighbors.ok()) {
      out.status = neighbors.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    for (const Neighbor& n : *neighbors) {
      FoldU64(&out.checksum, n.motion.oid);
      FoldDouble(&out.checksum, n.distance);
    }
    out.objects_delivered += neighbors->size();
    ++out.frames_completed;
  }
  out.stats = knn.stats();
  return out;
}

}  // namespace

SessionResult RunSession(RTree* tree, const SessionSpec& spec,
                         PageReader* reader, TreeGate* gate) {
  const uint64_t tick = TickNs();
  SessionResult out;
  switch (spec.kind) {
    case SessionKind::kNpdq:
      out = RunNpdqSession(tree, spec, reader, gate);
      break;
    case SessionKind::kKnn:
      out = RunKnnSession(tree, spec, reader, gate);
      break;
    case SessionKind::kSession:
      out = RunHandoffSession(tree, spec, reader, gate);
      break;
  }
  ExecMetrics& em = ExecMetrics::Get();
  em.session_ns->RecordSince(tick);
  em.sessions->Add();
  em.session_objects->Add(out.objects_delivered);
  return out;
}

// ---------------------------------------------------------------------------
// SessionScheduler.

ExecutorReport SessionScheduler::Run(const std::vector<SessionSpec>& specs) {
  ExecutorReport report;
  report.sessions.resize(specs.size());
  const uint64_t hits0 =
      options_.pool != nullptr ? options_.pool->hits() : 0;
  const uint64_t misses0 =
      options_.pool != nullptr ? options_.pool->misses() : 0;
  const auto start = std::chrono::steady_clock::now();

  if (options_.num_threads <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      report.sessions[i] =
          RunSession(tree_, specs[i], options_.reader, options_.gate);
    }
  } else {
    ThreadPool pool(options_.num_threads);
    for (size_t i = 0; i < specs.size(); ++i) {
      SessionResult* slot = &report.sessions[i];
      const SessionSpec* spec = &specs[i];
      const uint64_t submit_tick = TickNs();
      pool.Submit([this, slot, spec, submit_tick] {
        ExecMetrics::Get().queue_wait_ns->RecordSince(submit_tick);
        *slot = RunSession(tree_, *spec, options_.reader, options_.gate);
      });
    }
    pool.Wait();
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const SessionResult& s : report.sessions) {
    report.total_stats += s.stats;
    report.total_objects += s.objects_delivered;
    if (report.status.ok() && !s.status.ok()) report.status = s.status;
  }
  if (options_.pool != nullptr) {
    report.pool_hits = options_.pool->hits() - hits0;
    report.pool_misses = options_.pool->misses() - misses0;
  }
  return report;
}

}  // namespace dqmo
