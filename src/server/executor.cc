#include "server/executor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>

#include "common/check.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "geom/box.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/session.h"

namespace dqmo {
namespace {

/// Gate + scheduler metrics (process-wide; the ExecutorReport remains the
/// exact per-run account).
struct ExecMetrics {
  Histogram* reader_wait_ns;
  Histogram* writer_wait_ns;
  Histogram* handover_ns;
  Histogram* queue_wait_ns;
  Histogram* session_ns;
  Histogram* frame_ns;
  Counter* sessions;
  Counter* session_objects;
  Counter* frames_shed;
  Counter* sessions_cancelled;
  Gauge* queue_depth;
  Gauge* queue_depth_peak;

  static ExecMetrics& Get() {
    static ExecMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ExecMetrics{
          r.GetHistogram("dqmo_gate_reader_wait_ns",
                         "TreeGate shared-side acquisition wait"),
          r.GetHistogram("dqmo_gate_writer_wait_ns",
                         "TreeGate exclusive-side acquisition wait"),
          r.GetHistogram("dqmo_gate_handover_ns",
                         "WriteGuard release: invalidate + seal + WAL sync"),
          r.GetHistogram("dqmo_exec_queue_wait_ns",
                         "Submit-to-start wait in the session thread pool"),
          r.GetHistogram("dqmo_exec_session_ns",
                         "Wall time of one complete query session"),
          r.GetHistogram("dqmo_exec_frame_ns",
                         "Wall time of one governed session frame"),
          r.GetCounter("dqmo_exec_sessions_total",
                       "Query sessions run to completion (or first error)"),
          r.GetCounter("dqmo_exec_session_objects_total",
                       "Objects delivered across all sessions"),
          r.GetCounter("dqmo_frames_shed_total",
                       "Frames dropped whole by the overload governor"),
          r.GetCounter("dqmo_exec_sessions_cancelled_total",
                       "Sessions ended by cooperative cancellation"),
          r.GetGauge("dqmo_exec_queue_depth",
                     "Session thread-pool tasks queued, awaiting a worker"),
          r.GetGauge("dqmo_exec_queue_depth_peak",
                     "Deepest session thread-pool queue observed"),
      };
    }();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Result checksums. FNV-1a over a canonical byte stream: frame index, then
// the frame's results sorted by key. Canonicalization makes the checksum a
// function of *what* was delivered, never of thread scheduling.

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void FoldBytes(uint64_t* h, const void* p, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

inline void FoldU64(uint64_t* h, uint64_t v) { FoldBytes(h, &v, sizeof(v)); }

inline void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  FoldU64(h, bits);
}

void FoldSegments(uint64_t* h, std::vector<MotionSegment>* fresh) {
  SortByKey(fresh);
  for (const MotionSegment& m : *fresh) {
    FoldU64(h, m.oid);
    FoldDouble(h, m.seg.time.lo);
  }
}

// ---------------------------------------------------------------------------
// Observer model: the same random-turn flight as bench/abl_session.cc's
// Pilot, parameterized by the bounce region so tests can confine sessions
// spatially. Driven entirely by the session's own Rng — deterministic.

struct Observer {
  Vec pos;
  Vec vel;
  double next_turn = 0.0;

  void Advance(Rng* rng, const SessionSpec& spec, double t) {
    if (t >= next_turn) {
      const double angle = rng->Uniform(0, 2 * M_PI);
      const double speed = rng->Uniform(0.5, 2.0);
      vel = Vec(speed * std::cos(angle), speed * std::sin(angle));
      next_turn = t + rng->Uniform(0.5 * spec.mean_leg, 1.5 * spec.mean_leg);
    }
    for (int d = 0; d < 2; ++d) {
      pos[d] += vel[d] * spec.frame_dt;
      if (pos[d] < spec.region_lo || pos[d] > spec.region_hi) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], spec.region_lo, spec.region_hi);
      }
    }
  }
};

Observer MakeObserver(Rng* rng, const SessionSpec& spec) {
  // Start well inside the region so the first frames are not all bounces.
  const double margin = 0.1 * (spec.region_hi - spec.region_lo);
  Observer obs;
  obs.pos = Vec(rng->Uniform(spec.region_lo + margin, spec.region_hi - margin),
                rng->Uniform(spec.region_lo + margin, spec.region_hi - margin));
  obs.vel = Vec(1.0, 0.0);
  return obs;
}

/// Holds the gate's shared side for one frame (no-op when gate is null).
std::shared_lock<std::shared_mutex> LockFrame(TreeGate* gate) {
  if (gate == nullptr) return std::shared_lock<std::shared_mutex>();
  return gate->LockShared();
}

/// Per-session glue between the spec's budget knobs, the overload
/// governor, and the engines: arms the budget each frame with
/// governor-scaled limits, decides shedding, and feeds frame latency back.
/// Inactive (no budget, no limits, no governor) it hands the engines a
/// null budget — the bit-identical pre-budget path.
class FrameController {
 public:
  FrameController(const SessionSpec& spec, OverloadGovernor* governor)
      : spec_(spec),
        governor_(governor),
        budget_(spec.budget != nullptr ? spec.budget : &local_),
        active_(spec.budget != nullptr || governor != nullptr ||
                spec.frame_deadline_us > 0 || spec.frame_node_budget > 0) {}

  /// What the engines see: null when the session runs unbudgeted.
  QueryBudget* engine_budget() { return active_ ? budget_ : nullptr; }

  bool cancelled() const { return active_ && budget_->cancel_requested(); }

  /// Arms the budget for the coming frame. True: the governor sheds this
  /// frame instead — skip it entirely.
  bool ShedOrArm() {
    if (!active_) return false;
    OverloadGovernor::Directive d;
    d.frame_deadline_ns = spec_.frame_deadline_us * 1000;
    d.node_budget = spec_.frame_node_budget;
    if (governor_ != nullptr) {
      d = governor_->FrameDirective(spec_.priority, d.frame_deadline_ns,
                                    d.node_budget);
    }
    horizon_scale_ = d.horizon_scale;
    if (d.shed_frame) {
      ExecMetrics::Get().frames_shed->Add();
      return true;
    }
    budget_->ArmFrame(
        QueryBudget::Limits{d.frame_deadline_ns, d.node_budget});
    frame_start_ns_ = governor_ != nullptr ? NowNs() : 0;
    return false;
  }

  bool FrameDegraded() const { return active_ && budget_->stopped(); }

  /// Reports the completed frame's wall time to the governor.
  void EndFrame() {
    if (governor_ == nullptr) return;
    const uint64_t frame_ns = NowNs() - frame_start_ns_;
    ExecMetrics::Get().frame_ns->Record(frame_ns);
    governor_->OnFrame(frame_ns);
  }

  double horizon_scale() const { return horizon_scale_; }
  bool governed() const { return governor_ != nullptr; }

 private:
  const SessionSpec& spec_;
  OverloadGovernor* governor_;
  QueryBudget local_;
  QueryBudget* budget_;
  bool active_;
  double horizon_scale_ = 1.0;
  uint64_t frame_start_ns_ = 0;
};

/// Shared end-of-session bookkeeping for the three runners.
void FinishSession(SessionResult* out, const FrameController& ctl) {
  if (ctl.cancelled()) {
    out->outcome = SessionResult::Outcome::kCancelled;
    ExecMetrics::Get().sessions_cancelled->Add();
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ThreadPool.

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(Options{num_threads, 0}) {}

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  DQMO_CHECK(options.num_threads >= 1);
  workers_.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::QueueDepthLocked() const {
  size_t depth = 0;
  for (const auto& q : queues_) depth += q.size();
  return depth;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return QueueDepthLocked();
}

void ThreadPool::Submit(std::function<void()> task,
                        SessionPriority priority) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_queue > 0) {
      // Backpressure: a full bounded queue slows the producer down instead
      // of growing without limit.
      space_cv_.wait(lock, [this] {
        return QueueDepthLocked() < options_.max_queue;
      });
    }
    queues_[static_cast<size_t>(priority)].push_back(std::move(task));
    const size_t depth = QueueDepthLocked();
    ExecMetrics::Get().queue_depth->Set(static_cast<int64_t>(depth));
    ExecMetrics::Get().queue_depth_peak->SetMax(static_cast<int64_t>(depth));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task,
                           SessionPriority priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_queue > 0 && QueueDepthLocked() >= options_.max_queue) {
      return false;
    }
    queues_[static_cast<size_t>(priority)].push_back(std::move(task));
    const size_t depth = QueueDepthLocked();
    ExecMetrics::Get().queue_depth->Set(static_cast<int64_t>(depth));
    ExecMetrics::Get().queue_depth_peak->SetMax(static_cast<int64_t>(depth));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return QueueDepthLocked() == 0 && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || QueueDepthLocked() > 0; });
    std::deque<std::function<void()>>* queue = nullptr;
    for (auto& q : queues_) {  // Highest priority class first.
      if (!q.empty()) {
        queue = &q;
        break;
      }
    }
    if (queue == nullptr) return;  // stop_ and drained.
    std::function<void()> task = std::move(queue->front());
    queue->pop_front();
    ExecMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(QueueDepthLocked()));
    ++active_;
    lock.unlock();
    space_cv_.notify_one();
    task();
    lock.lock();
    --active_;
    if (QueueDepthLocked() == 0 && active_ == 0) idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// TreeGate.

std::shared_lock<std::shared_mutex> TreeGate::LockShared() {
  const uint64_t tick = TickNs();
  Tracer::SpanScope span(SpanKind::kGateWait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  ExecMetrics::Get().reader_wait_ns->RecordSince(tick);
  return lock;
}

TreeGate::WriteGuard::WriteGuard(TreeGate* gate) : gate_(gate) {
  const uint64_t tick = TickNs();
  lock_ = std::unique_lock<std::shared_mutex>(gate->mu_);
  ExecMetrics::Get().writer_wait_ns->RecordSince(tick);
}

TreeGate::WriteGuard::~WriteGuard() {
  ScopedLatencyTimer handover_timer(ExecMetrics::Get().handover_ns);
  // Still exclusive here: hand the dirtied pages over to the readers.
  // Stale cached copies are dropped first, then every dirty page is
  // sealed, so the next shared section reads fresh, checksummed bytes
  // without mutating anything but atomic counters.
  if (gate_->file_ != nullptr) {
    if (gate_->pool_ != nullptr || gate_->node_cache_ != nullptr) {
      for (PageId id : gate_->file_->dirty_page_ids()) {
        if (gate_->pool_ != nullptr) gate_->pool_->Invalidate(id);
        if (gate_->node_cache_ != nullptr) gate_->node_cache_->Invalidate(id);
      }
    }
    gate_->file_->SealAllDirty();
  }
  // Durability handover: drain the batched redo records before readers
  // resume, so no session ever observes an un-logged motion. Sync failures
  // are parked on the gate (a dtor cannot return them).
  if (gate_->wal_ != nullptr) {
    Status s = gate_->wal_->Sync();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(gate_->wal_status_mu_);
      if (gate_->wal_status_.ok()) gate_->wal_status_ = std::move(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Session runners.

namespace {

SessionResult RunHandoffSession(RTree* tree, const SessionSpec& spec,
                                PageReader* reader, TreeGate* gate,
                                OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  DynamicQuerySession::Options sopt;
  sopt.window = spec.window;
  sopt.reader = reader;
  sopt.npdq.reader = reader;
  sopt.hot_path = spec.hot_path;
  sopt.budget = ctl.engine_budget();
  // A budgeted session must degrade (skip + kPartial), not fail.
  if (sopt.budget != nullptr) sopt.fault_policy = FaultPolicy::kSkipSubtree;
  DynamicQuerySession session(tree, sopt);
  const double base_horizon = sopt.prediction_horizon;

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      continue;  // Next frame's [t0, t] interval covers the gap.
    }
    if (ctl.governed()) {
      session.set_prediction_horizon(
          std::max(1e-3, base_horizon * ctl.horizon_scale()));
    }
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto frame = session.OnFrame(t, obs.pos, obs.vel);
    if (!frame.ok()) {
      out.status = frame.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &frame->fresh);
    out.objects_delivered += frame->fresh.size();
    ++out.frames_completed;
    if (ctl.FrameDegraded()) ++out.frames_degraded;
    ctl.EndFrame();
  }
  FinishSession(&out, ctl);
  // The session (and its SPDQ's update listener) must unregister before
  // the gate lock of the last frame is long gone; destruction here is
  // outside any shared section, which is fine — AddListener/RemoveListener
  // are internally synchronized against the writer's notifications.
  out.stats = session.TotalStats();
  return out;
}

SessionResult RunNpdqSession(RTree* tree, const SessionSpec& spec,
                             PageReader* reader, TreeGate* gate,
                             OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  NpdqOptions nopt;
  nopt.reader = reader;
  nopt.hot_path = spec.hot_path;
  nopt.budget = ctl.engine_budget();
  if (nopt.budget != nullptr) nopt.fault_policy = FaultPolicy::kSkipSubtree;
  NonPredictiveDynamicQuery npdq(tree, nopt);

  double prev_t = spec.t0;
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      continue;  // prev_t stays: the next snapshot covers the gap.
    }
    const StBox q(Box::Centered(obs.pos, spec.window), Interval(prev_t, t));
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto fresh = npdq.Execute(q);
    if (!fresh.ok()) {
      out.status = fresh.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &*fresh);
    out.objects_delivered += fresh->size();
    ++out.frames_completed;
    prev_t = t;
    if (ctl.FrameDegraded()) {
      ++out.frames_degraded;
      // An incomplete snapshot must not mask later frames (Lemma 1 assumes
      // "previous" retrieved everything); re-read fresh next frame.
      npdq.ResetHistory();
    }
    ctl.EndFrame();
  }
  FinishSession(&out, ctl);
  out.stats = npdq.stats();
  return out;
}

SessionResult RunKnnSession(RTree* tree, const SessionSpec& spec,
                            PageReader* reader, TreeGate* gate,
                            OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  MovingKnnQuery::Options kopt;
  kopt.reader = reader;
  kopt.hot_path = spec.hot_path;
  kopt.budget = ctl.engine_budget();
  if (kopt.budget != nullptr) kopt.fault_policy = FaultPolicy::kSkipSubtree;
  MovingKnnQuery knn(tree, spec.k, kopt);

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      continue;
    }
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto neighbors = knn.At(t, obs.pos);
    if (!neighbors.ok()) {
      out.status = neighbors.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    for (const Neighbor& n : *neighbors) {
      FoldU64(&out.checksum, n.motion.oid);
      FoldDouble(&out.checksum, n.distance);
    }
    out.objects_delivered += neighbors->size();
    ++out.frames_completed;
    if (ctl.FrameDegraded()) ++out.frames_degraded;
    ctl.EndFrame();
  }
  FinishSession(&out, ctl);
  out.stats = knn.stats();
  return out;
}

}  // namespace

SessionResult RunSession(RTree* tree, const SessionSpec& spec,
                         PageReader* reader, TreeGate* gate,
                         OverloadGovernor* governor) {
  const uint64_t tick = TickNs();
  SessionResult out;
  switch (spec.kind) {
    case SessionKind::kNpdq:
      out = RunNpdqSession(tree, spec, reader, gate, governor);
      break;
    case SessionKind::kKnn:
      out = RunKnnSession(tree, spec, reader, gate, governor);
      break;
    case SessionKind::kSession:
      out = RunHandoffSession(tree, spec, reader, gate, governor);
      break;
  }
  ExecMetrics& em = ExecMetrics::Get();
  em.session_ns->RecordSince(tick);
  em.sessions->Add();
  em.session_objects->Add(out.objects_delivered);
  return out;
}

// ---------------------------------------------------------------------------
// SessionScheduler.

ExecutorReport SessionScheduler::Run(const std::vector<SessionSpec>& specs) {
  ExecutorReport report;
  report.sessions.resize(specs.size());
  const uint64_t hits0 =
      options_.pool != nullptr ? options_.pool->hits() : 0;
  const uint64_t misses0 =
      options_.pool != nullptr ? options_.pool->misses() : 0;
  const auto start = std::chrono::steady_clock::now();

  // Admission decision for one spec; fills the slot on refusal.
  auto admit = [this](const SessionSpec& spec, size_t queue_depth,
                      SessionResult* slot) {
    if (options_.admission == nullptr) return true;
    const AdmissionOutcome outcome = options_.admission->TryAdmit(
        spec.client_id, spec.priority, queue_depth);
    if (outcome == AdmissionOutcome::kAdmitted) return true;
    slot->status = AdmissionStatus(outcome);
    slot->outcome = SessionResult::Outcome::kRejected;
    return false;
  };

  if (options_.num_threads <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (!admit(specs[i], 0, &report.sessions[i])) continue;
      report.sessions[i] = RunSession(tree_, specs[i], options_.reader,
                                      options_.gate, options_.governor);
      if (options_.admission != nullptr) {
        options_.admission->OnSessionDone(specs[i].client_id);
      }
    }
  } else {
    ThreadPool pool(
        ThreadPool::Options{options_.num_threads, options_.max_queue});
    if (options_.governor != nullptr) {
      options_.governor->AttachQueueProbe(
          [&pool] { return pool.queue_depth(); });
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      SessionResult* slot = &report.sessions[i];
      const SessionSpec* spec = &specs[i];
      const size_t depth = pool.queue_depth();
      report.max_queue_depth = std::max(report.max_queue_depth, depth);
      if (!admit(*spec, depth, slot)) continue;
      const uint64_t submit_tick = TickNs();
      pool.Submit(
          [this, slot, spec, submit_tick] {
            ExecMetrics::Get().queue_wait_ns->RecordSince(submit_tick);
            *slot = RunSession(tree_, *spec, options_.reader, options_.gate,
                               options_.governor);
            if (options_.admission != nullptr) {
              options_.admission->OnSessionDone(spec->client_id);
            }
          },
          spec->priority);
    }
    pool.Wait();
    if (options_.governor != nullptr) {
      // The pool dies with this scope; the probe must not outlive it.
      options_.governor->AttachQueueProbe(nullptr);
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const SessionResult& s : report.sessions) {
    report.total_stats += s.stats;
    report.total_objects += s.objects_delivered;
    report.total_frames_shed += s.frames_shed;
    report.total_frames_degraded += s.frames_degraded;
    switch (s.outcome) {
      case SessionResult::Outcome::kRejected:
        ++report.sessions_rejected;
        break;
      case SessionResult::Outcome::kCancelled:
        ++report.sessions_cancelled;
        break;
      case SessionResult::Outcome::kCompleted:
        // Only completed sessions' failures poison the aggregate; a
        // rejection is a policy outcome, not an engine error.
        if (report.status.ok() && !s.status.ok()) report.status = s.status;
        break;
    }
  }
  if (options_.pool != nullptr) {
    report.pool_hits = options_.pool->hits() - hits0;
    report.pool_misses = options_.pool->misses() - misses0;
  }
  return report;
}

}  // namespace dqmo
