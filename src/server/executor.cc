#include "server/executor.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "geom/box.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "query/session.h"
#include "server/session_runner.h"
#include "storage/prefetch.h"

namespace dqmo {

using server_internal::ExecMetrics;
using server_internal::FoldDouble;
using server_internal::FoldSegments;
using server_internal::FoldU64;
using server_internal::FrameController;
using server_internal::FrameLatencyScope;
using server_internal::kFnvOffset;
using server_internal::LockFrame;
using server_internal::MakeObserver;
using server_internal::Observer;

// ---------------------------------------------------------------------------
// ThreadPool.

ThreadPool::ThreadPool(int num_threads)
    : ThreadPool(Options{num_threads, 0}) {}

ThreadPool::ThreadPool(const Options& options) : options_(options) {
  DQMO_CHECK(options.num_threads >= 1);
  workers_.reserve(static_cast<size_t>(options.num_threads));
  for (int i = 0; i < options.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  Wait();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

size_t ThreadPool::QueueDepthLocked() const {
  size_t depth = 0;
  for (const auto& q : queues_) depth += q.size();
  return depth;
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return QueueDepthLocked();
}

void ThreadPool::Submit(std::function<void()> task,
                        SessionPriority priority) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (options_.max_queue > 0) {
      // Backpressure: a full bounded queue slows the producer down instead
      // of growing without limit.
      space_cv_.wait(lock, [this] {
        return QueueDepthLocked() < options_.max_queue;
      });
    }
    queues_[static_cast<size_t>(priority)].push_back(std::move(task));
    const size_t depth = QueueDepthLocked();
    ExecMetrics::Get().queue_depth->Set(static_cast<int64_t>(depth));
    ExecMetrics::Get().queue_depth_peak->SetMax(static_cast<int64_t>(depth));
  }
  work_cv_.notify_one();
}

bool ThreadPool::TrySubmit(std::function<void()> task,
                           SessionPriority priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (options_.max_queue > 0 && QueueDepthLocked() >= options_.max_queue) {
      return false;
    }
    queues_[static_cast<size_t>(priority)].push_back(std::move(task));
    const size_t depth = QueueDepthLocked();
    ExecMetrics::Get().queue_depth->Set(static_cast<int64_t>(depth));
    ExecMetrics::Get().queue_depth_peak->SetMax(static_cast<int64_t>(depth));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock,
                [this] { return QueueDepthLocked() == 0 && active_ == 0; });
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return stop_ || QueueDepthLocked() > 0; });
    std::deque<std::function<void()>>* queue = nullptr;
    for (auto& q : queues_) {  // Highest priority class first.
      if (!q.empty()) {
        queue = &q;
        break;
      }
    }
    if (queue == nullptr) return;  // stop_ and drained.
    std::function<void()> task = std::move(queue->front());
    queue->pop_front();
    ExecMetrics::Get().queue_depth->Set(
        static_cast<int64_t>(QueueDepthLocked()));
    ++active_;
    lock.unlock();
    space_cv_.notify_one();
    task();
    lock.lock();
    --active_;
    if (QueueDepthLocked() == 0 && active_ == 0) idle_cv_.notify_all();
  }
}

// ---------------------------------------------------------------------------
// TreeGate.

std::shared_lock<std::shared_mutex> TreeGate::LockShared() {
  const uint64_t tick = TickNs();
  Tracer::SpanScope span(SpanKind::kGateWait);
  std::shared_lock<std::shared_mutex> lock(mu_);
  ExecMetrics::Get().reader_wait_ns->RecordSince(tick);
  return lock;
}

TreeGate::WriteGuard::WriteGuard(TreeGate* gate) : gate_(gate) {
  const uint64_t tick = TickNs();
  lock_ = std::unique_lock<std::shared_mutex>(gate->mu_);
  ExecMetrics::Get().writer_wait_ns->RecordSince(tick);
}

TreeGate::WriteGuard::~WriteGuard() {
  ScopedLatencyTimer handover_timer(ExecMetrics::Get().handover_ns);
  // Still exclusive here: hand the dirtied pages over to the readers.
  // Stale cached copies are dropped first, then every dirty page is
  // sealed, so the next shared section reads fresh, checksummed bytes
  // without mutating anything but atomic counters.
  if (gate_->file_ != nullptr) {
    if (gate_->pool_ != nullptr || gate_->node_cache_ != nullptr) {
      for (PageId id : gate_->file_->dirty_page_ids()) {
        if (gate_->pool_ != nullptr) gate_->pool_->Invalidate(id);
        if (gate_->node_cache_ != nullptr) gate_->node_cache_->Invalidate(id);
      }
    }
    gate_->file_->SealAllDirty();
  }
  // Durability handover: drain the batched redo records before readers
  // resume, so no session ever observes an un-logged motion. Sync failures
  // are parked on the gate (a dtor cannot return them).
  if (gate_->wal_ != nullptr) {
    Status s = gate_->wal_->Sync();
    if (!s.ok()) {
      std::lock_guard<std::mutex> lock(gate_->wal_status_mu_);
      if (gate_->wal_status_.ok()) gate_->wal_status_ = std::move(s);
    }
  }
}

// ---------------------------------------------------------------------------
// Session runners.

namespace {

SessionResult RunHandoffSession(RTree* tree, const SessionSpec& spec,
                                PageReader* reader, TreeGate* gate,
                                OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  DynamicQuerySession::Options sopt;
  sopt.window = spec.window;
  sopt.reader = reader;
  sopt.npdq.reader = reader;
  sopt.hot_path = spec.hot_path;
  sopt.budget = ctl.engine_budget();
  sopt.prefetcher = spec.prefetcher;
  // A budgeted session must degrade (skip + kPartial), not fail.
  if (sopt.budget != nullptr) sopt.fault_policy = FaultPolicy::kSkipSubtree;
  DynamicQuerySession session(tree, sopt);
  const double base_horizon = sopt.prediction_horizon;

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      // A shed frame voids its declared future: speculative reads hinted
      // for it would only land as wasted I/O.
      if (spec.prefetcher != nullptr) spec.prefetcher->CancelPending();
      continue;  // Next frame's [t0, t] interval covers the gap.
    }
    if (ctl.governed()) {
      session.set_prediction_horizon(
          std::max(1e-3, base_horizon * ctl.horizon_scale()));
    }
    FrameLatencyScope latency(spec, &out);
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto frame = session.OnFrame(t, obs.pos, obs.vel);
    if (!frame.ok()) {
      out.status = frame.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &frame->fresh);
    out.objects_delivered += frame->fresh.size();
    ++out.frames_completed;
    if (ctl.FrameDegraded()) ++out.frames_degraded;
    ctl.EndFrame();
  }
  server_internal::FinishSession(&out, ctl);
  // The session (and its SPDQ's update listener) must unregister before
  // the gate lock of the last frame is long gone; destruction here is
  // outside any shared section, which is fine — AddListener/RemoveListener
  // are internally synchronized against the writer's notifications.
  out.stats = session.TotalStats();
  return out;
}

SessionResult RunNpdqSession(RTree* tree, const SessionSpec& spec,
                             PageReader* reader, TreeGate* gate,
                             OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  NpdqOptions nopt;
  nopt.reader = reader;
  nopt.hot_path = spec.hot_path;
  nopt.budget = ctl.engine_budget();
  nopt.prefetcher = spec.prefetcher;
  if (nopt.budget != nullptr) nopt.fault_policy = FaultPolicy::kSkipSubtree;
  NonPredictiveDynamicQuery npdq(tree, nopt);

  double prev_t = spec.t0;
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      if (spec.prefetcher != nullptr) spec.prefetcher->CancelPending();
      continue;  // prev_t stays: the next snapshot covers the gap.
    }
    const StBox q(Box::Centered(obs.pos, spec.window), Interval(prev_t, t));
    FrameLatencyScope latency(spec, &out);
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto fresh = npdq.Execute(q);
    if (!fresh.ok()) {
      out.status = fresh.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    FoldSegments(&out.checksum, &*fresh);
    out.objects_delivered += fresh->size();
    ++out.frames_completed;
    prev_t = t;
    if (ctl.FrameDegraded()) {
      ++out.frames_degraded;
      // An incomplete snapshot must not mask later frames (Lemma 1 assumes
      // "previous" retrieved everything); re-read fresh next frame.
      npdq.ResetHistory();
    }
    ctl.EndFrame();
  }
  server_internal::FinishSession(&out, ctl);
  out.stats = npdq.stats();
  return out;
}

SessionResult RunKnnSession(RTree* tree, const SessionSpec& spec,
                            PageReader* reader, TreeGate* gate,
                            OverloadGovernor* governor) {
  SessionResult out;
  out.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, governor);

  MovingKnnQuery::Options kopt;
  kopt.reader = reader;
  kopt.hot_path = spec.hot_path;
  kopt.budget = ctl.engine_budget();
  kopt.prefetcher = spec.prefetcher;
  if (kopt.budget != nullptr) kopt.fault_policy = FaultPolicy::kSkipSubtree;
  MovingKnnQuery knn(tree, spec.k, kopt);

  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++out.frames_shed;
      if (spec.prefetcher != nullptr) spec.prefetcher->CancelPending();
      continue;
    }
    FrameLatencyScope latency(spec, &out);
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    auto lock = LockFrame(gate);
    auto neighbors = knn.At(t, obs.pos);
    if (!neighbors.ok()) {
      out.status = neighbors.status();
      break;
    }
    FoldU64(&out.checksum, static_cast<uint64_t>(i));
    for (const Neighbor& n : *neighbors) {
      FoldU64(&out.checksum, n.motion.oid);
      FoldDouble(&out.checksum, n.distance);
    }
    out.objects_delivered += neighbors->size();
    ++out.frames_completed;
    if (ctl.FrameDegraded()) ++out.frames_degraded;
    ctl.EndFrame();
  }
  server_internal::FinishSession(&out, ctl);
  out.stats = knn.stats();
  return out;
}

}  // namespace

SessionResult RunSession(RTree* tree, const SessionSpec& spec,
                         PageReader* reader, TreeGate* gate,
                         OverloadGovernor* governor) {
  const uint64_t tick = TickNs();
  SessionResult out;
  switch (spec.kind) {
    case SessionKind::kNpdq:
      out = RunNpdqSession(tree, spec, reader, gate, governor);
      break;
    case SessionKind::kKnn:
      out = RunKnnSession(tree, spec, reader, gate, governor);
      break;
    case SessionKind::kSession:
      out = RunHandoffSession(tree, spec, reader, gate, governor);
      break;
  }
  ExecMetrics& em = ExecMetrics::Get();
  em.session_ns->RecordSince(tick);
  em.sessions->Add();
  em.session_objects->Add(out.objects_delivered);
  return out;
}

// ---------------------------------------------------------------------------
// SessionScheduler.

ExecutorReport SessionScheduler::Run(const std::vector<SessionSpec>& specs) {
  const uint64_t hits0 =
      options_.pool != nullptr ? options_.pool->hits() : 0;
  const uint64_t misses0 =
      options_.pool != nullptr ? options_.pool->misses() : 0;

  server_internal::ScheduleOptions sched;
  sched.num_threads = options_.num_threads;
  sched.max_queue = options_.max_queue;
  sched.admission = options_.admission;
  sched.governor = options_.governor;
  ExecutorReport report = server_internal::RunScheduledSessions(
      specs, sched, [this](const SessionSpec& spec) {
        return RunSession(tree_, spec, options_.reader, options_.gate,
                          options_.governor);
      });

  if (options_.pool != nullptr) {
    report.pool_hits = options_.pool->hits() - hits0;
    report.pool_misses = options_.pool->misses() - misses0;
  }
  return report;
}

}  // namespace dqmo
