#include "server/durability.h"

#include <cstdio>

#include "common/string_util.h"
#include "storage/fault.h"

namespace dqmo {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

std::string RecoveryReport::ToString() const {
  return StrFormat(
      "recovery{image=%s, ckpt_lsn=%llu, scanned=%llu, replayed=%llu, "
      "skipped=%llu, torn_bytes=%llu, lsn=%llu}",
      checkpoint_loaded ? "loaded" : "fresh",
      static_cast<unsigned long long>(checkpoint_lsn),
      static_cast<unsigned long long>(wal_records_scanned),
      static_cast<unsigned long long>(replayed),
      static_cast<unsigned long long>(skipped),
      static_cast<unsigned long long>(torn_bytes_dropped),
      static_cast<unsigned long long>(recovered_lsn));
}

Result<std::unique_ptr<DurableIndex>> DurableIndex::Open(
    const std::string& pgf_path, const std::string& wal_path,
    const Options& options) {
  auto index = std::unique_ptr<DurableIndex>(new DurableIndex());
  index->pgf_path_ = pgf_path;
  index->wal_path_ = wal_path;
  index->options_ = options;

  // 1. Checkpoint image, if one was ever installed. A crash-left .tmp next
  // to it is ignored by construction: only the rename installs an image.
  // Disk mode rebuilds the live file (pgf_path + ".live") from the image —
  // the live file is a disposable working copy, never the durable truth,
  // so a crash mid-build costs nothing.
  const bool had_image = FileExists(pgf_path);
  if (options.io_backend != IoBackend::kMemory) {
    DiskPageFile::Options disk_options = options.disk;
    disk_options.backend = options.io_backend;
    const std::string live_path = pgf_path + ".live";
    if (had_image) {
      DQMO_ASSIGN_OR_RETURN(index->disk_,
                            DiskPageFile::CreateFromImage(
                                live_path, pgf_path, disk_options));
    } else {
      DQMO_ASSIGN_OR_RETURN(index->disk_,
                            DiskPageFile::Create(live_path, disk_options));
    }
    index->store_ = index->disk_.get();
  } else {
    if (had_image) DQMO_RETURN_IF_ERROR(index->file_.LoadFrom(pgf_path));
    index->store_ = &index->file_;
  }
  if (had_image) {
    DQMO_ASSIGN_OR_RETURN(index->tree_, RTree::Open(index->store_));
    index->report_.checkpoint_loaded = true;
    index->report_.checkpoint_lsn = index->tree_->applied_lsn();
  } else {
    DQMO_ASSIGN_OR_RETURN(index->tree_,
                          RTree::Create(index->store_, options.tree));
  }

  // 2. Scan the log: torn tails are tolerated (nothing past the tear was
  // acknowledged), mid-log corruption propagates as the scan's typed error.
  DQMO_ASSIGN_OR_RETURN(WalScan scan, ScanWal(wal_path));
  index->report_.wal_records_scanned = scan.records.size();
  index->report_.torn_bytes_dropped = scan.torn_bytes;
  index->report_.torn_tail = scan.torn_tail;

  // 3. Redo the tail. The WAL is not attached yet, so replayed inserts are
  // not re-logged; the stored form is already quantized, so Insert
  // reproduces the pre-crash tree bit-for-bit.
  const uint64_t base_lsn = index->tree_->applied_lsn();
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kInsert || rec.lsn <= base_lsn) {
      ++index->report_.skipped;
      continue;
    }
    DQMO_RETURN_IF_ERROR(index->tree_->Insert(rec.motion));
    index->tree_->set_applied_lsn(rec.lsn);
    ++index->report_.replayed;
  }
  index->report_.recovered_lsn = index->tree_->applied_lsn();

  // 4. Open the writer (truncating any torn tail in place) and attach it.
  // min_next_lsn guards the reset-log case: an empty post-checkpoint WAL
  // must not restart LSNs below what the image already claims to contain.
  WalWriter::Options wal_options = options.wal;
  wal_options.min_next_lsn = index->tree_->applied_lsn() + 1;
  DQMO_RETURN_IF_ERROR(index->wal_.Open(
      wal_path, index->store_->mutable_stats(), wal_options));
  index->tree_->AttachWal(&index->wal_);
  return index;
}

Status DurableIndex::Insert(const MotionSegment& m) {
  DQMO_RETURN_IF_ERROR(tree_->Insert(m));
  if (options_.sync_each_insert) return wal_.Sync();
  return Status::OK();
}

Status DurableIndex::Sync() { return wal_.Sync(); }

Status DurableIndex::Checkpoint() {
  // Make every logged insert durable before the image that contains it can
  // exist; a crash from here on recovers from (old image, full log).
  DQMO_RETURN_IF_ERROR(wal_.Sync());
  CrashPoints::Hit(crash_points::kCkptBeforeTemp);
  // Meta (with the applied LSN) goes into the pages, then the whole image
  // is installed atomically — SaveTo's temp + fsync + rename, with the
  // kSaveBeforeRename crash point between the two.
  DQMO_RETURN_IF_ERROR(tree_->Flush());
  DQMO_RETURN_IF_ERROR(store_->SaveTo(pgf_path_));
  // Marker after the image: recovery does not need it (the meta LSN is
  // authoritative), but walinfo uses it to explain a log whose reset never
  // happened.
  DQMO_RETURN_IF_ERROR(
      wal_.AppendCheckpoint(tree_->applied_lsn(), tree_->num_segments())
          .status());
  DQMO_RETURN_IF_ERROR(wal_.Sync());
  CrashPoints::Hit(crash_points::kCkptBeforeWalReset);
  // The image now contains everything: start an empty log (atomic rename
  // again), LSN sequence continuing.
  return wal_.Reset();
}

Status DurableIndex::ReloadFromDisk() {
  if (!FileExists(pgf_path_)) {
    return Status::FailedPrecondition(
        "no checkpoint image to reload from; checkpoint before relying on "
        "online repair");
  }
  // Anything buffered but unsynced would be lost by the rebuild below even
  // though it was never acknowledged; sync first so the WAL is the complete
  // story.
  if (wal_.pending_records() > 0) DQMO_RETURN_IF_ERROR(wal_.Sync());
  if (disk_ != nullptr) {
    DQMO_RETURN_IF_ERROR(disk_->ReloadFromImage(pgf_path_));
  } else {
    DQMO_RETURN_IF_ERROR(file_.LoadFrom(pgf_path_));
  }
  DQMO_RETURN_IF_ERROR(tree_->Reopen());
  DQMO_ASSIGN_OR_RETURN(WalScan scan, ScanWal(wal_path_));
  // Replay without the WAL attached, exactly like Open(): redone inserts
  // must not be re-logged.
  tree_->AttachWal(nullptr);
  Status st = Status::OK();
  const uint64_t base_lsn = tree_->applied_lsn();
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kInsert || rec.lsn <= base_lsn) continue;
    st = tree_->Insert(rec.motion);
    if (!st.ok()) break;
    tree_->set_applied_lsn(rec.lsn);
  }
  tree_->AttachWal(&wal_);
  return st;
}

}  // namespace dqmo
