#include "server/scrubber.h"

#include <chrono>
#include <cstdio>
#include <vector>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "server/durability.h"
#include "server/health.h"
#include "storage/fault.h"
#include "storage/wal.h"

namespace dqmo {
namespace {

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::fclose(f);
  return true;
}

}  // namespace

ScrubOptions ScrubOptions::FromEnv() {
  ScrubOptions o;
  o.interval_ms = static_cast<uint64_t>(
      GetEnvInt("DQMO_SCRUB_INTERVAL_MS", static_cast<int64_t>(o.interval_ms)));
  o.repair = GetEnvBool("DQMO_SCRUB_REPAIR", o.repair);
  return o;
}

std::string ShardScrubber::PassReport::ToString() const {
  return StrFormat(
      "scrub{shards=%d, scanned=%llu, bad=%llu, rebuilt=%llu, promoted=%d, "
      "unrepairable=%d}",
      shards_scrubbed, static_cast<unsigned long long>(pages_scanned),
      static_cast<unsigned long long>(pages_bad),
      static_cast<unsigned long long>(pages_rebuilt), shards_promoted,
      shards_unrepairable);
}

ShardScrubber::ShardScrubber(ShardedEngine* engine, const ScrubOptions& options)
    : engine_(engine), options_(options) {
  DQMO_CHECK(engine != nullptr);
  DQMO_CHECK(engine->failure_domains());
}

ShardScrubber::~ShardScrubber() { Stop(); }

void ShardScrubber::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) return;
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
}

void ShardScrubber::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

void ShardScrubber::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, std::chrono::milliseconds(options_.interval_ms),
                 [this] { return stop_; });
    if (stop_) break;
    lock.unlock();
    ScrubPass();
    lock.lock();
  }
}

ShardScrubber::PassReport ShardScrubber::ScrubPass() {
  PassReport report;
  for (int i = 0; i < engine_->num_shards(); ++i) {
    CircuitBreaker* b = engine_->breaker(i);
    if (b == nullptr || b->state() != BreakerState::kOpen) continue;
    ScrubShard(i, &report);
  }
  passes_.fetch_add(1, std::memory_order_relaxed);
  return report;
}

void ShardScrubber::ScrubShard(int i, PassReport* report) {
  ShardedEngine::Shard& s = engine_->shard(i);
  ++report->shards_scrubbed;
  {
    auto guard = s.gate->LockExclusive();
    // No hedge probe may be mid-read while we verify or reload the file.
    s.hedged->Quiesce();
    // Nor any speculative read: a reload rewrites the file under the fd,
    // and a speculation issued pre-rebuild must never land post-rebuild.
    if (s.prefetcher != nullptr) s.prefetcher->Quiesce();
    std::vector<PageId> bad;
    const uint64_t bad_count = s.file->VerifyAllPages(&bad);
    report->pages_scanned += s.file->num_pages();
    HealthMetrics::Get().scrub_pages->Add(s.file->num_pages());
    report->pages_bad += bad_count;
    if (bad_count > 0) {
      if (!options_.repair || s.durable == nullptr) {
        // At-rest damage with nothing to rebuild from (or repair is off):
        // the shard stays quarantined, serving attributed kPartial frames.
        ++report->shards_unrepairable;
        return;
      }
      CrashPoints::Hit(crash_points::kScrubBeforeRepair);
      Status st = s.durable->ReloadFromDisk();
      if (!st.ok()) {
        // Durable pair itself damaged (or no checkpoint image yet).
        // Leave the breaker open; a later pass retries — recovery stays
        // monotone once whatever is corrupting reads clears.
        ++report->shards_unrepairable;
        return;
      }
      report->pages_rebuilt += bad_count;
      HealthMetrics::Get().scrub_pages_rebuilt->Add(bad_count);
      FlightRecorder::Record(FlightEventKind::kScrubRepair, i, bad_count);
    }
    // Caches may hold frames/nodes decoded from the damaged bytes.
    s.pool->Clear();
    if (s.node_cache != nullptr) s.node_cache->Clear();
  }
  // Drain outside the scrub guard: DrainRedo takes the gate itself, and a
  // write parked between the two acquisitions simply lands in this drain
  // (still open — inserts keep parking until promotion below).
  CrashPoints::Hit(crash_points::kScrubBeforeDrain);
  Status drain = engine_->DrainRedo(i);
  CrashPoints::Hit(crash_points::kScrubAfterDrain);
  if (!drain.ok()) return;  // DrainRedoLocked re-opened the breaker.
  s.breaker->OnRepairComplete();
  ++report->shards_promoted;
}

Result<OfflineRepair> RepairDurableShard(const std::string& pgf_path,
                                         const std::string& wal_path,
                                         const RTree::Options& tree) {
  OfflineRepair rep;
  if (FileExists(pgf_path)) {
    // Forensic pass first: count the damage before deciding how to heal.
    PageFile probe;
    PageFile::LoadOptions lo;
    lo.verify_checksums = false;
    Status st = probe.LoadFrom(pgf_path, lo);
    if (st.ok()) {
      std::vector<PageId> bad;
      rep.pages_bad = probe.VerifyAllPages(&bad);
    } else {
      rep.pages_bad = 1;  // Structurally damaged beyond even loading.
    }
  }

  DurableIndex::Options opt;
  opt.tree = tree;
  opt.sync_each_insert = false;
  {
    Result<std::unique_ptr<DurableIndex>> open =
        DurableIndex::Open(pgf_path, wal_path, opt);
    if (open.ok()) {
      // Image and log both load: normal recovery (torn tails truncated,
      // post-checkpoint records replayed). A fresh checkpoint re-seals
      // everything and empties the log.
      std::unique_ptr<DurableIndex> idx = std::move(open).value();
      rep.replayed = idx->report().replayed;
      rep.segments = idx->tree()->num_segments();
      DQMO_RETURN_IF_ERROR(idx->Checkpoint());
      return rep;
    }
  }

  // The pair would not open — image corruption, or mid-log WAL damage
  // (which the scan below reproduces and propagates: that state genuinely
  // lost acknowledged data). Image damage is repairable exactly when the
  // WAL still covers the full insert history, i.e. was never reset by a
  // checkpoint: its first insert record carries LSN 1.
  DQMO_ASSIGN_OR_RETURN(WalScan scan, ScanWal(wal_path));
  uint64_t first_insert_lsn = 0;
  for (const WalRecord& r : scan.records) {
    if (r.type == WalRecordType::kInsert) {
      first_insert_lsn = r.lsn;
      break;
    }
  }
  if (first_insert_lsn != 1) {
    return Status::Corruption(
        "unrepairable: checkpoint image damaged and the WAL does not cover "
        "the full history (first insert LSN != 1)");
  }
  const std::string aside = pgf_path + ".damaged";
  std::remove(aside.c_str());
  if (std::rename(pgf_path.c_str(), aside.c_str()) != 0) {
    return Status::IOError("could not set damaged image aside: " + pgf_path);
  }
  rep.image_rebuilt = true;
  DQMO_ASSIGN_OR_RETURN(std::unique_ptr<DurableIndex> idx,
                        DurableIndex::Open(pgf_path, wal_path, opt));
  rep.replayed = idx->report().replayed;
  rep.segments = idx->tree()->num_segments();
  DQMO_RETURN_IF_ERROR(idx->Checkpoint());
  return rep;
}

}  // namespace dqmo
