// Shared internals of the session runners (single-tree executor and the
// sharded router): the deterministic observer model, the FNV-1a result
// checksum folds, the per-frame budget/governor controller, and the
// scheduling loop that fans session specs over a ThreadPool.
//
// Everything here is an implementation detail shared by
// src/server/executor.cc and src/server/router.cc — the namespace name
// says so. The pieces were extracted verbatim from executor.cc so the
// sharded engine reproduces the single-tree engine's checksums bit for
// bit: equal observer trajectories, equal fold order, equal shed/degrade
// decisions.
#ifndef DQMO_SERVER_SESSION_RUNNER_H_
#define DQMO_SERVER_SESSION_RUNNER_H_

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <shared_mutex>
#include <vector>

#include "common/metrics.h"
#include "common/random.h"
#include "common/recorder.h"
#include "geom/vec.h"
#include "motion/motion_segment.h"
#include "query/budget.h"
#include "server/executor.h"
#include "server/overload.h"

namespace dqmo::server_internal {

/// Gate + scheduler metrics (process-wide; the ExecutorReport remains the
/// exact per-run account).
struct ExecMetrics {
  Histogram* reader_wait_ns;
  Histogram* writer_wait_ns;
  Histogram* handover_ns;
  Histogram* queue_wait_ns;
  Histogram* session_ns;
  Histogram* frame_ns;
  Counter* sessions;
  Counter* session_objects;
  Counter* frames_shed;
  Counter* sessions_cancelled;
  Gauge* queue_depth;
  Gauge* queue_depth_peak;

  static ExecMetrics& Get() {
    static ExecMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ExecMetrics{
          r.GetHistogram("dqmo_gate_reader_wait_ns",
                         "TreeGate shared-side acquisition wait"),
          r.GetHistogram("dqmo_gate_writer_wait_ns",
                         "TreeGate exclusive-side acquisition wait"),
          r.GetHistogram("dqmo_gate_handover_ns",
                         "WriteGuard release: invalidate + seal + WAL sync"),
          r.GetHistogram("dqmo_exec_queue_wait_ns",
                         "Submit-to-start wait in the session thread pool"),
          r.GetHistogram("dqmo_exec_session_ns",
                         "Wall time of one complete query session"),
          r.GetHistogram("dqmo_exec_frame_ns",
                         "Wall time of one governed session frame"),
          r.GetCounter("dqmo_exec_sessions_total",
                       "Query sessions run to completion (or first error)"),
          r.GetCounter("dqmo_exec_session_objects_total",
                       "Objects delivered across all sessions"),
          r.GetCounter("dqmo_frames_shed_total",
                       "Frames dropped whole by the overload governor"),
          r.GetCounter("dqmo_exec_sessions_cancelled_total",
                       "Sessions ended by cooperative cancellation"),
          r.GetGauge("dqmo_exec_queue_depth",
                     "Session thread-pool tasks queued, awaiting a worker"),
          r.GetGauge("dqmo_exec_queue_depth_peak",
                     "Deepest session thread-pool queue observed"),
      };
    }();
    return m;
  }
};

// ---------------------------------------------------------------------------
// Result checksums. FNV-1a over a canonical byte stream: frame index, then
// the frame's results sorted by key. Canonicalization makes the checksum a
// function of *what* was delivered, never of thread scheduling — and never
// of how many shards delivered it.

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline void FoldBytes(uint64_t* h, const void* p, size_t n) {
  const uint8_t* bytes = static_cast<const uint8_t*>(p);
  for (size_t i = 0; i < n; ++i) {
    *h ^= bytes[i];
    *h *= kFnvPrime;
  }
}

inline void FoldU64(uint64_t* h, uint64_t v) { FoldBytes(h, &v, sizeof(v)); }

inline void FoldDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  FoldU64(h, bits);
}

inline void FoldSegments(uint64_t* h, std::vector<MotionSegment>* fresh) {
  SortByKey(fresh);
  for (const MotionSegment& m : *fresh) {
    FoldU64(h, m.oid);
    FoldDouble(h, m.seg.time.lo);
  }
}

// ---------------------------------------------------------------------------
// Observer model: the same random-turn flight as bench/abl_session.cc's
// Pilot, parameterized by the bounce region so tests can confine sessions
// spatially. Driven entirely by the session's own Rng — deterministic, and
// independent of the index layout (the sharded engine relies on this: N
// per-shard sessions all replay the identical trajectory).

struct Observer {
  Vec pos;
  Vec vel;
  double next_turn = 0.0;

  void Advance(Rng* rng, const SessionSpec& spec, double t) {
    if (t >= next_turn) {
      const double angle = rng->Uniform(0, 2 * M_PI);
      const double speed = rng->Uniform(0.5, 2.0);
      vel = Vec(speed * std::cos(angle), speed * std::sin(angle));
      next_turn = t + rng->Uniform(0.5 * spec.mean_leg, 1.5 * spec.mean_leg);
    }
    for (int d = 0; d < 2; ++d) {
      pos[d] += vel[d] * spec.frame_dt;
      if (pos[d] < spec.region_lo || pos[d] > spec.region_hi) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], spec.region_lo, spec.region_hi);
      }
    }
  }
};

inline Observer MakeObserver(Rng* rng, const SessionSpec& spec) {
  // Start well inside the region so the first frames are not all bounces.
  const double margin = 0.1 * (spec.region_hi - spec.region_lo);
  Observer obs;
  obs.pos = Vec(rng->Uniform(spec.region_lo + margin, spec.region_hi - margin),
                rng->Uniform(spec.region_lo + margin, spec.region_hi - margin));
  obs.vel = Vec(1.0, 0.0);
  return obs;
}

/// Holds the gate's shared side for one frame (no-op when gate is null).
inline std::shared_lock<std::shared_mutex> LockFrame(TreeGate* gate) {
  if (gate == nullptr) return std::shared_lock<std::shared_mutex>();
  return gate->LockShared();
}

/// Per-session glue between the spec's budget knobs, the overload
/// governor, and the engines: arms the budget each frame with
/// governor-scaled limits, decides shedding, and feeds frame latency back.
/// Inactive (no budget, no limits, no governor) it hands the engines a
/// null budget — the bit-identical pre-budget path.
///
/// In the sharded engine one controller serves the whole fan-out: every
/// shard's engine is handed the same budget pointer, so a frame's deadline
/// and node allowance are charged once across all its shards.
class FrameController {
 public:
  FrameController(const SessionSpec& spec, OverloadGovernor* governor)
      : spec_(spec),
        governor_(governor),
        budget_(spec.budget != nullptr ? spec.budget : &local_),
        active_(spec.budget != nullptr || governor != nullptr ||
                spec.frame_deadline_us > 0 || spec.frame_node_budget > 0 ||
                spec.frame_prefetch_budget > 0) {}

  /// What the engines see: null when the session runs unbudgeted.
  QueryBudget* engine_budget() { return active_ ? budget_ : nullptr; }

  bool cancelled() const { return active_ && budget_->cancel_requested(); }

  /// Arms the budget for the coming frame. True: the governor sheds this
  /// frame instead — skip it entirely.
  bool ShedOrArm() {
    if (!active_) return false;
    OverloadGovernor::Directive d;
    d.frame_deadline_ns = spec_.frame_deadline_us * 1000;
    d.node_budget = spec_.frame_node_budget;
    if (governor_ != nullptr) {
      d = governor_->FrameDirective(spec_.priority, d.frame_deadline_ns,
                                    d.node_budget);
    }
    horizon_scale_ = d.horizon_scale;
    if (d.shed_frame) {
      ExecMetrics::Get().frames_shed->Add();
      FlightRecorder::Record(FlightEventKind::kFrameShed, -1,
                             static_cast<uint64_t>(spec_.priority));
      return true;
    }
    budget_->ArmFrame(QueryBudget::Limits{d.frame_deadline_ns, d.node_budget,
                                          spec_.frame_prefetch_budget});
    frame_start_ns_ = governor_ != nullptr ? NowNs() : 0;
    return false;
  }

  bool FrameDegraded() const { return active_ && budget_->stopped(); }

  /// Reports the completed frame's wall time to the governor.
  void EndFrame() {
    if (governor_ == nullptr) return;
    const uint64_t frame_ns = NowNs() - frame_start_ns_;
    ExecMetrics::Get().frame_ns->Record(frame_ns);
    governor_->OnFrame(frame_ns);
  }

  double horizon_scale() const { return horizon_scale_; }
  bool governed() const { return governor_ != nullptr; }

 private:
  const SessionSpec& spec_;
  OverloadGovernor* governor_;
  QueryBudget local_;
  QueryBudget* budget_;
  bool active_;
  double horizon_scale_ = 1.0;
  uint64_t frame_start_ns_ = 0;
};

/// Shared end-of-session bookkeeping for the runners.
inline void FinishSession(SessionResult* out, const FrameController& ctl) {
  if (ctl.cancelled()) {
    out->outcome = SessionResult::Outcome::kCancelled;
    ExecMetrics::Get().sessions_cancelled->Add();
  }
}

/// Measures one evaluated frame's wall time into
/// SessionResult::frame_latencies_us when the spec asks for it (the
/// sharding ablation's p99 source; off by default — no clock reads).
class FrameLatencyScope {
 public:
  FrameLatencyScope(const SessionSpec& spec, SessionResult* out)
      : out_(spec.record_frame_latency ? out : nullptr),
        start_ns_(out_ != nullptr ? NowNs() : 0) {}
  ~FrameLatencyScope() {
    if (out_ != nullptr) {
      out_->frame_latencies_us.push_back((NowNs() - start_ns_) / 1000);
    }
  }
  FrameLatencyScope(const FrameLatencyScope&) = delete;
  FrameLatencyScope& operator=(const FrameLatencyScope&) = delete;

 private:
  SessionResult* out_;
  uint64_t start_ns_;
};

// ---------------------------------------------------------------------------
// Scheduling loop shared by SessionScheduler (single tree) and ShardRouter
// (sharded engine): admission, pool fan-out or inline serial execution,
// and report aggregation. `run` maps one admitted spec to its result.

struct ScheduleOptions {
  int num_threads = 1;
  size_t max_queue = 0;
  AdmissionController* admission = nullptr;
  OverloadGovernor* governor = nullptr;
};

template <typename RunFn>
ExecutorReport RunScheduledSessions(const std::vector<SessionSpec>& specs,
                                    const ScheduleOptions& options,
                                    const RunFn& run) {
  ExecutorReport report;
  report.sessions.resize(specs.size());
  const auto start = std::chrono::steady_clock::now();

  // Admission decision for one spec; fills the slot on refusal.
  auto admit = [&options](const SessionSpec& spec, size_t queue_depth,
                          SessionResult* slot) {
    if (options.admission == nullptr) return true;
    const AdmissionOutcome outcome = options.admission->TryAdmit(
        spec.client_id, spec.priority, queue_depth);
    if (outcome == AdmissionOutcome::kAdmitted) return true;
    slot->status = AdmissionStatus(outcome);
    slot->outcome = SessionResult::Outcome::kRejected;
    return false;
  };

  if (options.num_threads <= 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      if (!admit(specs[i], 0, &report.sessions[i])) continue;
      report.sessions[i] = run(specs[i]);
      if (options.admission != nullptr) {
        options.admission->OnSessionDone(specs[i].client_id);
      }
    }
  } else {
    ThreadPool pool(
        ThreadPool::Options{options.num_threads, options.max_queue});
    if (options.governor != nullptr) {
      options.governor->AttachQueueProbe(
          [&pool] { return pool.queue_depth(); });
    }
    for (size_t i = 0; i < specs.size(); ++i) {
      SessionResult* slot = &report.sessions[i];
      const SessionSpec* spec = &specs[i];
      const size_t depth = pool.queue_depth();
      report.max_queue_depth = std::max(report.max_queue_depth, depth);
      if (!admit(*spec, depth, slot)) continue;
      const uint64_t submit_tick = TickNs();
      pool.Submit(
          [&options, &run, slot, spec, submit_tick] {
            ExecMetrics::Get().queue_wait_ns->RecordSince(submit_tick);
            *slot = run(*spec);
            if (options.admission != nullptr) {
              options.admission->OnSessionDone(spec->client_id);
            }
          },
          spec->priority);
    }
    pool.Wait();
    if (options.governor != nullptr) {
      // The pool dies with this scope; the probe must not outlive it.
      options.governor->AttachQueueProbe(nullptr);
    }
  }

  report.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  for (const SessionResult& s : report.sessions) {
    report.total_stats += s.stats;
    report.total_objects += s.objects_delivered;
    report.total_frames_shed += s.frames_shed;
    report.total_frames_degraded += s.frames_degraded;
    switch (s.outcome) {
      case SessionResult::Outcome::kRejected:
        ++report.sessions_rejected;
        break;
      case SessionResult::Outcome::kCancelled:
        ++report.sessions_cancelled;
        break;
      case SessionResult::Outcome::kCompleted:
        // Only completed sessions' failures poison the aggregate; a
        // rejection is a policy outcome, not an engine error.
        if (report.status.ok() && !s.status.ok()) report.status = s.status;
        break;
    }
  }
  return report;
}

}  // namespace dqmo::server_internal

#endif  // DQMO_SERVER_SESSION_RUNNER_H_
