// Sharded scale-out engine: spatial + velocity partitioning of the index
// (ROADMAP item 1).
//
// The single-tree engine tops out where one R-tree, one WAL, and one
// writer gate serialize everything. This module partitions the segment
// space into N independent shards — a uniform spatial grid crossed with a
// 2-way speed split (slow/fast movers), following the grid fan-out of
// "Distributed processing of continuous range queries over moving
// objects" (arXiv 2206.01905) and the velocity partitioning of "Speed
// Partitioning for Indexing Moving Objects" (arXiv 1411.4940): fast
// movers produce long, fat space-time MBRs, and giving them their own
// trees stops them inflating every slow shard's internal nodes.
//
// Each shard owns the full single-tree storage stack: an RTree over its
// own PageFile (or DurableIndex: checkpoint + WAL), a BufferPool, a
// DecodedNodeCache, and a TreeGate. Shards share *nothing* — no common
// page ids, no common caches, no common gate — so per-shard writers never
// contend and a fault in one shard degrades only that shard's answers.
//
// Partitioning function (ShardMap):
//   1. speed class: fast iff segment speed >= speed_split_threshold
//      (skipped when speed_split is off or num_shards == 1);
//   2. within the class, a rows x cols grid over [0, space_size]^2,
//      indexed by the segment's spatial-midpoint cell.
// The map is a pure function of the segment, so the differential oracle
// can replay it and assert every segment lands in exactly one shard.
//
// Query fan-out, stream merging, and result-integrity aggregation live in
// server/router.h; this header is the data plane.
#ifndef DQMO_SERVER_SHARD_H_
#define DQMO_SERVER_SHARD_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "motion/motion_segment.h"
#include "rtree/node_cache.h"
#include "rtree/rtree.h"
#include "server/durability.h"
#include "server/executor.h"
#include "server/health.h"
#include "storage/async_io.h"
#include "storage/buffer_pool.h"
#include "storage/fault.h"
#include "storage/io_stats.h"
#include "storage/page_file.h"
#include "storage/prefetch.h"

namespace dqmo {

/// The pure routing function: segment -> shard index.
///
/// With the speed split on and N >= 2 shards, max(1, N/4) shards serve the
/// fast class and the rest the slow class (most traffic is slow movers —
/// the paper's workload draws speeds from N(1, 0.25), so a 1.5 threshold
/// sends the ~2.3% tail to the fast trees where it cannot fatten anyone
/// else's MBRs). Each class lays its shards out as a rows x cols grid with
/// rows the largest divisor of the class size <= sqrt(size), so any shard
/// count works, not just perfect squares.
class ShardMap {
 public:
  ShardMap(int num_shards, double space_size, bool speed_split,
           double speed_split_threshold);

  /// Shard owning this segment. Pure: depends only on the constructor
  /// parameters and the segment's geometry (midpoint + speed), never on
  /// insertion order or current shard contents. Positions outside
  /// [0, space_size] clamp into the boundary cells.
  int ShardOf(const MotionSegment& m) const;

  int num_shards() const { return num_shards_; }
  bool speed_split() const { return split_; }
  double speed_split_threshold() const { return threshold_; }
  /// Shards serving the fast class (0 when the split is off).
  int fast_shards() const { return split_ ? fast_.count : 0; }
  int slow_shards() const { return slow_.count; }

  std::string Describe() const;

 private:
  /// One speed class's contiguous run of shard ids, laid out as a grid.
  struct ClassGrid {
    int first = 0;
    int count = 1;
    int rows = 1;
    int cols = 1;
  };
  static ClassGrid MakeGrid(int first, int count);
  int CellOf(const ClassGrid& grid, const MotionSegment& m) const;

  int num_shards_;
  double space_size_;
  bool split_;
  double threshold_;
  ClassGrid slow_;
  ClassGrid fast_;
};

struct ShardedEngineOptions {
  int num_shards = 1;
  /// Spatial extent of the world, [0, space_size]^2 (the paper's 100x100).
  double space_size = 100.0;
  /// Cross the spatial grid with a slow/fast speed split.
  bool speed_split = true;
  /// Segment speed (length units / time unit) at or above which a segment
  /// routes to the fast-class shards.
  double speed_split_threshold = 1.5;
  /// Per-shard BufferPool capacity (pages) and internal lock sharding.
  size_t pool_pages = 1024;
  int pool_shards = 4;
  /// Per-shard decoded-node cache capacity (nodes); 0 disables the cache.
  size_t cache_nodes = 512;
  RTree::Options tree;
  /// Non-empty: durable mode. Each shard persists as
  /// <durable_dir>/shard-NNNN.pgf + shard-NNNN.wal (the layout
  /// dqmo_tool scrub/walinfo/recover accept), group-commit WAL synced by
  /// each shard gate's write-guard release. Empty: in-memory page files.
  std::string durable_dir;
  /// Live-page backend for durable shards (storage/async_io.h). kMemory
  /// (default) keeps the PR-7 in-process PageFile. kPread/kUring give each
  /// shard its own DiskPageFile (shard-NNNN.pgf.live, own fd + async read
  /// queue) plus a Prefetcher the per-shard query sessions hint. Ignored
  /// for in-memory (non-durable) engines.
  IoBackend io_backend = IoBackend::kMemory;
  /// O_DIRECT for the disk backends (downgraded when the fs refuses).
  bool o_direct = false;
  /// Speculative reads outstanding per shard (0 disables prefetch).
  size_t prefetch_depth = 8;
  /// Memory budget (MiB) split across all shards' page caches: each shard
  /// gets budget/num_shards, of which 3/4 sizes its BufferPool and 1/4 its
  /// DiskPageFile dirty-frame table (floors of 16 pages each). 0 keeps
  /// pool_pages and the default dirty budget as given.
  size_t page_budget_mb = 0;
  /// Per-shard failure domains (server/health.h): each shard gains a
  /// circuit breaker + quarantine gate, a hedged/faulty/retrying read
  /// chain under its BufferPool, and a redo queue that parks writes while
  /// the breaker is open. Off (the default) leaves the PR 7 chain — and
  /// its byte-for-byte I/O accounting — untouched.
  bool failure_domains = false;
  BreakerOptions breaker;
  HedgeOptions hedge;
  /// Retry layer of the failure-domain chain (post-hedge, pre-breaker).
  RetryingPageReader::RetryPolicy retry;
  /// Serves injected slow-read delays for the per-shard fault planes;
  /// null sleeps for real. Tests inject a counting no-op for sleep-free
  /// slow-storm chaos programs.
  FaultyPageReader::Sleeper fault_sleeper;
  /// Reads DQMO_SHARDS (shard count), DQMO_SPEED_SPLIT (threshold;
  /// "off"/"0" disables the split), DQMO_FAILURE_DOMAINS, the
  /// DQMO_BREAKER_* / DQMO_HEDGE_* knobs, and the disk knobs —
  /// DQMO_IO_BACKEND, DQMO_O_DIRECT, DQMO_PREFETCH_DEPTH,
  /// DQMO_PAGE_BUDGET_MB — over these defaults.
  static ShardedEngineOptions FromEnv();
};

/// N independent single-tree engines behind one insert-routing facade.
class ShardedEngine {
 public:
  /// One shard's full storage stack. Readers take gate->LockShared() per
  /// frame and read tree through reader(); the insert path takes the
  /// exclusive side per routed batch.
  struct Shard {
    /// Durable mode only: owns file/tree/wal.
    std::unique_ptr<DurableIndex> durable;
    /// In-memory mode only.
    PageFile memory_file;
    std::unique_ptr<RTree> memory_tree;

    PageStore* file = nullptr;  // Points into durable or memory_file.
    RTree* tree = nullptr;
    std::unique_ptr<BufferPool> pool;
    std::unique_ptr<DecodedNodeCache> node_cache;
    std::unique_ptr<TreeGate> gate;

    /// Disk mode only: speculative read driver over the shard's own
    /// DiskPageFile (own fd + async queue). Sits at the bottom of the read
    /// chain — pool (or the failure-domain chain) reads through it — and
    /// is hinted by this shard's query sessions.
    std::unique_ptr<Prefetcher> prefetcher;

    /// Failure-domain chain (options.failure_domains only; otherwise the
    /// pool reads the file directly). Pool misses flow
    ///   breaker_gate -> retry -> hedged -> faulty_{primary,secondary}
    /// -> file; the two faulty readers share one per-shard injector (the
    /// satellite-3 fix: fault config addressable per shard) but never a
    /// scratch buffer, because the hedge worker reads the primary while
    /// the caller probes the secondary.
    std::unique_ptr<CircuitBreaker> breaker;
    std::unique_ptr<FaultInjector> injector;
    std::unique_ptr<FaultyPageReader> faulty_primary;
    std::unique_ptr<FaultyPageReader> faulty_secondary;
    std::unique_ptr<HedgedPageReader> hedged;
    std::unique_ptr<RetryingPageReader> retry;
    std::unique_ptr<BreakerGateReader> breaker_gate;
    std::unique_ptr<RedoQueue> redo;

    /// Page source for this shard's queries (the shard's pool).
    PageReader* reader() { return pool.get(); }
  };

  static Result<std::unique_ptr<ShardedEngine>> Create(
      const ShardedEngineOptions& options);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Routes one motion update to its shard and inserts it under that
  /// shard's exclusive gate (durable mode: with its WAL record; the
  /// guard's release syncs, and the post-release wal_status check makes
  /// the acknowledgment honest).
  Status Insert(const MotionSegment& m);

  /// Groups `batch` by shard and inserts each group under one exclusive
  /// gate acquisition per shard — the amortization Insert cannot do.
  Status InsertBatch(const std::vector<MotionSegment>& batch);

  /// Routes `data` into per-shard partitions and STR bulk-loads each
  /// shard's tree. Requires empty shards (fresh engine, in-memory mode).
  /// Query-equivalent to inserting every segment through Insert: routing
  /// uses the same ShardMap and storage the same quantization.
  Status BulkLoad(std::vector<MotionSegment> data);

  /// Durable mode: checkpoints every shard (image + WAL reset). A
  /// quarantined shard holding parked writes is skipped — resetting its
  /// WAL would orphan records the tree has not applied; its checkpoint
  /// resumes after reinstatement. Reinstated shards drain first.
  Status Checkpoint();

  /// Satellite 3: per-shard fault addressing. Swaps shard `i`'s fault
  /// injector (under its exclusive gate, with the hedge worker quiesced
  /// and that shard's caches dropped, so the new schedule bites on the
  /// very next read). failure_domains mode only. The injector stays owned
  /// by the engine; the returned pointer is valid until the next
  /// Arm/Clear on the same shard.
  FaultInjector* ArmShardFault(int i, const FaultInjector::Options& o);
  void ClearShardFault(int i);

  /// Applies shard `i`'s parked writes to its tree (exclusive gate taken
  /// inside). Durable shards replay by LSN — entries a repair already
  /// replayed from the WAL are skipped, so draining is idempotent across
  /// crash/repair interleavings. Called by the router at reinstatement,
  /// the scrubber after repair, and the insert path before a post-
  /// quarantine insert.
  Status DrainRedo(int i);

  bool failure_domains() const { return options_.failure_domains; }
  CircuitBreaker* breaker(int i) { return shard(i).breaker.get(); }

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Shard& shard(int i) { return *shards_[static_cast<size_t>(i)]; }
  const ShardMap& map() const { return map_; }
  const ShardedEngineOptions& options() const { return options_; }
  uint64_t num_segments() const;

  /// Sum of every shard's PageFile counters — the global I/O account.
  /// Shards share no storage, so per-shard stats are disjoint and the sum
  /// never double counts (tests/io_stats_test.cc pins this down).
  IoStats TotalIoStats() const;

 private:
  ShardedEngine(const ShardedEngineOptions& options)
      : options_(options),
        map_(options.num_shards, options.space_size, options.speed_split,
             options.speed_split_threshold) {}

  Status InsertIntoShard(Shard* s, const MotionSegment& m);
  /// Builds the failure-domain read chain + redo queue for shard `i` and
  /// points its pool at it. No-op unless options_.failure_domains.
  void AttachFailureDomain(Shard* s, int i);
  /// Caller holds s->gate exclusively.
  Status DrainRedoLocked(Shard* s);
  Status ParkLocked(Shard* s, const MotionSegment& m);

  ShardedEngineOptions options_;
  ShardMap map_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace dqmo

#endif  // DQMO_SERVER_SHARD_H_
