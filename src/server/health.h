// Per-shard failure domains: health tracking, circuit breaking, hedged
// reads, and the redo queue that parks writes for quarantined shards.
//
// PR 7 made the shard the unit of scale; this layer makes it the unit of
// *failure*. Each shard's read chain gains two decorators and a tracker:
//
//   BufferPool -> BreakerGateReader -> RetryingPageReader
//              -> HedgedPageReader  -> FaultyPageReader x2 -> PageFile
//
//   - CircuitBreaker: error-rate + latency EWMAs fed from post-retry read
//     outcomes and WAL acks, driving the classic three-state machine
//     (closed -> open -> half-open with seeded probe frames). While open,
//     BreakerGateReader fails every read of that shard *instantly* — the
//     router keeps calling the shard's sessions each frame, so the
//     existing kSkipSubtree machinery turns quarantine into attributed
//     kPartial frames with zero special cases in the merge paths, and the
//     per-shard session control state stays in observer lockstep for a
//     clean resync at reinstatement.
//   - HedgedPageReader: for slow-but-alive shards. The primary read runs
//     on a worker thread; if it has not answered within
//     max(min_latency, factor x latency EWMA) a second probe is issued on
//     the caller thread and the first successful result wins. Slow reads
//     therefore never open the breaker — errors do, latency gets hedged.
//   - RedoQueue: writes routed to a quarantined shard park instead of
//     touching a possibly-damaged tree. For durable shards the parked
//     record is appended to the *shard's own WAL* (synced before the ack),
//     so "acked writes are never lost" holds by the same ARIES argument as
//     normal inserts: a crash at any point replays them from the log, and
//     a live drain applies exactly the records the tree has not seen, by
//     LSN. For in-memory shards the queue is the ack domain (process
//     lifetime), matching the storage tier's guarantees.
//
// Everything is deterministic under a fixed seed (probe schedules, chaos
// programs) so a failing quarantine run replays bit-for-bit.
#ifndef DQMO_SERVER_HEALTH_H_
#define DQMO_SERVER_HEALTH_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "motion/motion_segment.h"
#include "query/budget.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace dqmo {

/// The classic three states. kOpen = quarantined: reads short-circuit,
/// writes park. kHalfOpen = repaired (or cooled down), being probed back
/// into service frame by frame.
enum class BreakerState : uint8_t { kClosed = 0, kOpen = 1, kHalfOpen = 2 };

const char* BreakerStateName(BreakerState s);

struct BreakerOptions {
  /// EWMA smoothing factor for the per-read error indicator (1 = only the
  /// latest read matters).
  double error_alpha = 0.25;
  /// Error-rate EWMA at or above which the breaker opens...
  double open_error_rate = 0.5;
  /// ...once at least this many post-retry outcomes were observed.
  uint64_t min_samples = 8;
  /// Independent fast trip: this many consecutive failed reads open the
  /// breaker regardless of the EWMA (a freshly dead shard should not need
  /// min_samples frames to be noticed).
  uint64_t consecutive_failures = 4;
  /// Evaluated frames spent open before moving to half-open on our own
  /// (transient faults may simply pass). 0 = never: only the scrubber's
  /// OnRepairComplete() promotes, i.e. repair is mandatory.
  uint64_t cooldown_frames = 16;
  /// Probability that a half-open frame probes (serves reads normally) vs
  /// stays blocked. Drawn from a seeded stream: probe schedules replay.
  double probe_rate = 0.5;
  /// Consecutive healthy probe frames required to close.
  uint64_t probe_successes_to_close = 3;
  uint64_t probe_seed = 1;
  /// EWMA smoothing factor for successful-read latency (hedging threshold).
  double latency_alpha = 0.2;

  /// DQMO_BREAKER_ERROR_RATE, DQMO_BREAKER_MIN_SAMPLES,
  /// DQMO_BREAKER_CONSECUTIVE, DQMO_BREAKER_COOLDOWN_FRAMES,
  /// DQMO_BREAKER_PROBE_RATE, DQMO_BREAKER_PROBE_CLOSES.
  static BreakerOptions FromEnv();
};

/// Per-shard health tracker + three-state circuit breaker. Fed from three
/// planes: read outcomes (any reader thread, post-retry), WAL/write acks
/// (the insert path), and the router's frame plane (OnFrameStart /
/// OnProbeOutcome). Thread-safe; the read-side hot question "are reads
/// blocked right now?" is two relaxed atomic loads.
class CircuitBreaker {
 public:
  CircuitBreaker(int shard, const BreakerOptions& options);

  /// One post-retry read outcome. `latency_ns` is charged to the latency
  /// EWMA only for successful reads (a fast failure is not a fast shard).
  /// Error outcomes here mean the retry layer was *exhausted* — transient
  /// blips that a retry absorbed never reach the breaker.
  void OnReadOutcome(bool ok, uint64_t latency_ns);

  /// One WAL append/sync outcome from the write path.
  void OnWalOutcome(bool ok);

  /// What the router should do with this shard this frame.
  struct FrameDecision {
    /// Reads short-circuit this frame (open, or half-open non-probe).
    bool blocked = false;
    /// Half-open probe frame: reads flow; report the verdict via
    /// OnProbeOutcome once the shard's frame completed.
    bool probe = false;
  };

  /// Advances the frame plane: counts cooldown while open (possibly
  /// promoting to half-open), draws the probe coin while half-open.
  FrameDecision OnFrameStart();

  /// Verdict of a probe frame: `healthy` when the shard's frame completed
  /// with no skipped pages. Enough consecutive healthy probes close the
  /// breaker (resetting health state); one failed probe reopens it.
  void OnProbeOutcome(bool healthy);

  /// Quarantines immediately (chaos programs, operator action, scrub
  /// verdicts). No-op when already open.
  void ForceOpen(const std::string& cause);

  /// The scrubber finished rebuilding this shard: move open -> half-open
  /// so the router's probe frames re-admit it gradually.
  void OnRepairComplete();

  /// True when a read arriving *now* must be short-circuited. Cheap —
  /// called on every pool-miss read.
  bool ReadsBlocked() const {
    const auto s =
        static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
    if (s == BreakerState::kClosed) return false;
    if (s == BreakerState::kOpen) return true;
    return !probe_frame_.load(std::memory_order_relaxed);
  }

  BreakerState state() const {
    return static_cast<BreakerState>(state_.load(std::memory_order_relaxed));
  }
  int shard() const { return shard_; }
  double error_rate() const;
  uint64_t latency_ewma_ns() const;
  /// Times the breaker entered kOpen (trips + failed probes).
  uint64_t open_events() const;
  uint64_t probe_frames() const;
  std::string last_open_cause() const;

 private:
  void OpenLocked(const std::string& cause);
  void SetStateLocked(BreakerState next);

  const int shard_;
  const BreakerOptions options_;

  mutable std::mutex mu_;
  // Guarded by mu_.
  Rng probe_rng_;
  double error_ewma_ = 0.0;
  double latency_ewma_ns_d_ = 0.0;
  uint64_t samples_ = 0;
  uint64_t consecutive_errors_ = 0;
  uint64_t frames_open_ = 0;
  uint64_t probe_streak_ = 0;
  uint64_t open_events_ = 0;
  uint64_t probe_frames_ = 0;
  std::string last_open_cause_;

  // Mirrors of the mu_-guarded state for the lock-free read-side question.
  std::atomic<uint8_t> state_{static_cast<uint8_t>(BreakerState::kClosed)};
  std::atomic<bool> probe_frame_{false};
  std::atomic<uint64_t> latency_ewma_ns_{0};
};

/// Top-of-chain decorator: the quarantine short-circuit plus the breaker's
/// outcome feed. Sits directly under the BufferPool, above the retry layer,
/// so (a) a blocked read costs nothing downstream and (b) outcomes reaching
/// the breaker are post-retry — only genuinely exhausted reads count.
class BreakerGateReader : public PageReader {
 public:
  /// Neither pointer owned. `clock_ns` is injectable for tests; null uses
  /// steady_clock.
  BreakerGateReader(PageReader* base, CircuitBreaker* breaker,
                    uint64_t (*clock_ns)() = nullptr);

  Result<ReadResult> Read(PageId id) override;

  uint64_t blocked_reads() const {
    return blocked_reads_.load(std::memory_order_relaxed);
  }

 private:
  PageReader* base_;
  CircuitBreaker* breaker_;
  uint64_t (*clock_ns_)();
  std::atomic<uint64_t> blocked_reads_{0};
  /// The chain below (retry Rng, faulty scratch, single-caller hedging) is
  /// stateful; concurrent pool misses from different sessions serialize
  /// here. Blocked reads and pool hits never touch it.
  std::mutex fetch_mu_;
};

struct HedgeOptions {
  /// Master switch; off keeps the chain a pure pass-through (and the
  /// worker thread unspawned).
  bool enabled = false;
  /// Hedge once the primary is this many times slower than the shard's
  /// successful-read latency EWMA...
  double latency_factor = 4.0;
  /// ...but never before this floor (a cold EWMA must not cause a hedge
  /// storm).
  uint64_t min_latency_us = 200;

  /// DQMO_HEDGE, DQMO_HEDGE_FACTOR, DQMO_HEDGE_MIN_US.
  static HedgeOptions FromEnv();
};

/// Tail-latency hedging for slow-but-alive shards: the primary read runs
/// on a dedicated worker thread; when it dawdles past the threshold a
/// second probe runs on the caller thread against an independent reader
/// (separate FaultyPageReader scratch — the two must not share buffers),
/// and the first result wins. Single caller at a time (it lives under the
/// per-shard BufferPool miss path, which serializes fetches per page);
/// the worker only ever touches `primary`.
///
/// Budget interaction: hedging is charged once by construction — the
/// traversal charges the QueryBudget per node *visit*, not per physical
/// probe, so a hedged node costs exactly what an unhedged one does. The
/// budget hook below additionally stops new hedges on frames the budget
/// has already cancelled: no speculative second probe for a result that
/// will be thrown away.
class HedgedPageReader : public PageReader {
 public:
  /// Pointers not owned. `health` supplies the latency EWMA (may be null:
  /// the floor alone decides). `clock_ns` injectable for tests.
  HedgedPageReader(PageReader* primary, PageReader* secondary,
                   CircuitBreaker* health, const HedgeOptions& options,
                   uint64_t (*clock_ns)() = nullptr);
  ~HedgedPageReader() override;

  Result<ReadResult> Read(PageId id) override;

  /// Frames cancelled by this budget suppress new hedges. Atomic: with
  /// concurrent sessions the last writer wins — a stale pointer only makes
  /// the hedge heuristic conservative, never incorrect.
  void set_budget(QueryBudget* budget) {
    budget_.store(budget, std::memory_order_relaxed);
  }

  /// Blocks until no primary probe is outstanding on the worker. Callers
  /// that are about to mutate the chain underneath (swap a fault injector,
  /// reload the page file) quiesce first, under the shard's exclusive
  /// gate.
  void Quiesce();

  uint64_t hedges() const { return hedges_; }
  /// Hedges where the secondary probe delivered the winning result.
  uint64_t hedges_won() const { return hedges_won_; }
  /// Hedges where the primary finished first after all.
  uint64_t hedges_lost() const { return hedges_lost_; }

 private:
  struct Job {
    PageId id = 0;
    bool pending = false;   // Submitted, worker has not finished it.
    bool done = false;      // Finished, result not yet consumed.
    Status status = Status::OK();
    ReadResult result;
    // Causal attribution for the worker leg: the armed frame (if any) that
    // submitted this read, the shard it ran under, and the submit tick. The
    // worker reports its kHedgeProbe span back into that frame's merged
    // tree when it finishes — even if the hedge already won the race.
    Tracer::FrameHandle trace;
    int16_t shard = -1;
    uint64_t submit_ns = 0;
  };

  void WorkerLoop();
  /// Blocks until no job is outstanding (a previous hedge may have left
  /// the worker mid-read; its result buffer must not be overwritten while
  /// a caller still holds it, so we join here, at the *next* read).
  void DrainWorker(std::unique_lock<std::mutex>& lock);
  /// Copies a worker-produced page into this caller thread's own buffer.
  /// The worker's result points into the *worker thread's* per-thread
  /// scratch (the DiskPageFile contract ties scratch lifetime to the
  /// reading thread), which is recycled as soon as the worker accepts the
  /// next job — possibly while this caller is still decoding the page.
  /// Must be called with mu_ held: that orders the copy before any next
  /// job submission. Results produced on the caller's own thread (the
  /// hedge leg) keep the base contract and must NOT be localized.
  ReadResult Localize(const ReadResult& r);

  PageReader* primary_;
  PageReader* secondary_;
  CircuitBreaker* health_;
  const HedgeOptions options_;
  uint64_t (*clock_ns_)();
  std::atomic<QueryBudget*> budget_{nullptr};

  uint64_t hedges_ = 0;
  uint64_t hedges_won_ = 0;
  uint64_t hedges_lost_ = 0;

  std::mutex mu_;
  std::condition_variable work_cv_;   // Caller -> worker: job submitted.
  std::condition_variable done_cv_;   // Worker -> caller: job finished.
  // One page buffer per caller thread (touched only under mu_): holds the
  // localized copy of a worker-produced result until that caller's next
  // read through this reader.
  std::unordered_map<std::thread::id, std::vector<uint8_t>> caller_pages_;
  Job job_;
  bool stop_ = false;
  std::thread worker_;  // Spawned lazily on the first enabled Read.
  bool worker_started_ = false;
};

/// Parked writes for a quarantined shard. The queue itself is an in-memory
/// list of (lsn, stored segment); durability of the *ack* comes from the
/// shard's own WAL — the insert path appends the record there (group-commit
/// synced by the gate's write guard, same as a normal insert) and parks the
/// (lsn, segment) pair here instead of touching the tree. Draining applies
/// exactly the entries whose LSN the tree has not reached; after a repair
/// (ReloadFromDisk replays the full WAL) that is naturally none of them.
/// In-memory shards park with lsn 0 and drain unconditionally.
class RedoQueue {
 public:
  struct Entry {
    uint64_t lsn = 0;
    MotionSegment motion;
  };

  void Park(uint64_t lsn, const MotionSegment& stored);
  /// Removes and returns everything parked, FIFO.
  std::vector<Entry> Take();
  /// Puts a Take()n tail back at the *front* (a failed drain must not
  /// reorder acked writes behind ones parked meanwhile).
  void Restore(std::vector<Entry> entries);
  size_t depth() const;
  uint64_t total_parked() const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  uint64_t total_parked_ = 0;
};

/// Counters/gauges for the failure-domain layer, registered once.
struct HealthMetrics {
  // Gauge: number of shards currently NOT closed (0 = all healthy).
  class Gauge* breaker_state;
  class Counter* breaker_transitions;
  class Counter* quarantine_events;
  class Counter* quarantined_frames;
  class Counter* hedged_reads;
  class Counter* hedged_reads_won;
  class Counter* hedged_reads_lost;
  class Counter* scrub_pages;
  class Counter* scrub_pages_rebuilt;
  class Gauge* redo_queue_depth;
  class Counter* redo_parked;
  class Counter* redo_drained;

  static HealthMetrics& Get();
};

}  // namespace dqmo

#endif  // DQMO_SERVER_HEALTH_H_
