#include "server/router.h"

#include <algorithm>
#include <memory>
#include <queue>
#include <unordered_set>
#include <utility>

#include "common/metrics.h"
#include "common/random.h"
#include "common/trace.h"
#include "geom/box.h"
#include "query/npdq.h"
#include "query/session.h"
#include "server/health.h"
#include "server/session_runner.h"
#include "storage/prefetch.h"

namespace dqmo {

using server_internal::ExecMetrics;
using server_internal::FoldDouble;
using server_internal::FoldSegments;
using server_internal::FoldU64;
using server_internal::FrameController;
using server_internal::FrameLatencyScope;
using server_internal::kFnvOffset;
using server_internal::MakeObserver;
using server_internal::Observer;

namespace {

struct RouterMetrics {
  Histogram* fanout_width;
  Counter* frames_pruned;
  Counter* frames_partial;
  Counter* sessions;

  static RouterMetrics& Get() {
    static RouterMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return RouterMetrics{
          r.GetHistogram("dqmo_shard_fanout_width",
                         "Shards evaluated per sharded query frame"),
          r.GetCounter("dqmo_shard_frames_pruned_total",
                       "Shard evaluations skipped by the root-bounds prune"),
          r.GetCounter("dqmo_shard_frames_partial_total",
                       "Sharded frames whose merged answer was kPartial"),
          r.GetCounter("dqmo_shard_sessions_total",
                       "Sessions run through the shard router"),
      };
    }();
    return m;
  }
};

/// Shared side of every shard's gate for one frame, in shard order.
/// Readers lock ascending and writers hold a single gate at a time, so
/// the order cannot deadlock.
std::vector<std::shared_lock<std::shared_mutex>> LockAllShards(
    ShardedEngine* engine) {
  std::vector<std::shared_lock<std::shared_mutex>> locks;
  locks.reserve(static_cast<size_t>(engine->num_shards()));
  for (int s = 0; s < engine->num_shards(); ++s) {
    // Tag so the gate-wait span inside LockShared lands in this shard's
    // subtree of the frame's merged trace.
    Tracer::ShardTag tag(s);
    locks.push_back(engine->shard(s).gate->LockShared());
  }
  return locks;
}

/// A shed frame voids every shard's declared future: speculative reads
/// hinted for it would only land as wasted I/O (no-op on memory backends).
void CancelShardPrefetch(ShardedEngine* engine) {
  for (int s = 0; s < engine->num_shards(); ++s) {
    Prefetcher* pf = engine->shard(s).prefetcher.get();
    if (pf != nullptr) pf->CancelPending();
  }
}

/// Canonical per-stream order the entry-time merge expects.
void SortStreamByEntryTime(std::vector<MotionSegment>* stream) {
  std::stable_sort(stream->begin(), stream->end(),
                   [](const MotionSegment& a, const MotionSegment& b) {
                     if (a.seg.time.lo != b.seg.time.lo) {
                       return a.seg.time.lo < b.seg.time.lo;
                     }
                     return a.key() < b.key();
                   });
}

/// Per-shard root-bounds cache for the NPDQ fan-out prune, refreshed when
/// the shard's update stamp moves (inserts; removals only shrink bounds,
/// so a stale cover stays conservative).
struct BoundsCache {
  UpdateStamp stamp = 0;
  bool valid = false;
  StBox bounds;
};

/// True iff the shard provably contributes nothing to `q`: empty tree, or
/// root bounds (a cover of every stored match box) disjoint from q. Called
/// under the shard's shared gate.
bool CanPruneShard(RTree* tree, BoundsCache* cache, const StBox& q) {
  if (tree->num_segments() == 0) return true;
  const UpdateStamp stamp = tree->stamp();
  if (!cache->valid || cache->stamp != stamp) {
    auto bounds = tree->RootBounds();
    if (!bounds.ok()) return false;  // Let the traversal surface the error.
    cache->bounds = *bounds;
    cache->stamp = stamp;
    cache->valid = true;
  }
  return !cache->bounds.Overlaps(q);
}

/// Per-frame breaker bookkeeping shared by the three runners. StartFrame
/// runs before any shard lock is held: it advances each breaker's frame
/// plane, drains the redo queue of every shard whose reads will flow this
/// frame (DrainRedo takes the exclusive gate itself; no-op at depth zero),
/// and records blocked / probe / just-reinstated per shard.
struct BreakerFramePlane {
  std::vector<uint8_t> blocked;
  std::vector<uint8_t> probe;
  /// Blocked on the previous evaluated frame, flowing on this one — the
  /// resync boundary (NPDQ histories of such shards must be forgotten).
  std::vector<uint8_t> reinstated;
  bool any_blocked = false;
  bool active = false;

  void Init(ShardedEngine* engine) {
    active = engine->failure_domains();
    const size_t n = static_cast<size_t>(engine->num_shards());
    blocked.assign(n, 0);
    probe.assign(n, 0);
    reinstated.assign(n, 0);
  }

  void StartFrame(ShardedEngine* engine) {
    if (!active) return;
    any_blocked = false;
    for (int s = 0; s < engine->num_shards(); ++s) {
      const size_t si = static_cast<size_t>(s);
      CircuitBreaker* b = engine->breaker(s);
      if (b == nullptr) continue;
      const CircuitBreaker::FrameDecision d = b->OnFrameStart();
      bool now_blocked = d.blocked;
      probe[si] = d.probe ? 1 : 0;
      if (!now_blocked) {
        // Parked writes become visible before this frame reads. A failed
        // drain re-opened the breaker; treat the frame as blocked.
        Tracer::ShardScope drain_scope(s, SpanKind::kRedoDrain);
        now_blocked = !engine->DrainRedo(s).ok();
      }
      reinstated[si] = (blocked[si] != 0 && !now_blocked) ? 1 : 0;
      blocked[si] = now_blocked ? 1 : 0;
      any_blocked |= now_blocked;
    }
  }
};

/// Wires the frame budget into every shard's hedged reader for the
/// session's lifetime (budget-cancelled frames suppress speculative second
/// probes) and unwires it on exit, so no reader is left pointing at a
/// dead FrameController. Sessions racing on one engine overwrite each
/// other's pointer — harmless for the heuristic, so concurrent *budgeted*
/// chaos runs should keep hedging off.
struct HedgeBudgetScope {
  ShardedEngine* engine = nullptr;

  HedgeBudgetScope(ShardedEngine* e, QueryBudget* budget) {
    if (!e->failure_domains() || budget == nullptr) return;
    engine = e;
    for (int s = 0; s < e->num_shards(); ++s) {
      e->shard(s).hedged->set_budget(budget);
    }
  }
  ~HedgeBudgetScope() {
    if (engine == nullptr) return;
    for (int s = 0; s < engine->num_shards(); ++s) {
      engine->shard(s).hedged->set_budget(nullptr);
    }
  }
};

/// Fold of one delivery stream on its own (order-insensitive: FoldSegments
/// sorts by key first). Copies — the stream still has to feed the merge.
uint64_t StreamChecksum(const std::vector<MotionSegment>& stream) {
  std::vector<MotionSegment> copy = stream;
  uint64_t h = kFnvOffset;
  FoldSegments(&h, &copy);
  return h;
}

}  // namespace

// ---------------------------------------------------------------------------
// Merges.

std::vector<MotionSegment> MergeStreamsByEntryTime(
    std::vector<std::vector<MotionSegment>>* streams) {
  struct Cursor {
    size_t stream;
    size_t pos;
  };
  // Min-heap by (entry time, key, stream index); position order within one
  // stream is automatic (a stream's cursor advances monotonically).
  auto after = [streams](const Cursor& a, const Cursor& b) {
    const MotionSegment& ma = (*streams)[a.stream][a.pos];
    const MotionSegment& mb = (*streams)[b.stream][b.pos];
    if (ma.seg.time.lo != mb.seg.time.lo) {
      return ma.seg.time.lo > mb.seg.time.lo;
    }
    const MotionSegment::Key ka = ma.key();
    const MotionSegment::Key kb = mb.key();
    if (ka < kb) return false;
    if (kb < ka) return true;
    return a.stream > b.stream;
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(after)> heap(
      after);
  size_t total = 0;
  for (size_t s = 0; s < streams->size(); ++s) {
    total += (*streams)[s].size();
    if (!(*streams)[s].empty()) heap.push(Cursor{s, 0});
  }
  std::vector<MotionSegment> out;
  out.reserve(total);
  std::unordered_set<MotionSegment::Key, MotionKeyHash> seen;
  while (!heap.empty()) {
    Cursor c = heap.top();
    heap.pop();
    MotionSegment& m = (*streams)[c.stream][c.pos];
    if (seen.insert(m.key()).second) out.push_back(std::move(m));
    if (++c.pos < (*streams)[c.stream].size()) heap.push(c);
  }
  return out;
}

std::vector<Neighbor> MergeNeighborsByDistance(
    const std::vector<std::vector<Neighbor>>& streams, size_t k) {
  std::vector<Neighbor> all;
  for (const auto& s : streams) all.insert(all.end(), s.begin(), s.end());
  std::stable_sort(all.begin(), all.end(),
                   [](const Neighbor& a, const Neighbor& b) {
                     if (a.distance != b.distance) {
                       return a.distance < b.distance;
                     }
                     return a.motion.key() < b.motion.key();
                   });
  if (all.size() > k) all.resize(k);
  return all;
}

// ---------------------------------------------------------------------------
// Sharded session runners. Each mirrors its single-tree sibling in
// executor.cc frame for frame: same Rng draws, same shed/degrade
// decisions, same checksum folds — only the evaluation fans out.

namespace {

void RunShardedHandoff(ShardedEngine* engine, const SessionSpec& spec,
                       const ShardRouter::Options& options,
                       ShardedSessionResult* out) {
  const int n = engine->num_shards();
  SessionResult& res = out->result;
  res.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, options.governor);

  std::vector<std::unique_ptr<DynamicQuerySession>> sessions;
  sessions.reserve(static_cast<size_t>(n));
  double base_horizon = DynamicQuerySession::Options{}.prediction_horizon;
  for (int s = 0; s < n; ++s) {
    DynamicQuerySession::Options sopt;
    sopt.window = spec.window;
    sopt.reader = engine->shard(s).reader();
    sopt.npdq.reader = sopt.reader;
    sopt.hot_path = spec.hot_path;
    sopt.budget = ctl.engine_budget();
    sopt.prefetcher = engine->shard(s).prefetcher.get();
    // Failure domains: a quarantined shard answers reads with IOError;
    // skip-subtree turns that into an attributed kPartial frame instead
    // of killing the whole fan-out.
    if (sopt.budget != nullptr || engine->failure_domains()) {
      sopt.fault_policy = FaultPolicy::kSkipSubtree;
    }
    base_horizon = sopt.prediction_horizon;
    sessions.push_back(std::make_unique<DynamicQuerySession>(
        engine->shard(s).tree, sopt));
  }
  HedgeBudgetScope hedge_scope(engine, ctl.engine_budget());
  BreakerFramePlane plane;
  plane.Init(engine);

  std::vector<std::vector<MotionSegment>> streams(static_cast<size_t>(n));
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (options.frame_hook) options.frame_hook(i);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++res.frames_shed;
      CancelShardPrefetch(engine);
      continue;  // Next frame's [t0, t] interval covers the gap.
    }
    if (ctl.governed()) {
      for (auto& session : sessions) {
        session->set_prediction_horizon(
            std::max(1e-3, base_horizon * ctl.horizon_scale()));
      }
    }
    // The frame scope opens before breaker/redo work so the merged trace
    // captures redo drains and gate waits, not just shard evaluation.
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    plane.StartFrame(engine);
    FrameLatencyScope latency(spec, &res);
    auto locks = LockAllShards(engine);
    bool partial = false;
    bool failed = false;
    std::vector<uint64_t> shard_cs;
    if (options.record_frames) {
      shard_cs.assign(static_cast<size_t>(n), kFnvOffset);
    }
    for (int s = 0; s < n; ++s) {
      Tracer::ShardScope shard_scope(s);
      const size_t si = static_cast<size_t>(s);
      streams[si].clear();
      const uint64_t skips0 =
          plane.active ? sessions[si]->skip_report().pages_skipped() : 0;
      auto frame = sessions[si]->OnFrame(t, obs.pos, obs.vel);
      if (!frame.ok()) {
        res.status = frame.status();
        failed = true;
        break;
      }
      partial |= frame->integrity == ResultIntegrity::kPartial;
      if (plane.active && plane.probe[si] != 0) {
        // Probe verdict: the frame ran end to end without a single new
        // skip. One bad probe re-opens; a streak of good ones closes.
        engine->breaker(s)->OnProbeOutcome(
            sessions[si]->skip_report().pages_skipped() == skips0);
      }
      SortStreamByEntryTime(&frame->fresh);
      if (options.record_frames) shard_cs[si] = StreamChecksum(frame->fresh);
      streams[si] = std::move(frame->fresh);
    }
    if (failed) break;
    RouterMetrics::Get().fanout_width->Record(static_cast<uint64_t>(n));
    std::vector<MotionSegment> merged = [&] {
      Tracer::SpanScope merge_span(SpanKind::kMerge,
                                   static_cast<uint64_t>(n));
      return MergeStreamsByEntryTime(&streams);
    }();
    FoldU64(&res.checksum, static_cast<uint64_t>(i));
    FoldSegments(&res.checksum, &merged);
    res.objects_delivered += merged.size();
    ++res.frames_completed;
    if (partial) {
      ++out->frames_partial;
      RouterMetrics::Get().frames_partial->Add();
    }
    if (plane.any_blocked) {
      ++out->frames_quarantined;
      HealthMetrics::Get().quarantined_frames->Add();
    }
    if (options.record_frames) {
      ShardedSessionResult::FrameRecord rec;
      rec.frame = i;
      rec.partial = partial;
      rec.shard_blocked = plane.blocked;
      rec.shard_checksums = std::move(shard_cs);
      uint64_t h = kFnvOffset;
      FoldU64(&h, static_cast<uint64_t>(i));
      FoldSegments(&h, &merged);
      rec.merged_checksum = h;
      out->frames.push_back(std::move(rec));
    }
    if (ctl.FrameDegraded()) ++res.frames_degraded;
    ctl.EndFrame();
  }
  server_internal::FinishSession(&res, ctl);
  out->shard_stats.resize(static_cast<size_t>(n));
  out->shard_skips.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    out->shard_stats[static_cast<size_t>(s)] =
        sessions[static_cast<size_t>(s)]->TotalStats();
    out->shard_skips[static_cast<size_t>(s)].Merge(
        sessions[static_cast<size_t>(s)]->skip_report());
    res.stats += out->shard_stats[static_cast<size_t>(s)];
  }
}

void RunShardedNpdq(ShardedEngine* engine, const SessionSpec& spec,
                    const ShardRouter::Options& options,
                    ShardedSessionResult* out) {
  const int n = engine->num_shards();
  SessionResult& res = out->result;
  res.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, options.governor);

  std::vector<std::unique_ptr<NonPredictiveDynamicQuery>> npdq;
  npdq.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    NpdqOptions nopt;
    nopt.reader = engine->shard(s).reader();
    nopt.hot_path = spec.hot_path;
    nopt.budget = ctl.engine_budget();
    nopt.prefetcher = engine->shard(s).prefetcher.get();
    if (nopt.budget != nullptr || engine->failure_domains()) {
      nopt.fault_policy = FaultPolicy::kSkipSubtree;
    }
    npdq.push_back(std::make_unique<NonPredictiveDynamicQuery>(
        engine->shard(s).tree, nopt));
  }
  HedgeBudgetScope hedge_scope(engine, ctl.engine_budget());
  BreakerFramePlane plane;
  plane.Init(engine);
  out->shard_stats.resize(static_cast<size_t>(n));
  out->shard_skips.resize(static_cast<size_t>(n));

  std::vector<BoundsCache> bounds(static_cast<size_t>(n));
  std::vector<std::vector<MotionSegment>> streams(static_cast<size_t>(n));
  double prev_t = spec.t0;
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (options.frame_hook) options.frame_hook(i);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++res.frames_shed;
      CancelShardPrefetch(engine);
      continue;  // prev_t stays: the next snapshot covers the gap.
    }
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    plane.StartFrame(engine);
    if (plane.active) {
      for (int s = 0; s < n; ++s) {
        // Quarantined frames left this shard's "previous" snapshots
        // incomplete; anything they masked must not stay lost. Forgetting
        // the history makes the first flowing frame a full re-delivery —
        // the resync after which the merged stream is byte-identical to a
        // never-faulted engine's.
        if (plane.reinstated[static_cast<size_t>(s)] != 0) {
          npdq[static_cast<size_t>(s)]->ResetHistory();
        }
      }
    }
    const StBox q(Box::Centered(obs.pos, spec.window), Interval(prev_t, t));
    FrameLatencyScope latency(spec, &res);
    auto locks = LockAllShards(engine);
    uint64_t evaluated = 0;
    bool partial = false;
    bool failed = false;
    std::vector<uint64_t> shard_cs;
    if (options.record_frames) {
      shard_cs.assign(static_cast<size_t>(n), kFnvOffset);
    }
    for (int s = 0; s < n; ++s) {
      Tracer::ShardScope shard_scope(s);
      const size_t si = static_cast<size_t>(s);
      streams[si].clear();
      if (options.spatial_prune &&
          CanPruneShard(engine->shard(s).tree, &bounds[si], q)) {
        // The shard provably matches nothing; install q as its previous
        // snapshot so later deltas stay exact.
        npdq[si]->NoteSkippedSnapshot(q);
        ++out->shard_frames_pruned;
        RouterMetrics::Get().frames_pruned->Add();
        continue;
      }
      ++evaluated;
      auto fresh = npdq[si]->Execute(q);
      if (!fresh.ok()) {
        res.status = fresh.status();
        failed = true;
        break;
      }
      partial |= npdq[si]->integrity() == ResultIntegrity::kPartial;
      if (plane.active && plane.probe[si] != 0) {
        engine->breaker(s)->OnProbeOutcome(
            npdq[si]->skip_report().pages_skipped() == 0);
      }
      out->shard_skips[si].Merge(npdq[si]->skip_report());
      SortStreamByEntryTime(&*fresh);
      if (options.record_frames) shard_cs[si] = StreamChecksum(*fresh);
      streams[si] = std::move(*fresh);
    }
    if (failed) break;
    RouterMetrics::Get().fanout_width->Record(evaluated);
    std::vector<MotionSegment> merged = [&] {
      Tracer::SpanScope merge_span(SpanKind::kMerge, evaluated);
      return MergeStreamsByEntryTime(&streams);
    }();
    FoldU64(&res.checksum, static_cast<uint64_t>(i));
    FoldSegments(&res.checksum, &merged);
    res.objects_delivered += merged.size();
    ++res.frames_completed;
    prev_t = t;
    if (partial) {
      ++out->frames_partial;
      RouterMetrics::Get().frames_partial->Add();
    }
    if (plane.any_blocked) {
      ++out->frames_quarantined;
      HealthMetrics::Get().quarantined_frames->Add();
    }
    if (options.record_frames) {
      ShardedSessionResult::FrameRecord rec;
      rec.frame = i;
      rec.partial = partial;
      rec.shard_blocked = plane.blocked;
      rec.shard_checksums = std::move(shard_cs);
      uint64_t h = kFnvOffset;
      FoldU64(&h, static_cast<uint64_t>(i));
      FoldSegments(&h, &merged);
      rec.merged_checksum = h;
      out->frames.push_back(std::move(rec));
    }
    if (ctl.FrameDegraded()) {
      ++res.frames_degraded;
      // An incomplete merged snapshot must not mask later frames in any
      // shard (the single-tree runner resets its whole history too).
      for (auto& q_shard : npdq) q_shard->ResetHistory();
    }
    ctl.EndFrame();
  }
  server_internal::FinishSession(&res, ctl);
  for (int s = 0; s < n; ++s) {
    out->shard_stats[static_cast<size_t>(s)] =
        npdq[static_cast<size_t>(s)]->stats();
    res.stats += out->shard_stats[static_cast<size_t>(s)];
  }
}

void RunShardedKnn(ShardedEngine* engine, const SessionSpec& spec,
                   const ShardRouter::Options& options,
                   ShardedSessionResult* out) {
  const int n = engine->num_shards();
  SessionResult& res = out->result;
  res.checksum = kFnvOffset;
  Rng rng(spec.seed);
  Observer obs = MakeObserver(&rng, spec);
  FrameController ctl(spec, options.governor);
  HedgeBudgetScope hedge_scope(engine, ctl.engine_budget());
  BreakerFramePlane plane;
  plane.Init(engine);

  // Every shard answers each frame with a stateless full KnnAt search, NOT
  // a per-shard MovingKnnQuery fence cache. The fence argument ("anything
  // outside the cached candidates was farther than the fence at cache time
  // and cannot have closed the gap") is only sound for objects whose
  // alive-at-cache-time segment lives in the SAME tree: a segment rollover
  // that crosses a grid cell or speed class makes the object appear in a
  // shard whose cache never saw it, with no distance constraint at all, so
  // a shard-local fence would silently drop true neighbors. A stateless
  // search per shard is exact by construction; the merged global top-k is
  // exact because every true global neighbor is in its own shard's local
  // top-k.
  std::vector<QueryStats> stats(static_cast<size_t>(n));
  out->shard_stats.resize(static_cast<size_t>(n));
  out->shard_skips.resize(static_cast<size_t>(n));

  std::vector<std::vector<Neighbor>> candidates(static_cast<size_t>(n));
  for (int i = 1; i <= spec.frames; ++i) {
    const double t = spec.t0 + i * spec.frame_dt;
    obs.Advance(&rng, spec, t);
    if (options.frame_hook) options.frame_hook(i);
    if (ctl.cancelled()) break;
    if (ctl.ShedOrArm()) {
      ++res.frames_shed;
      CancelShardPrefetch(engine);
      continue;
    }
    Tracer::FrameScope frame_scope(spec.seed, static_cast<uint64_t>(i));
    plane.StartFrame(engine);
    FrameLatencyScope latency(spec, &res);
    auto locks = LockAllShards(engine);
    bool partial = false;
    bool failed = false;
    std::vector<uint64_t> shard_cs;
    if (options.record_frames) {
      shard_cs.assign(static_cast<size_t>(n), kFnvOffset);
    }
    for (int s = 0; s < n; ++s) {
      const size_t si = static_cast<size_t>(s);
      Tracer::ShardScope shard_scope(s);
      SkipReport frame_skip;
      KnnOptions kopt;
      kopt.reader = engine->shard(s).reader();
      kopt.hot_path = spec.hot_path;
      kopt.budget = ctl.engine_budget();
      kopt.prefetcher = engine->shard(s).prefetcher.get();
      kopt.skip_report = &frame_skip;
      if (kopt.budget != nullptr || engine->failure_domains()) {
        kopt.fault_policy = FaultPolicy::kSkipSubtree;
      }
      auto neighbors = KnnAt(*engine->shard(s).tree, obs.pos, t, spec.k,
                             &stats[si], kopt);
      if (!neighbors.ok()) {
        res.status = neighbors.status();
        failed = true;
        break;
      }
      partial |= frame_skip.pages_skipped() > 0;
      if (plane.active && plane.probe[si] != 0) {
        engine->breaker(s)->OnProbeOutcome(frame_skip.pages_skipped() == 0);
      }
      out->shard_skips[si].Merge(frame_skip);
      candidates[si] = std::move(*neighbors);
      if (options.record_frames) {
        uint64_t h = kFnvOffset;
        for (const Neighbor& nb : candidates[si]) {
          FoldU64(&h, nb.motion.oid);
          FoldDouble(&h, nb.distance);
        }
        shard_cs[si] = h;
      }
    }
    if (failed) break;
    RouterMetrics::Get().fanout_width->Record(static_cast<uint64_t>(n));
    std::vector<Neighbor> merged = [&] {
      Tracer::SpanScope merge_span(SpanKind::kMerge,
                                   static_cast<uint64_t>(n));
      return MergeNeighborsByDistance(candidates,
                                      static_cast<size_t>(spec.k));
    }();
    FoldU64(&res.checksum, static_cast<uint64_t>(i));
    for (const Neighbor& nb : merged) {
      FoldU64(&res.checksum, nb.motion.oid);
      FoldDouble(&res.checksum, nb.distance);
    }
    res.objects_delivered += merged.size();
    ++res.frames_completed;
    if (partial) {
      ++out->frames_partial;
      RouterMetrics::Get().frames_partial->Add();
    }
    if (plane.any_blocked) {
      ++out->frames_quarantined;
      HealthMetrics::Get().quarantined_frames->Add();
    }
    if (options.record_frames) {
      ShardedSessionResult::FrameRecord rec;
      rec.frame = i;
      rec.partial = partial;
      rec.shard_blocked = plane.blocked;
      rec.shard_checksums = std::move(shard_cs);
      uint64_t h = kFnvOffset;
      FoldU64(&h, static_cast<uint64_t>(i));
      for (const Neighbor& nb : merged) {
        FoldU64(&h, nb.motion.oid);
        FoldDouble(&h, nb.distance);
      }
      rec.merged_checksum = h;
      out->frames.push_back(std::move(rec));
    }
    if (ctl.FrameDegraded()) ++res.frames_degraded;
    ctl.EndFrame();
  }
  server_internal::FinishSession(&res, ctl);
  for (int s = 0; s < n; ++s) {
    out->shard_stats[static_cast<size_t>(s)] = stats[static_cast<size_t>(s)];
    res.stats += out->shard_stats[static_cast<size_t>(s)];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardRouter.

ShardedSessionResult ShardRouter::RunOne(const SessionSpec& spec) const {
  const uint64_t tick = TickNs();
  ShardedSessionResult out;
  switch (spec.kind) {
    case SessionKind::kNpdq:
      RunShardedNpdq(engine_, spec, options_, &out);
      break;
    case SessionKind::kKnn:
      RunShardedKnn(engine_, spec, options_, &out);
      break;
    case SessionKind::kSession:
      RunShardedHandoff(engine_, spec, options_, &out);
      break;
  }
  ExecMetrics& em = ExecMetrics::Get();
  em.session_ns->RecordSince(tick);
  em.sessions->Add();
  em.session_objects->Add(out.result.objects_delivered);
  RouterMetrics::Get().sessions->Add();
  return out;
}

ExecutorReport ShardRouter::Run(const std::vector<SessionSpec>& specs) const {
  uint64_t hits0 = 0, misses0 = 0;
  for (int s = 0; s < engine_->num_shards(); ++s) {
    hits0 += engine_->shard(s).pool->hits();
    misses0 += engine_->shard(s).pool->misses();
  }

  server_internal::ScheduleOptions sched;
  sched.num_threads = options_.num_threads;
  sched.max_queue = options_.max_queue;
  sched.admission = options_.admission;
  sched.governor = options_.governor;
  ExecutorReport report = server_internal::RunScheduledSessions(
      specs, sched,
      [this](const SessionSpec& spec) { return RunOne(spec).result; });

  uint64_t hits1 = 0, misses1 = 0;
  for (int s = 0; s < engine_->num_shards(); ++s) {
    hits1 += engine_->shard(s).pool->hits();
    misses1 += engine_->shard(s).pool->misses();
  }
  report.pool_hits = hits1 - hits0;
  report.pool_misses = misses1 - misses0;
  return report;
}

}  // namespace dqmo
