#include "server/overload.h"

#include <algorithm>

#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

struct OverloadMetrics {
  Counter* admission_rejected;
  Counter* admission_admitted;
  Gauge* governor_state;
  Counter* governor_escalations;

  static OverloadMetrics& Get() {
    static OverloadMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return OverloadMetrics{
          r.GetCounter("dqmo_admission_rejected_total",
                       "Sessions refused at admission (queue full or quota)"),
          r.GetCounter("dqmo_admission_admitted_total",
                       "Sessions admitted into the scheduler"),
          r.GetGauge("dqmo_governor_state",
                     "Overload-governor degradation level (0 = transparent)"),
          r.GetCounter("dqmo_governor_escalations_total",
                       "Overload-governor level increases"),
      };
    }();
    return m;
  }
};

}  // namespace

const char* SessionPriorityName(SessionPriority priority) {
  switch (priority) {
    case SessionPriority::kInteractive:
      return "interactive";
    case SessionPriority::kNormal:
      return "normal";
    case SessionPriority::kBatch:
      return "batch";
  }
  return "unknown";
}

AdmissionOptions AdmissionOptions::FromEnv() {
  AdmissionOptions o;
  o.max_queue_depth = static_cast<size_t>(std::max<int64_t>(
      0, GetEnvInt("DQMO_EXEC_QUEUE_MAX",
                   static_cast<int64_t>(o.max_queue_depth))));
  o.per_client_quota = static_cast<uint64_t>(std::max<int64_t>(
      0, GetEnvInt("DQMO_CLIENT_QUOTA",
                   static_cast<int64_t>(o.per_client_quota))));
  return o;
}

Status AdmissionStatus(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return Status::OK();
    case AdmissionOutcome::kRejectedQueueFull:
      return Status::ResourceExhausted("admission rejected: queue full");
    case AdmissionOutcome::kRejectedQuota:
      return Status::ResourceExhausted(
          "admission rejected: per-client quota exceeded");
  }
  return Status::Internal("unknown admission outcome");
}

AdmissionController::AdmissionController(const AdmissionOptions& options)
    : options_(options) {}

AdmissionOutcome AdmissionController::TryAdmit(uint64_t client_id,
                                               SessionPriority priority,
                                               size_t queue_depth) {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmitted;
  if (options_.max_queue_depth > 0) {
    // Priority headroom: batch loses queue space first, interactive last.
    size_t allowed = options_.max_queue_depth;
    if (priority == SessionPriority::kBatch) {
      allowed = options_.max_queue_depth / 2;
    } else if (priority == SessionPriority::kNormal) {
      allowed = options_.max_queue_depth * 4 / 5;
    }
    allowed = std::max<size_t>(allowed, 1);
    if (queue_depth >= allowed) outcome = AdmissionOutcome::kRejectedQueueFull;
  }
  if (outcome == AdmissionOutcome::kAdmitted &&
      options_.per_client_quota > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    uint64_t& in_flight = in_flight_[client_id];
    if (in_flight >= options_.per_client_quota) {
      outcome = AdmissionOutcome::kRejectedQuota;
    } else {
      ++in_flight;
    }
  }
  if (outcome == AdmissionOutcome::kAdmitted) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    OverloadMetrics::Get().admission_admitted->Add();
  } else {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    OverloadMetrics::Get().admission_rejected->Add();
    FlightRecorder::Record(FlightEventKind::kAdmissionReject, -1,
                           static_cast<uint64_t>(priority));
  }
  return outcome;
}

void AdmissionController::OnSessionDone(uint64_t client_id) {
  if (options_.per_client_quota == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = in_flight_.find(client_id);
  if (it != in_flight_.end() && it->second > 0) --it->second;
}

OverloadGovernor::Options OverloadGovernor::Options::FromEnv() {
  Options o;
  o.overload_latency_ns = 1000 * static_cast<uint64_t>(std::max<int64_t>(
      1, GetEnvInt("DQMO_GOV_LATENCY_US",
                   static_cast<int64_t>(o.overload_latency_ns / 1000))));
  o.queue_high_watermark = static_cast<size_t>(std::max<int64_t>(
      1, GetEnvInt("DQMO_GOV_QUEUE_HIGH",
                   static_cast<int64_t>(o.queue_high_watermark))));
  o.queue_low_watermark = static_cast<size_t>(std::max<int64_t>(
      0, GetEnvInt("DQMO_GOV_QUEUE_LOW",
                   static_cast<int64_t>(o.queue_low_watermark))));
  o.window = static_cast<uint64_t>(std::max<int64_t>(
      1, GetEnvInt("DQMO_GOV_WINDOW", static_cast<int64_t>(o.window))));
  return o;
}

OverloadGovernor::OverloadGovernor() : OverloadGovernor(Options()) {}

OverloadGovernor::OverloadGovernor(const Options& options)
    : options_(options) {
  OverloadMetrics::Get().governor_state->Set(0);
}

void OverloadGovernor::AttachQueueProbe(std::function<size_t()> probe) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_ = std::move(probe);
}

void OverloadGovernor::OnFrame(uint64_t frame_ns) {
  if (frame_ns >= options_.overload_latency_ns) {
    window_slow_.fetch_add(1, std::memory_order_relaxed);
  }
  const uint64_t n = window_frames_.fetch_add(1, std::memory_order_relaxed);
  if ((n + 1) % options_.window == 0) Evaluate();
}

void OverloadGovernor::Evaluate() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t frames = window_frames_.exchange(0);
  const uint64_t slow = window_slow_.exchange(0);
  if (frames == 0) return;  // Another worker evaluated this window.
  const double slow_frac =
      static_cast<double>(slow) / static_cast<double>(frames);
  const size_t depth = probe_ ? probe_() : 0;

  const bool overloaded =
      slow_frac > 0.5 || depth >= options_.queue_high_watermark;
  const bool healthy =
      slow_frac < 0.25 && depth <= options_.queue_low_watermark;

  int level = level_.load(std::memory_order_relaxed);
  if (overloaded) {
    healthy_streak_ = 0;
    if (level < options_.max_level) {
      level_.store(level + 1, std::memory_order_relaxed);
      OverloadMetrics::Get().governor_escalations->Add();
      FlightRecorder::Record(FlightEventKind::kGovernorLevel, -1,
                             static_cast<uint64_t>(level + 1));
      // Deep degradation (L2+) means real client impact — snapshot the
      // rings while the events that drove the escalation are still there.
      if (level + 1 >= 2) {
        FlightRecorder::Global().MaybeAutoDump("governor escalation");
      }
    }
  } else if (healthy && level > 0) {
    // Hysteresis: one healthy window is not recovery — overload relieved
    // by shedding looks healthy while the pressure persists.
    if (++healthy_streak_ >= options_.recovery_windows) {
      healthy_streak_ = 0;
      level_.store(level - 1, std::memory_order_relaxed);
      FlightRecorder::Record(FlightEventKind::kGovernorLevel, -1,
                             static_cast<uint64_t>(level - 1));
    }
  } else {
    healthy_streak_ = 0;
  }
  OverloadMetrics::Get().governor_state->Set(
      level_.load(std::memory_order_relaxed));
}

OverloadGovernor::Directive OverloadGovernor::FrameDirective(
    SessionPriority priority, uint64_t base_deadline_ns,
    uint64_t base_node_budget) const {
  Directive d;
  d.frame_deadline_ns = base_deadline_ns;
  d.node_budget = base_node_budget;
  const int level = level_.load(std::memory_order_relaxed);
  if (level <= 0) return d;

  // Shedding: the deepest levels drop whole frames for the lower classes;
  // interactive sessions are always served (degraded).
  if ((level >= 2 && priority == SessionPriority::kBatch) ||
      (level >= 3 && priority == SessionPriority::kNormal)) {
    d.shed_frame = true;
    return d;
  }

  const double scale = 1.0 / static_cast<double>(uint64_t{1} << level);
  const uint64_t base = base_deadline_ns != 0
                            ? base_deadline_ns
                            : options_.default_frame_deadline_ns;
  d.frame_deadline_ns = std::max<uint64_t>(
      1, static_cast<uint64_t>(static_cast<double>(base) * scale));
  if (base_node_budget != 0) {
    d.node_budget = std::max<uint64_t>(
        1,
        static_cast<uint64_t>(static_cast<double>(base_node_budget) * scale));
  } else if (level >= 2) {
    d.node_budget = options_.node_budget_cap;
  }
  d.horizon_scale = scale;
  return d;
}

}  // namespace dqmo
