// Admission control and the overload governor (DESIGN.md "Overload &
// admission control").
//
// The paper frames dynamic queries as a server-side service (Sect. 4);
// ROADMAP item 3 requires that server to "shed to kSkipSubtree degraded
// results before falling over". Two cooperating pieces implement that
// policy above the SessionScheduler:
//
//  * AdmissionController — decides, at submit time, whether a session may
//    enter the bounded pool queue at all. Refusal is cheap and explicit
//    (a ResourceExhausted SessionResult), never a silent unbounded queue.
//    Lower priorities lose their queue headroom first.
//  * OverloadGovernor — watches completed-frame latency and queue depth in
//    fixed windows and escalates a small degradation level with hysteresis:
//    tighter frame deadlines, smaller SPDQ horizons, node-budget caps, and
//    finally frame shedding for the lower priority classes. Recovery takes
//    several consecutive healthy windows, so the level does not flap at the
//    boundary.
//
// Both are thread-safe: admission from any submitting thread, OnFrame from
// every pool worker.
#ifndef DQMO_SERVER_OVERLOAD_H_
#define DQMO_SERVER_OVERLOAD_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <unordered_map>

#include "common/status.h"

namespace dqmo {

/// Service class of a session; lower loses first under overload.
enum class SessionPriority : uint8_t {
  kInteractive = 0,  // Never shed; admitted while any queue slot remains.
  kNormal = 1,       // Shed at the deepest degradation level.
  kBatch = 2,        // First to be rejected and shed.
};

const char* SessionPriorityName(SessionPriority priority);

/// Admission policy knobs. Defaults admit everything (no bound, no quota).
struct AdmissionOptions {
  /// Reject when the pool queue is this deep (headroom-scaled by
  /// priority); 0 = unbounded.
  size_t max_queue_depth = 0;
  /// Maximum in-flight (admitted, not yet finished) sessions per client;
  /// 0 = unlimited.
  uint64_t per_client_quota = 0;

  /// Reads DQMO_EXEC_QUEUE_MAX and DQMO_CLIENT_QUOTA over the defaults.
  static AdmissionOptions FromEnv();
};

enum class AdmissionOutcome : uint8_t {
  kAdmitted,
  kRejectedQueueFull,
  kRejectedQuota,
};

/// Converts a rejection into the Status surfaced on the SessionResult
/// (kAdmitted yields OK).
Status AdmissionStatus(AdmissionOutcome outcome);

/// Decides whether a session may enter the scheduler. Priority headroom:
/// kBatch is refused once the queue passes 1/2 of max_queue_depth, kNormal
/// past 4/5, kInteractive only when full — so interactive clients retain
/// capacity while bulk work is pushed back first.
class AdmissionController {
 public:
  explicit AdmissionController(const AdmissionOptions& options);

  /// Decides for one session; an admitted session must be paired with
  /// OnSessionDone (quota bookkeeping). `queue_depth` is the pool queue
  /// depth observed at submit time.
  AdmissionOutcome TryAdmit(uint64_t client_id, SessionPriority priority,
                            size_t queue_depth);
  void OnSessionDone(uint64_t client_id);

  uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  uint64_t rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  AdmissionOptions options_;
  std::atomic<uint64_t> admitted_{0};
  std::atomic<uint64_t> rejected_{0};
  std::mutex mu_;
  std::unordered_map<uint64_t, uint64_t> in_flight_;  // Guarded by mu_.
};

/// Progressive-degradation controller. Level 0 is transparent; each level
/// halves the effective frame deadline and node budget, and the deepest
/// levels shed whole frames for the lower priority classes:
///
///   L0: serve everything at the session's own limits.
///   L1: limits halved.
///   L2: limits quartered, node-budget cap imposed, kBatch frames shed.
///   L3: limits eighthed, kNormal frames also shed (kInteractive always
///       served, degraded).
class OverloadGovernor {
 public:
  struct Options {
    /// A completed frame slower than this is "slow" (overload evidence).
    uint64_t overload_latency_ns = 20'000'000;  // 20 ms.
    /// Queue depths beyond/below these are overload/health evidence.
    size_t queue_high_watermark = 16;
    size_t queue_low_watermark = 4;
    /// Completed frames per evaluation window.
    uint64_t window = 64;
    /// Consecutive healthy windows required to step one level down.
    int recovery_windows = 3;
    int max_level = 3;
    /// Deadline imposed (scaled) on sessions that declared none, once the
    /// level is above 0 — an unbounded session must not stay unbounded
    /// under overload.
    uint64_t default_frame_deadline_ns = 20'000'000;
    /// Node-budget cap imposed from level 2 on sessions that declared no
    /// node budget.
    uint64_t node_budget_cap = 4096;

    /// Reads DQMO_GOV_LATENCY_US, DQMO_GOV_QUEUE_HIGH, DQMO_GOV_QUEUE_LOW,
    /// and DQMO_GOV_WINDOW over the defaults.
    static Options FromEnv();
  };

  /// What one frame of one session should do right now.
  struct Directive {
    bool shed_frame = false;
    uint64_t frame_deadline_ns = 0;  // 0 = unbounded.
    uint64_t node_budget = 0;        // 0 = unbounded.
    double horizon_scale = 1.0;      // SPDQ prediction-horizon multiplier.
  };

  OverloadGovernor();
  explicit OverloadGovernor(const Options& options);

  /// Wires the pool-queue-depth probe (SessionScheduler::Run attaches its
  /// pool for the duration of the run; pass nullptr to detach).
  void AttachQueueProbe(std::function<size_t()> probe);

  /// Feeds one completed frame's wall time; evaluates the level on window
  /// rollover. Thread-safe, called from every pool worker.
  void OnFrame(uint64_t frame_ns);

  int level() const { return level_.load(std::memory_order_relaxed); }

  /// Scales a session's declared per-frame limits by the current level.
  Directive FrameDirective(SessionPriority priority,
                           uint64_t base_deadline_ns,
                           uint64_t base_node_budget) const;

 private:
  void Evaluate();

  Options options_;
  std::atomic<int> level_{0};
  std::atomic<uint64_t> window_frames_{0};
  std::atomic<uint64_t> window_slow_{0};
  std::mutex mu_;  // Guards Evaluate state + probe_.
  std::function<size_t()> probe_;  // Guarded by mu_.
  int healthy_streak_ = 0;         // Guarded by mu_.
};

}  // namespace dqmo

#endif  // DQMO_SERVER_OVERLOAD_H_
