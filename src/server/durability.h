// Durable index orchestration: checkpoint + WAL = a restartable service.
//
// Ties the storage-layer pieces together (DESIGN.md "Durability &
// recovery"): the page-file checkpoint image (atomic SaveTo), the
// write-ahead log of motion insertions (storage/wal.h), and the ARIES-style
// redo recovery that makes the pair crash-safe. The durable state of the
// index at any instant is exactly
//
//   (last renamed checkpoint image, WAL records synced since then)
//
// and Open() reconstructs the tree from it:
//
//   1. load the checkpoint image if present (else start a fresh tree);
//   2. scan the WAL — truncating a torn tail, rejecting mid-log corruption;
//   3. replay every insert record whose LSN exceeds the image's applied
//      LSN (the meta page records it, so a crash between the checkpoint
//      rename and the WAL reset never replays a record twice);
//   4. attach the WAL for new inserts, continuing the LSN sequence.
//
// Checkpoint() runs the protocol whose crash points (storage/fault.h) the
// fork-based kill tests in tests/recovery_test.cc enumerate:
//
//   sync WAL -> [ckpt:before_temp] -> flush meta -> write image temp +
//   fsync -> [save:before_rename] -> rename -> append checkpoint marker +
//   sync -> [ckpt:before_wal_reset] -> reset WAL
//
// Invariant at every point: an insert acknowledged by Insert()/Sync() is
// recoverable, and recovery yields a *prefix* of the insert sequence (the
// tree never holds a later insert while missing an earlier one).
#ifndef DQMO_SERVER_DURABILITY_H_
#define DQMO_SERVER_DURABILITY_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "motion/motion_segment.h"
#include "rtree/rtree.h"
#include "storage/async_io.h"
#include "storage/disk_file.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace dqmo {

/// What recovery found and did; returned by DurableIndex::Open and printed
/// by `dqmo_tool recover`.
struct RecoveryReport {
  /// A checkpoint image existed and was loaded (else: fresh tree).
  bool checkpoint_loaded = false;
  /// Applied LSN recorded in the loaded image (0 when none / pre-WAL).
  uint64_t checkpoint_lsn = 0;
  /// Well-formed records found in the WAL (both types).
  uint64_t wal_records_scanned = 0;
  /// Insert records redone into the tree.
  uint64_t replayed = 0;
  /// Records skipped as already contained in the checkpoint image.
  uint64_t skipped = 0;
  /// Trailing bytes dropped as a torn write.
  uint64_t torn_bytes_dropped = 0;
  bool torn_tail = false;
  /// The tree's applied LSN after recovery.
  uint64_t recovered_lsn = 0;

  std::string ToString() const;
};

/// An RTree made crash-safe by a checkpoint file + WAL pair. Single-writer:
/// in the concurrent engine, Insert/Sync/Checkpoint run under the exclusive
/// side of the TreeGate (which can also own the per-batch Sync — construct
/// it with the wal() pointer); queries read tree() under the shared side.
class DurableIndex {
 public:
  struct Options {
    /// Tree geometry for a fresh index (ignored when a checkpoint loads).
    RTree::Options tree;
    WalWriter::Options wal;
    /// Sync the WAL inside every Insert (acknowledge-per-insert). Disable
    /// to group-commit: Insert only buffers, and the caller syncs per
    /// batch — explicitly or via the TreeGate write guard.
    bool sync_each_insert = true;
    /// Where the live pages reside. kMemory (the default): an in-process
    /// PageFile, the original behavior. kPread/kUring: a DiskPageFile at
    /// pgf_path + ".live" — a disposable working copy rebuilt from the
    /// checkpoint image on every Open (a crash mid-build costs nothing).
    /// The durable contract is unchanged either way: the durable state is
    /// always (installed image, synced WAL tail); only where the *live*
    /// pages sit moves.
    IoBackend io_backend = IoBackend::kMemory;
    /// Disk-mode tuning (o_direct, dirty_frame_budget); `backend` is
    /// overwritten with io_backend above. Ignored for kMemory.
    DiskPageFile::Options disk;
  };

  /// Opens (recovering if needed) the index persisted as `pgf_path` +
  /// `wal_path`. Neither file need exist (a fresh service). Fails with the
  /// scan's typed Status on mid-log corruption, and with the loader's on a
  /// damaged checkpoint image — recovery never silently drops
  /// acknowledged data.
  static Result<std::unique_ptr<DurableIndex>> Open(
      const std::string& pgf_path, const std::string& wal_path,
      const Options& options);

  DurableIndex(const DurableIndex&) = delete;
  DurableIndex& operator=(const DurableIndex&) = delete;

  /// Inserts one motion segment, appending its redo record. With
  /// sync_each_insert the record is durable when this returns OK — the
  /// acknowledgment point; without it, call Sync() (or release a TreeGate
  /// write guard) before acknowledging.
  Status Insert(const MotionSegment& m);

  /// Makes every appended record durable (group-commit flush).
  Status Sync();

  /// Writes a new checkpoint image atomically and resets the WAL. On
  /// return the WAL is empty and the image contains every insert so far.
  /// Safe to crash at any point (see the protocol above); the caller may
  /// simply re-Open after a failure.
  Status Checkpoint();

  /// Online repair: rebuilds the live tree, in place, from the durable pair
  /// (checkpoint image + full WAL) — the recovery sequence of Open(), but
  /// into the existing file_/tree_/wal_ objects so every pointer captured
  /// by sessions, pools, and gates stays valid. Used by the ShardScrubber
  /// on a quarantined shard whose in-memory pages are damaged; the
  /// source-of-truth durable state is untouched. Requires a checkpoint
  /// image to exist (the caller quarantines, it does not create state) and
  /// the single-writer side of the gate to be held. The WAL is left open,
  /// un-reset, with its LSN sequence intact — records parked for a
  /// quarantined shard replay into the rebuilt tree here, which is exactly
  /// how the redo queue drains through a repair.
  Status ReloadFromDisk();

  RTree* tree() { return tree_.get(); }
  PageStore* file() { return store_; }
  /// Non-null exactly in disk mode (io_backend != kMemory); the shard
  /// layer builds its Prefetcher over this.
  DiskPageFile* disk_file() { return disk_.get(); }
  WalWriter* wal() { return &wal_; }
  const std::string& pgf_path() const { return pgf_path_; }
  const std::string& wal_path() const { return wal_path_; }
  /// What Open()'s recovery pass found.
  const RecoveryReport& report() const { return report_; }

 private:
  DurableIndex() = default;

  std::string pgf_path_;
  std::string wal_path_;
  Options options_;
  PageFile file_;                        // kMemory mode.
  std::unique_ptr<DiskPageFile> disk_;   // Disk mode.
  PageStore* store_ = nullptr;           // Points at file_ or *disk_.
  WalWriter wal_;
  std::unique_ptr<RTree> tree_;
  RecoveryReport report_;
};

}  // namespace dqmo

#endif  // DQMO_SERVER_DURABILITY_H_
