// Concurrent multi-session query engine.
//
// The paper (Sect. 4) frames dynamic queries as a *server-side* service:
// many clients each run a continuous query over the shared index. This
// module supplies the server scaffolding: a fixed-size ThreadPool, the
// single-writer/multi-reader TreeGate that serializes motion updates
// against running sessions, and a SessionScheduler that executes many
// deterministic, seed-driven query sessions (PDQ/NPDQ hand-off sessions,
// raw NPDQ sequences, moving kNN) concurrently against one shared RTree —
// typically through one shared sharded BufferPool.
//
// Threading model (see DESIGN.md "Threading model" for the full story):
//
//  * Sessions only *read* the tree. The read path is race-free provided the
//    backing PageFile was Publish()ed (or every writer seals its dirt
//    before readers resume — the TreeGate write guard does).
//  * Insert/Remove take the exclusive side of the gate; sessions take the
//    shared side once per frame, so a frame always sees a consistent tree.
//  * Each session is deterministic given its spec: the observer trajectory
//    is derived from the seed, and the per-frame results are folded into an
//    order-independent-of-thread-schedule FNV-1a checksum. Running the same
//    specs serially therefore reproduces the checksums exactly — the basis
//    of the differential tests in tests/executor_test.cc.
#ifndef DQMO_SERVER_EXECUTOR_H_
#define DQMO_SERVER_EXECUTOR_H_

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/status.h"
#include "query/budget.h"
#include "rtree/rtree.h"
#include "rtree/stats.h"
#include "server/overload.h"
#include "storage/buffer_pool.h"
#include "storage/page_file.h"

namespace dqmo {

class Prefetcher;

/// Fixed-size pool of worker threads draining per-priority FIFO task
/// queues (higher priority classes are always dequeued first). The queue
/// may be bounded: a full bounded pool either rejects (TrySubmit) or
/// back-pressures the submitter (Submit blocks) instead of growing without
/// limit — the overload-resilience contract of DESIGN.md.
class ThreadPool {
 public:
  struct Options {
    int num_threads = 1;
    /// Upper bound on queued-but-not-running tasks across all priorities;
    /// 0 = unbounded (the pre-admission-control behaviour).
    size_t max_queue = 0;
  };

  /// Spawns `num_threads` (>= 1) workers immediately (unbounded queue).
  explicit ThreadPool(int num_threads);
  explicit ThreadPool(const Options& options);
  /// Blocks until every submitted task finished, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while a bounded queue is full (backpressure).
  /// Tasks must not throw.
  void Submit(std::function<void()> task,
              SessionPriority priority = SessionPriority::kNormal);

  /// Enqueues unless the bounded queue is full; false = rejected (the task
  /// was not consumed in that case). Never blocks.
  bool TrySubmit(std::function<void()> task,
                 SessionPriority priority = SessionPriority::kNormal);

  /// Blocks until the queue is empty and no task is running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks queued but not yet running, across all priorities.
  size_t queue_depth() const;

 private:
  void WorkerLoop();
  size_t QueueDepthLocked() const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // Signaled when tasks arrive / stop.
  std::condition_variable idle_cv_;   // Signaled when the pool drains.
  std::condition_variable space_cv_;  // Signaled when a bounded slot frees.
  /// One FIFO per priority class, indexed by SessionPriority.
  std::array<std::deque<std::function<void()>>, 3> queues_;
  size_t active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Single-writer / multi-reader gate over one RTree + its storage.
///
/// Readers (query sessions) hold the shared side for the duration of one
/// frame; the writer (motion updates) holds the exclusive side per Insert
/// batch. The write guard's release does the storage handover that makes
/// the next shared section race-free: it invalidates every dirtied page in
/// the shared BufferPool (stale cached bytes must not be served), seals
/// all dirty pages (so readers never race to recompute a checksum
/// trailer), and — when a WAL is attached — syncs the write-ahead log, so
/// readers never observe a motion whose redo record is not yet durable.
/// Lock order where it matters: gate first, then the tree's internal
/// listeners mutex.
class TreeGate {
 public:
  /// No pointer is owned; `pool` may be null (no cache to invalidate),
  /// `wal` may be null (no durability), and `node_cache` may be null (no
  /// decoded-node cache in use). `file` may be null only if no writer ever
  /// runs.
  ///
  /// Passing the decoded-node cache here is belt-and-braces: the tree
  /// already invalidates it synchronously on every StoreNode/FreePage (see
  /// RTree::AttachNodeCache), so the guard's sweep over the dirty page ids
  /// only matters for pages dirtied behind the tree's back.
  explicit TreeGate(PageStore* file, BufferPool* pool = nullptr,
                    WalWriter* wal = nullptr,
                    DecodedNodeCache* node_cache = nullptr)
      : file_(file), pool_(pool), wal_(wal), node_cache_(node_cache) {}

  TreeGate(const TreeGate&) = delete;
  TreeGate& operator=(const TreeGate&) = delete;

  /// Shared (reader) side; hold for at most one query frame. Records the
  /// wait (time to acquire while a writer holds the gate) in the
  /// dqmo_gate_reader_wait_ns histogram.
  [[nodiscard]] std::shared_lock<std::shared_mutex> LockShared();

  /// Exclusive (writer) side. Destruction performs the storage handover
  /// (pool invalidation + sealing) *before* readers resume.
  class WriteGuard {
   public:
    ~WriteGuard();
    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;

   private:
    friend class TreeGate;
    explicit WriteGuard(TreeGate* gate);
    TreeGate* gate_;
    std::unique_lock<std::shared_mutex> lock_;
  };

  [[nodiscard]] WriteGuard LockExclusive() { return WriteGuard(this); }

  /// First WAL sync failure observed by a write guard's release (OK when
  /// none): a destructor cannot return a Status, so the writer checks here
  /// after its batch — inserts in a failed batch were never made durable
  /// and must not be acknowledged.
  Status wal_status() const {
    std::lock_guard<std::mutex> lock(wal_status_mu_);
    return wal_status_;
  }

 private:
  std::shared_mutex mu_;
  PageStore* file_;
  BufferPool* pool_;
  WalWriter* wal_;
  DecodedNodeCache* node_cache_;
  mutable std::mutex wal_status_mu_;
  Status wal_status_;  // Guarded by wal_status_mu_.
};

/// Which query algorithm a session runs.
enum class SessionKind {
  kSession,  // DynamicQuerySession: automated PDQ <-> NPDQ hand-off.
  kNpdq,     // Raw NPDQ snapshot sequence over the observer's window.
  kKnn,      // MovingKnnQuery along the observer trajectory.
};

/// One deterministic client session: an observer flying a seed-derived
/// random-turn trajectory inside [region_lo, region_hi]^2, issuing one
/// query per frame. Equal specs produce equal results and checksums, on
/// any thread, provided the tree contents visible to each frame are equal.
struct SessionSpec {
  SessionKind kind = SessionKind::kSession;
  uint64_t seed = 1;
  int frames = 100;
  double frame_dt = 0.1;
  /// First frame covers [t0, t0 + frame_dt].
  double t0 = 1.0;
  /// Side length of the square view window (kSession / kNpdq).
  double window = 8.0;
  /// Neighbor count (kKnn).
  int k = 8;
  /// Mean straight-leg duration of the observer's flight.
  double mean_leg = 4.0;
  /// The observer bounces inside this square. Tests running concurrent
  /// inserts confine readers and writer to disjoint regions, which makes
  /// every interleaving deliver identical results.
  double region_lo = 6.0;
  double region_hi = 94.0;
  /// Query hot path for every engine the session drives (results and
  /// QueryStats are bit-identical across paths; the determinism tests
  /// assert exactly that).
  HotPath hot_path = HotPath::kSoa;

  // --- Overload-resilience knobs (all defaults preserve the pre-budget
  // engine bit-for-bit: no budget is consulted, no frame is shed). ---

  /// Client identity for admission quotas.
  uint64_t client_id = 0;
  /// Service class: admission headroom and governor shedding order.
  SessionPriority priority = SessionPriority::kNormal;
  /// Per-frame wall-clock deadline in microseconds; a frame that exceeds
  /// it finishes degraded (kPartial). 0 = unbounded.
  uint64_t frame_deadline_us = 0;
  /// Per-frame node-read budget; same degradation. 0 = unbounded.
  uint64_t frame_node_budget = 0;
  /// Optional externally owned budget, the cooperative-cancellation
  /// channel: another thread calls budget->RequestCancel() and the session
  /// winds up with Outcome::kCancelled after its current frame. When null
  /// and a deadline/node budget (or governor) is active, the runner uses a
  /// private budget. Must outlive the run.
  QueryBudget* budget = nullptr;
  /// Record each evaluated frame's wall time into
  /// SessionResult::frame_latencies_us (the abl_sharding p99 source). Off
  /// by default: no extra clock reads on the frame path.
  bool record_frame_latency = false;
  /// Speculative read driver handed to every engine the session runs
  /// (storage/prefetch.h); not owned, may be null — no speculation, the
  /// bit-identical default. A shed frame cancels pending speculations (the
  /// frame's declared future is void). In the sharded engine the router
  /// overrides this per shard with that shard's own Prefetcher.
  Prefetcher* prefetcher = nullptr;
  /// Per-frame cap on speculative reads, charged through
  /// QueryBudget::Limits::prefetch_budget; 0 = unlimited.
  uint64_t frame_prefetch_budget = 0;
};

/// Outcome of one session.
struct SessionResult {
  /// How the session ended. Only kCompleted sessions contribute a failure
  /// Status to the report-level aggregate; rejected sessions carry their
  /// ResourceExhausted status here without poisoning it.
  enum class Outcome : uint8_t { kCompleted, kRejected, kCancelled };

  Status status;  // First frame failure / rejection cause, or OK.
  Outcome outcome = Outcome::kCompleted;
  /// FNV-1a over (frame index, sorted result keys / neighbor distances).
  uint64_t checksum = 0;
  uint64_t objects_delivered = 0;
  uint64_t frames_completed = 0;
  /// Frames dropped whole by the overload governor (not evaluated at all).
  uint64_t frames_shed = 0;
  /// Frames answered degraded because the budget stopped the traversal.
  uint64_t frames_degraded = 0;
  /// This session's query-processing cost (disk accesses etc.).
  QueryStats stats;
  /// Wall time of each evaluated frame, microseconds, in frame order
  /// (empty unless SessionSpec::record_frame_latency).
  std::vector<uint64_t> frame_latencies_us;
};

/// Aggregate outcome of one SessionScheduler::Run.
struct ExecutorReport {
  std::vector<SessionResult> sessions;
  /// Sum of every session's QueryStats.
  QueryStats total_stats;
  uint64_t total_objects = 0;
  /// Shared-pool hit/miss deltas over this run (0 when no pool was given).
  uint64_t pool_hits = 0;
  uint64_t pool_misses = 0;
  /// Sessions refused at admission / cancelled cooperatively.
  uint64_t sessions_rejected = 0;
  uint64_t sessions_cancelled = 0;
  uint64_t total_frames_shed = 0;
  uint64_t total_frames_degraded = 0;
  /// Deepest pool-queue depth observed at submit time during this run.
  size_t max_queue_depth = 0;
  double wall_seconds = 0.0;
  Status status;  // First completed-session failure, or OK.
};

/// Runs one session to completion. `reader` is the page source for every
/// query read (null: the tree's file). When `gate` is non-null the shared
/// side is held for each frame; pass null in single-threaded use. When
/// `governor` is non-null every frame consults it (shed / tightened
/// limits) and reports its wall time back.
SessionResult RunSession(RTree* tree, const SessionSpec& spec,
                         PageReader* reader, TreeGate* gate,
                         OverloadGovernor* governor = nullptr);

/// Runs a batch of sessions, one task per session, over a fixed-size
/// thread pool (num_threads <= 1: inline on the calling thread, in spec
/// order — the serial replay mode the differential tests compare against).
class SessionScheduler {
 public:
  struct Options {
    int num_threads = 1;
    /// Page source shared by all sessions (typically a sharded
    /// BufferPool); null reads the tree's file directly.
    PageReader* reader = nullptr;
    /// Reader/writer gate; null when no writer runs concurrently.
    TreeGate* gate = nullptr;
    /// When set, the report carries this pool's hit/miss deltas.
    BufferPool* pool = nullptr;
    /// Bound on the thread pool's task queue; 0 = unbounded. With no
    /// admission controller a full queue back-pressures the submitter.
    size_t max_queue = 0;
    /// Admission policy (not owned, may be null: admit everything).
    /// Rejected specs get a ResourceExhausted SessionResult with
    /// Outcome::kRejected and are never queued.
    AdmissionController* admission = nullptr;
    /// Overload governor (not owned, may be null). Attached to the pool's
    /// queue-depth probe for the duration of the run; every frame consults
    /// it and feeds its latency back.
    OverloadGovernor* governor = nullptr;
  };

  SessionScheduler(RTree* tree, const Options& options)
      : tree_(tree), options_(options) {}

  ExecutorReport Run(const std::vector<SessionSpec>& specs);

 private:
  RTree* tree_;
  Options options_;
};

}  // namespace dqmo

#endif  // DQMO_SERVER_EXECUTOR_H_
