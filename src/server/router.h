// Query fan-out over the sharded engine (server/shard.h): the control
// plane that makes N shards answer exactly like one tree.
//
// A sharded session replays the same seed-derived observer trajectory as
// the single-tree executor, but drives one engine instance per shard
// (DynamicQuerySession / NonPredictiveDynamicQuery / MovingKnnQuery). Per
// frame it takes the shared side of every shard's gate, evaluates the
// relevant shards, and merges the per-shard answers:
//
//  * PDQ/NPDQ streams: a k-way heap merge ordered by window entry time
//    (segment start time, key-tiebroken), duplicate-free. Shards partition
//    the segment set, and every delivery rule in the engines is
//    per-segment and trajectory-driven, so the union of per-shard frame
//    deliveries equals the single-tree frame delivery — the differential
//    sweeps in tests/shard_test.cc assert byte-identical checksums.
//  * kNN candidates: merged by (distance, key) and truncated to k. Every
//    true global neighbor is in its shard's local top-k, and distances are
//    computed on identical quantized geometry, so the merged distances are
//    bit-identical to the single tree's (equal-distance ties may order
//    differently; the random workloads the tests sweep have none).
//
// Overload semantics are preserved: one FrameController arms one
// QueryBudget per frame and hands the same pointer to every shard's
// engine, so deadline + node allowance are charged once across the whole
// fan-out; governor shed/degrade decisions apply to the frame as a unit.
// ResultIntegrity aggregates conservatively — if any evaluated shard
// answers kPartial, the merged frame is kPartial, and the per-shard
// SkipReports say which shard lost what.
//
// NPDQ fan-out is pruned by shard root bounds: a shard whose root MBR
// misses the snapshot provably contributes nothing, and the router tells
// its NPDQ instance via NoteSkippedSnapshot so later deltas stay exact
// (see that method's soundness note).
//
// Failure domains (server/health.h, when the engine runs with them): the
// router is the breakers' frame plane. Each frame it advances every
// shard's breaker (OnFrameStart), drains any pending redo queue of an
// unblocked shard *before* taking the read locks, and keeps calling every
// shard's session — a quarantined shard's reads short-circuit at the
// breaker gate, so its frames come back as attributed kPartial through
// the ordinary kSkipSubtree machinery while the per-shard control state
// stays in observer lockstep for a clean resync at reinstatement. On
// half-open probe frames the shard serves reads normally and the router
// reports the verdict (frame completed with zero new skips) back via
// OnProbeOutcome; enough healthy probes close the breaker.
#ifndef DQMO_SERVER_ROUTER_H_
#define DQMO_SERVER_ROUTER_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "motion/motion_segment.h"
#include "query/knn.h"
#include "rtree/fault_policy.h"
#include "rtree/stats.h"
#include "server/executor.h"
#include "server/overload.h"
#include "server/shard.h"

namespace dqmo {

/// Stable k-way heap merge of per-shard result streams by window entry
/// time. Each input stream must be sorted by (seg.time.lo, key); the
/// output is sorted the same way, with exact-tie stability by (stream
/// index, position) and duplicates (same key) dropped keeping the first
/// occurrence in merge order. Empty streams are fine. Consumes the inputs.
std::vector<MotionSegment> MergeStreamsByEntryTime(
    std::vector<std::vector<MotionSegment>>* streams);

/// Merges per-shard kNN candidate lists into the global top-k by
/// (distance, key). Inputs need not be sorted; the result is.
std::vector<Neighbor> MergeNeighborsByDistance(
    const std::vector<std::vector<Neighbor>>& streams, size_t k);

/// SessionResult plus the per-shard detail the aggregate hides.
struct ShardedSessionResult {
  SessionResult result;
  /// Frames whose merged answer was kPartial (some shard skipped
  /// subtrees — faults or budget stops). Superset counter of
  /// result.frames_degraded, which only counts budget stops.
  uint64_t frames_partial = 0;
  /// Per-shard query cost; sums to result.stats.
  std::vector<QueryStats> shard_stats;
  /// Per-shard skipped subtrees over the session's lifetime. A fault
  /// injected into one shard shows up in exactly that slot — the
  /// never-silently-wrong contract the fault tests pin down.
  std::vector<SkipReport> shard_skips;
  /// Shard evaluations skipped by the NPDQ root-bounds prune.
  uint64_t shard_frames_pruned = 0;
  /// Frames evaluated while at least one shard's breaker blocked reads.
  uint64_t frames_quarantined = 0;

  /// One completed frame's answer, per shard (Options::record_frames).
  /// This is the vehicle for the chaos harness's strongest invariant:
  /// run the same session against a clean twin engine and require
  /// shard_checksums[s] equal for every *healthy* shard on every frame —
  /// quarantining shard X must never change a byte of shard Y's answers.
  struct FrameRecord {
    int frame = 0;
    /// Fold of this frame's merged delivery alone (kFnvOffset-seeded).
    uint64_t merged_checksum = 0;
    bool partial = false;
    /// Per-shard fold of the shard's own (pre-merge) delivery.
    std::vector<uint64_t> shard_checksums;
    /// 1 when the shard's breaker blocked its reads this frame.
    std::vector<uint8_t> shard_blocked;
  };
  std::vector<FrameRecord> frames;
};

/// Fans deterministic query sessions out over a ShardedEngine, mirroring
/// SessionScheduler's contract (admission, priorities, governor, serial
/// replay at num_threads <= 1) for sharded execution.
class ShardRouter {
 public:
  struct Options {
    int num_threads = 1;
    /// Bound on the session pool's task queue; 0 = unbounded.
    size_t max_queue = 0;
    AdmissionController* admission = nullptr;
    OverloadGovernor* governor = nullptr;
    /// Skip NPDQ evaluation of shards whose root bounds miss the snapshot
    /// (exactness preserved; see header comment). The differential tests
    /// sweep both settings.
    bool spatial_prune = true;
    /// Called at the top of every session frame (shed or not), before any
    /// shard gate is held — the injection point for chaos programs, which
    /// arm/clear per-shard faults and force breakers at scripted frames.
    std::function<void(int frame)> frame_hook;
    /// Record a FrameRecord per completed frame (chaos differential runs;
    /// costs a per-shard stream copy, leave off outside tests).
    bool record_frames = false;
  };

  explicit ShardRouter(ShardedEngine* engine) : engine_(engine) {}
  ShardRouter(ShardedEngine* engine, const Options& options)
      : engine_(engine), options_(options) {}

  /// Runs one sharded session (inline, on the calling thread).
  ShardedSessionResult RunOne(const SessionSpec& spec) const;

  /// Runs a batch of sharded sessions over a thread pool (num_threads <= 1:
  /// inline in spec order — the serial replay the differential tests
  /// compare against).
  ExecutorReport Run(const std::vector<SessionSpec>& specs) const;

  ShardedEngine* engine() const { return engine_; }
  const Options& options() const { return options_; }

 private:
  ShardedEngine* engine_;
  Options options_;
};

}  // namespace dqmo

#endif  // DQMO_SERVER_ROUTER_H_
