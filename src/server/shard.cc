#include "server/shard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "rtree/bulk_load.h"

namespace dqmo {
namespace {

struct ShardMetrics {
  Gauge* shard_count;
  Counter* inserts;
  Counter* batches;
  Histogram* batch_fanout;

  static ShardMetrics& Get() {
    static ShardMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ShardMetrics{
          r.GetGauge("dqmo_shard_count",
                     "Shards in the most recently created sharded engine"),
          r.GetCounter("dqmo_shard_inserts_total",
                       "Motion updates routed through the sharded engine"),
          r.GetCounter("dqmo_shard_insert_batches_total",
                       "Insert batches routed through the sharded engine"),
          r.GetHistogram("dqmo_shard_batch_fanout",
                         "Shards touched (gate acquisitions) per batch"),
      };
    }();
    return m;
  }
};

std::string ShardFileName(const std::string& dir, int shard,
                          const char* suffix) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d.%s", shard, suffix);
  return dir + "/" + name;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardMap.

ShardMap::ShardMap(int num_shards, double space_size, bool speed_split,
                   double speed_split_threshold)
    : num_shards_(num_shards),
      space_size_(space_size),
      // One shard cannot split by speed; the whole world is one cell.
      split_(speed_split && num_shards >= 2),
      threshold_(speed_split_threshold) {
  DQMO_CHECK(num_shards >= 1);
  DQMO_CHECK(space_size > 0.0);
  if (split_) {
    const int fast = std::max(1, num_shards / 4);
    slow_ = MakeGrid(0, num_shards - fast);
    fast_ = MakeGrid(num_shards - fast, fast);
  } else {
    slow_ = MakeGrid(0, num_shards);
    fast_ = slow_;
  }
}

ShardMap::ClassGrid ShardMap::MakeGrid(int first, int count) {
  ClassGrid g;
  g.first = first;
  g.count = count;
  // Largest divisor <= sqrt(count) keeps cells near-square for any count.
  g.rows = 1;
  for (int r = 1; r * r <= count; ++r) {
    if (count % r == 0) g.rows = r;
  }
  g.cols = count / g.rows;
  return g;
}

int ShardMap::CellOf(const ClassGrid& grid, const MotionSegment& m) const {
  // Route by the segment's spatial midpoint: one owner per segment, and a
  // pure function of the geometry.
  const double mx = 0.5 * (m.seg.p0[0] + m.seg.p1[0]);
  const double my = 0.5 * (m.seg.p0[1] + m.seg.p1[1]);
  const int col = std::clamp(
      static_cast<int>(mx / space_size_ * grid.cols), 0, grid.cols - 1);
  const int row = std::clamp(
      static_cast<int>(my / space_size_ * grid.rows), 0, grid.rows - 1);
  return grid.first + row * grid.cols + col;
}

int ShardMap::ShardOf(const MotionSegment& m) const {
  if (!split_) return CellOf(slow_, m);
  const bool fast = m.seg.Speed() >= threshold_;
  return CellOf(fast ? fast_ : slow_, m);
}

std::string ShardMap::Describe() const {
  if (!split_) {
    return StrFormat("%d shard(s): %dx%d grid, no speed split", num_shards_,
                     slow_.rows, slow_.cols);
  }
  return StrFormat("%d shards: slow %dx%d grid + fast %dx%d grid (speed >= %s)",
                   num_shards_, slow_.rows, slow_.cols, fast_.rows, fast_.cols,
                   FormatDouble(threshold_).c_str());
}

// ---------------------------------------------------------------------------
// ShardedEngineOptions.

ShardedEngineOptions ShardedEngineOptions::FromEnv() {
  ShardedEngineOptions o;
  o.num_shards = static_cast<int>(GetEnvInt("DQMO_SHARDS", o.num_shards));
  // DQMO_SPEED_SPLIT: "off" / "0" disables; a number sets the threshold.
  const std::string split =
      GetEnvString("DQMO_SPEED_SPLIT", std::to_string(o.speed_split_threshold));
  if (split == "off" || split == "0") {
    o.speed_split = false;
  } else {
    o.speed_split_threshold = GetEnvDouble("DQMO_SPEED_SPLIT",
                                           o.speed_split_threshold);
  }
  return o;
}

// ---------------------------------------------------------------------------
// ShardedEngine.

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const ShardedEngineOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));

  const bool durable = !options.durable_dir.empty();
  if (durable) {
    std::error_code ec;
    std::filesystem::create_directories(options.durable_dir, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot create %s: %s",
                                       options.durable_dir.c_str(),
                                       ec.message().c_str()));
    }
  }

  for (int i = 0; i < options.num_shards; ++i) {
    auto s = std::make_unique<Shard>();
    WalWriter* wal = nullptr;
    if (durable) {
      DurableIndex::Options dopt;
      dopt.tree = options.tree;
      // Group commit: the shard gate's write-guard release syncs the batch.
      dopt.sync_each_insert = false;
      DQMO_ASSIGN_OR_RETURN(
          s->durable,
          DurableIndex::Open(ShardFileName(options.durable_dir, i, "pgf"),
                             ShardFileName(options.durable_dir, i, "wal"),
                             dopt));
      s->file = s->durable->file();
      s->tree = s->durable->tree();
      wal = s->durable->wal();
    } else {
      DQMO_ASSIGN_OR_RETURN(s->memory_tree,
                            RTree::Create(&s->memory_file, options.tree));
      s->file = &s->memory_file;
      s->tree = s->memory_tree.get();
    }
    s->pool = std::make_unique<BufferPool>(s->file, options.pool_pages,
                                           options.pool_shards);
    if (options.cache_nodes > 0) {
      s->node_cache = std::make_unique<DecodedNodeCache>(options.cache_nodes);
      s->tree->AttachNodeCache(s->node_cache.get());
    }
    s->gate = std::make_unique<TreeGate>(s->file, s->pool.get(), wal,
                                         s->node_cache.get());
    engine->shards_.push_back(std::move(s));
  }
  ShardMetrics::Get().shard_count->Set(options.num_shards);
  return engine;
}

Status ShardedEngine::InsertIntoShard(Shard* s, const MotionSegment& m) {
  const bool durable = s->durable != nullptr;
  {
    auto guard = s->gate->LockExclusive();
    DQMO_RETURN_IF_ERROR(durable ? s->durable->Insert(m) : s->tree->Insert(m));
  }
  // The guard's release synced this shard's WAL; an insert is only
  // acknowledged once its redo record is durable.
  return durable ? s->gate->wal_status() : Status::OK();
}

Status ShardedEngine::Insert(const MotionSegment& m) {
  ShardMetrics::Get().inserts->Add();
  return InsertIntoShard(shards_[static_cast<size_t>(map_.ShardOf(m))].get(),
                         m);
}

Status ShardedEngine::InsertBatch(const std::vector<MotionSegment>& batch) {
  // Group by shard first so each shard's gate is taken exactly once.
  std::unordered_map<int, std::vector<const MotionSegment*>> groups;
  for (const MotionSegment& m : batch) {
    groups[map_.ShardOf(m)].push_back(&m);
  }
  ShardMetrics& sm = ShardMetrics::Get();
  sm.batches->Add();
  sm.batch_fanout->Record(groups.size());
  sm.inserts->Add(batch.size());
  for (auto& [shard, group] : groups) {
    Shard* s = shards_[static_cast<size_t>(shard)].get();
    const bool durable = s->durable != nullptr;
    {
      auto guard = s->gate->LockExclusive();
      for (const MotionSegment* m : group) {
        DQMO_RETURN_IF_ERROR(durable ? s->durable->Insert(*m)
                                     : s->tree->Insert(*m));
      }
    }
    if (durable) DQMO_RETURN_IF_ERROR(s->gate->wal_status());
  }
  return Status::OK();
}

Status ShardedEngine::BulkLoad(std::vector<MotionSegment> data) {
  if (!options_.durable_dir.empty()) {
    return Status::InvalidArgument("BulkLoad: in-memory engines only");
  }
  for (const auto& s : shards_) {
    if (s->tree->num_segments() != 0) {
      return Status::InvalidArgument("BulkLoad requires empty shards");
    }
  }
  std::vector<std::vector<MotionSegment>> parts(shards_.size());
  for (MotionSegment& m : data) {
    parts[static_cast<size_t>(map_.ShardOf(m))].push_back(std::move(m));
  }
  data.clear();
  ShardMetrics::Get().inserts->Add(
      [&parts] {
        size_t n = 0;
        for (const auto& p : parts) n += p.size();
        return n;
      }());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // STR packing needs an empty file; rebuild the shard's stack around a
    // fresh one (the old stack held only the empty insert-built tree).
    auto s = std::make_unique<Shard>();
    DQMO_ASSIGN_OR_RETURN(
        s->memory_tree,
        dqmo::BulkLoad(&s->memory_file, std::move(parts[i]),
                       BulkLoadOptions{options_.tree, 0.5}));
    DQMO_RETURN_IF_ERROR(s->memory_file.Publish());
    s->file = &s->memory_file;
    s->tree = s->memory_tree.get();
    s->pool = std::make_unique<BufferPool>(s->file, options_.pool_pages,
                                           options_.pool_shards);
    if (options_.cache_nodes > 0) {
      s->node_cache = std::make_unique<DecodedNodeCache>(options_.cache_nodes);
      s->tree->AttachNodeCache(s->node_cache.get());
    }
    s->gate = std::make_unique<TreeGate>(s->file, s->pool.get(), nullptr,
                                         s->node_cache.get());
    shards_[i] = std::move(s);
  }
  return Status::OK();
}

Status ShardedEngine::Checkpoint() {
  for (const auto& s : shards_) {
    if (s->durable == nullptr) {
      return Status::InvalidArgument("Checkpoint: durable engines only");
    }
    auto guard = s->gate->LockExclusive();
    DQMO_RETURN_IF_ERROR(s->durable->Checkpoint());
  }
  return Status::OK();
}

uint64_t ShardedEngine::num_segments() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->tree->num_segments();
  return n;
}

IoStats ShardedEngine::TotalIoStats() const {
  IoStats total;
  for (const auto& s : shards_) total += s->file->stats();
  return total;
}

}  // namespace dqmo
