#include "server/shard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <unordered_map>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "rtree/bulk_load.h"
#include "rtree/layout.h"

namespace dqmo {
namespace {

struct ShardMetrics {
  Gauge* shard_count;
  Counter* inserts;
  Counter* batches;
  Histogram* batch_fanout;

  static ShardMetrics& Get() {
    static ShardMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ShardMetrics{
          r.GetGauge("dqmo_shard_count",
                     "Shards in the most recently created sharded engine"),
          r.GetCounter("dqmo_shard_inserts_total",
                       "Motion updates routed through the sharded engine"),
          r.GetCounter("dqmo_shard_insert_batches_total",
                       "Insert batches routed through the sharded engine"),
          r.GetHistogram("dqmo_shard_batch_fanout",
                         "Shards touched (gate acquisitions) per batch"),
      };
    }();
    return m;
  }
};

std::string ShardFileName(const std::string& dir, int shard,
                          const char* suffix) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard-%04d.%s", shard, suffix);
  return dir + "/" + name;
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardMap.

ShardMap::ShardMap(int num_shards, double space_size, bool speed_split,
                   double speed_split_threshold)
    : num_shards_(num_shards),
      space_size_(space_size),
      // One shard cannot split by speed; the whole world is one cell.
      split_(speed_split && num_shards >= 2),
      threshold_(speed_split_threshold) {
  DQMO_CHECK(num_shards >= 1);
  DQMO_CHECK(space_size > 0.0);
  if (split_) {
    const int fast = std::max(1, num_shards / 4);
    slow_ = MakeGrid(0, num_shards - fast);
    fast_ = MakeGrid(num_shards - fast, fast);
  } else {
    slow_ = MakeGrid(0, num_shards);
    fast_ = slow_;
  }
}

ShardMap::ClassGrid ShardMap::MakeGrid(int first, int count) {
  ClassGrid g;
  g.first = first;
  g.count = count;
  // Largest divisor <= sqrt(count) keeps cells near-square for any count.
  g.rows = 1;
  for (int r = 1; r * r <= count; ++r) {
    if (count % r == 0) g.rows = r;
  }
  g.cols = count / g.rows;
  return g;
}

int ShardMap::CellOf(const ClassGrid& grid, const MotionSegment& m) const {
  // Route by the segment's spatial midpoint: one owner per segment, and a
  // pure function of the geometry.
  const double mx = 0.5 * (m.seg.p0[0] + m.seg.p1[0]);
  const double my = 0.5 * (m.seg.p0[1] + m.seg.p1[1]);
  const int col = std::clamp(
      static_cast<int>(mx / space_size_ * grid.cols), 0, grid.cols - 1);
  const int row = std::clamp(
      static_cast<int>(my / space_size_ * grid.rows), 0, grid.rows - 1);
  return grid.first + row * grid.cols + col;
}

int ShardMap::ShardOf(const MotionSegment& m) const {
  if (!split_) return CellOf(slow_, m);
  const bool fast = m.seg.Speed() >= threshold_;
  return CellOf(fast ? fast_ : slow_, m);
}

std::string ShardMap::Describe() const {
  if (!split_) {
    return StrFormat("%d shard(s): %dx%d grid, no speed split", num_shards_,
                     slow_.rows, slow_.cols);
  }
  return StrFormat("%d shards: slow %dx%d grid + fast %dx%d grid (speed >= %s)",
                   num_shards_, slow_.rows, slow_.cols, fast_.rows, fast_.cols,
                   FormatDouble(threshold_).c_str());
}

// ---------------------------------------------------------------------------
// ShardedEngineOptions.

ShardedEngineOptions ShardedEngineOptions::FromEnv() {
  ShardedEngineOptions o;
  o.num_shards = static_cast<int>(GetEnvInt("DQMO_SHARDS", o.num_shards));
  // DQMO_SPEED_SPLIT: "off" / "0" disables; a number sets the threshold.
  const std::string split =
      GetEnvString("DQMO_SPEED_SPLIT", std::to_string(o.speed_split_threshold));
  if (split == "off" || split == "0") {
    o.speed_split = false;
  } else {
    o.speed_split_threshold = GetEnvDouble("DQMO_SPEED_SPLIT",
                                           o.speed_split_threshold);
  }
  o.failure_domains = GetEnvBool("DQMO_FAILURE_DOMAINS", o.failure_domains);
  if (o.failure_domains) {
    o.breaker = BreakerOptions::FromEnv();
    o.hedge = HedgeOptions::FromEnv();
  }
  o.io_backend = IoBackendFromEnv();
  o.o_direct = GetEnvBool("DQMO_O_DIRECT", o.o_direct);
  o.prefetch_depth = PrefetchDepthFromEnv();
  o.page_budget_mb = static_cast<size_t>(
      GetEnvInt("DQMO_PAGE_BUDGET_MB",
                static_cast<int64_t>(o.page_budget_mb)));
  return o;
}

// ---------------------------------------------------------------------------
// ShardedEngine.

Result<std::unique_ptr<ShardedEngine>> ShardedEngine::Create(
    const ShardedEngineOptions& options) {
  if (options.num_shards < 1) {
    return Status::InvalidArgument("need at least one shard");
  }
  std::unique_ptr<ShardedEngine> engine(new ShardedEngine(options));

  const bool durable = !options.durable_dir.empty();
  if (durable) {
    std::error_code ec;
    std::filesystem::create_directories(options.durable_dir, ec);
    if (ec) {
      return Status::IOError(StrFormat("cannot create %s: %s",
                                       options.durable_dir.c_str(),
                                       ec.message().c_str()));
    }
  }

  // Per-shard slice of the DQMO_PAGE_BUDGET_MB memory budget: 3/4 to the
  // BufferPool, 1/4 to the disk store's dirty-frame table, floors of 16
  // pages each so tiny budgets stay functional.
  size_t pool_pages = options.pool_pages;
  size_t dirty_frame_budget = DiskPageFile::Options().dirty_frame_budget;
  if (options.page_budget_mb > 0) {
    const size_t budget_pages = options.page_budget_mb *
                                (size_t{1} << 20) / kPageSize /
                                static_cast<size_t>(options.num_shards);
    pool_pages = std::max<size_t>(16, budget_pages * 3 / 4);
    dirty_frame_budget = std::max<size_t>(16, budget_pages / 4);
  }

  for (int i = 0; i < options.num_shards; ++i) {
    auto s = std::make_unique<Shard>();
    WalWriter* wal = nullptr;
    if (durable) {
      DurableIndex::Options dopt;
      dopt.tree = options.tree;
      // Group commit: the shard gate's write-guard release syncs the batch.
      dopt.sync_each_insert = false;
      dopt.io_backend = options.io_backend;
      dopt.disk.o_direct = options.o_direct;
      dopt.disk.dirty_frame_budget = dirty_frame_budget;
      DQMO_ASSIGN_OR_RETURN(
          s->durable,
          DurableIndex::Open(ShardFileName(options.durable_dir, i, "pgf"),
                             ShardFileName(options.durable_dir, i, "wal"),
                             dopt));
      s->file = s->durable->file();
      s->tree = s->durable->tree();
      wal = s->durable->wal();
      if (s->durable->disk_file() != nullptr && options.prefetch_depth > 0) {
        // Each shard gets its own Prefetcher over its own fd + async queue;
        // shards share nothing, so speculation in one never steals another's
        // queue slots.
        Prefetcher::Options popt;
        popt.depth = options.prefetch_depth;
        popt.sleeper = options.fault_sleeper;
        s->prefetcher = std::make_unique<Prefetcher>(
            s->durable->disk_file(), popt);
      }
    } else {
      DQMO_ASSIGN_OR_RETURN(s->memory_tree,
                            RTree::Create(&s->memory_file, options.tree));
      s->file = &s->memory_file;
      s->tree = s->memory_tree.get();
    }
    s->pool = std::make_unique<BufferPool>(s->file, pool_pages,
                                           options.pool_shards);
    if (s->prefetcher != nullptr) s->pool->set_source(s->prefetcher.get());
    if (options.cache_nodes > 0) {
      s->node_cache = std::make_unique<DecodedNodeCache>(options.cache_nodes);
      s->tree->AttachNodeCache(s->node_cache.get());
    }
    s->gate = std::make_unique<TreeGate>(s->file, s->pool.get(), wal,
                                         s->node_cache.get());
    engine->AttachFailureDomain(s.get(), i);
    engine->shards_.push_back(std::move(s));
  }
  ShardMetrics::Get().shard_count->Set(options.num_shards);
  return engine;
}

void ShardedEngine::AttachFailureDomain(Shard* s, int i) {
  if (!options_.failure_domains) return;
  BreakerOptions bopt = options_.breaker;
  // Distinct, deterministic probe schedule per shard.
  bopt.probe_seed = options_.breaker.probe_seed + static_cast<uint64_t>(i);
  s->breaker = std::make_unique<CircuitBreaker>(i, bopt);
  // Disk mode slots the Prefetcher at the BOTTOM of the chain (directly
  // over the DiskPageFile): the fault plane above keeps drawing its
  // synchronous stream in consumption order, untouched by speculation.
  PageReader* bottom =
      s->prefetcher != nullptr ? static_cast<PageReader*>(s->prefetcher.get())
                               : static_cast<PageReader*>(s->file);
  s->faulty_primary = std::make_unique<FaultyPageReader>(
      bottom, nullptr, options_.fault_sleeper);
  s->faulty_secondary = std::make_unique<FaultyPageReader>(
      bottom, nullptr, options_.fault_sleeper);
  s->hedged = std::make_unique<HedgedPageReader>(
      s->faulty_primary.get(), s->faulty_secondary.get(), s->breaker.get(),
      options_.hedge);
  RetryingPageReader::RetryPolicy retry = options_.retry;
  retry.verify_checksums = true;  // The integrity net under the pool.
  s->retry = std::make_unique<RetryingPageReader>(s->hedged.get(), retry,
                                                  s->file->mutable_stats());
  s->breaker_gate =
      std::make_unique<BreakerGateReader>(s->retry.get(), s->breaker.get());
  s->redo = std::make_unique<RedoQueue>();
  s->pool->set_source(s->breaker_gate.get());
}

FaultInjector* ShardedEngine::ArmShardFault(int i,
                                            const FaultInjector::Options& o) {
  Shard* s = shards_[static_cast<size_t>(i)].get();
  DQMO_CHECK(s->faulty_primary != nullptr);  // failure_domains mode only.
  auto guard = s->gate->LockExclusive();
  s->hedged->Quiesce();  // No probe may hold the old injector mid-read.
  // Speculations issued under the old schedule must not land under the
  // new one; quiescing also stops any async read from racing the swap.
  if (s->prefetcher != nullptr) s->prefetcher->Quiesce();
  s->injector = std::make_unique<FaultInjector>(o);
  s->faulty_primary->set_injector(s->injector.get());
  s->faulty_secondary->set_injector(s->injector.get());
  if (s->prefetcher != nullptr) s->prefetcher->set_injector(s->injector.get());
  // Drop the shard's caches so the schedule bites on the next read rather
  // than whenever eviction happens to reach the hot pages.
  s->pool->Clear();
  if (s->node_cache != nullptr) s->node_cache->Clear();
  return s->injector.get();
}

void ShardedEngine::ClearShardFault(int i) {
  Shard* s = shards_[static_cast<size_t>(i)].get();
  DQMO_CHECK(s->faulty_primary != nullptr);
  auto guard = s->gate->LockExclusive();
  s->hedged->Quiesce();
  if (s->prefetcher != nullptr) s->prefetcher->Quiesce();
  s->faulty_primary->set_injector(nullptr);
  s->faulty_secondary->set_injector(nullptr);
  if (s->prefetcher != nullptr) s->prefetcher->set_injector(nullptr);
  s->injector.reset();
  s->pool->Clear();
  if (s->node_cache != nullptr) s->node_cache->Clear();
}

Status ShardedEngine::DrainRedo(int i) {
  Shard* s = shards_[static_cast<size_t>(i)].get();
  if (s->redo == nullptr || s->redo->depth() == 0) return Status::OK();
  auto guard = s->gate->LockExclusive();
  return DrainRedoLocked(s);
}

Status ShardedEngine::DrainRedoLocked(Shard* s) {
  std::vector<RedoQueue::Entry> entries = s->redo->Take();
  if (entries.empty()) return Status::OK();
  Status st = Status::OK();
  uint64_t applied = 0;
  size_t next = 0;
  if (s->durable != nullptr) {
    // The parked records already sit in the shard's WAL (parking appended
    // them there; that sync was the ack) — apply without re-logging,
    // exactly like recovery replay, and skip by LSN anything a repair's
    // full-WAL replay already materialized.
    RTree* tree = s->tree;
    tree->AttachWal(nullptr);
    for (; next < entries.size(); ++next) {
      const RedoQueue::Entry& e = entries[next];
      if (e.lsn <= tree->applied_lsn()) continue;
      st = tree->Insert(e.motion);
      if (!st.ok()) break;
      tree->set_applied_lsn(e.lsn);
      ++applied;
    }
    tree->AttachWal(s->durable->wal());
  } else {
    for (; next < entries.size(); ++next) {
      st = s->tree->Insert(entries[next].motion);
      if (!st.ok()) break;
      ++applied;
    }
  }
  if (!st.ok()) {
    // Put the unapplied tail back (front of the queue, order preserved) so
    // a later drain — typically after the scrubber repairs whatever made
    // this insert fail — still applies every acked write.
    std::vector<RedoQueue::Entry> tail(entries.begin() +
                                           static_cast<long>(next),
                                       entries.end());
    s->redo->Restore(std::move(tail));
    if (s->breaker != nullptr) s->breaker->ForceOpen("redo drain failed");
  }
  HealthMetrics::Get().redo_drained->Add(applied);
  if (applied != 0) {
    FlightRecorder::Record(
        FlightEventKind::kRedoDrain,
        s->breaker != nullptr ? s->breaker->shard() : -1, applied);
  }
  return st;
}

Status ShardedEngine::ParkLocked(Shard* s, const MotionSegment& m) {
  MotionSegment stored = m;
  stored.seg = QuantizeStored(m.seg);
  uint64_t lsn = 0;
  if (s->durable != nullptr) {
    // Park = append to the shard's own WAL without touching the (possibly
    // damaged) tree. The gate's write-guard release syncs the batch, and
    // the caller's wal_status check makes the ack honest — the same
    // contract as a normal durable insert, so "acked writes are never
    // lost" needs no new recovery machinery: restart replays them from
    // the log, live reinstatement drains them by LSN.
    DQMO_ASSIGN_OR_RETURN(lsn, s->durable->wal()->AppendInsert(stored));
  }
  s->redo->Park(lsn, stored);
  FlightRecorder::Record(FlightEventKind::kRedoPark,
                         s->breaker != nullptr ? s->breaker->shard() : -1,
                         lsn);
  return Status::OK();
}

Status ShardedEngine::InsertIntoShard(Shard* s, const MotionSegment& m) {
  const bool durable = s->durable != nullptr;
  {
    auto guard = s->gate->LockExclusive();
    // The quarantine decision and any pending drain happen under the same
    // guard as the insert itself: a parked entry's LSN is always below any
    // later normal insert's, so "drain before insert" can never skip one.
    if (s->breaker != nullptr &&
        s->breaker->state() == BreakerState::kOpen) {
      DQMO_RETURN_IF_ERROR(ParkLocked(s, m));
    } else {
      if (s->redo != nullptr && s->redo->depth() > 0) {
        DQMO_RETURN_IF_ERROR(DrainRedoLocked(s));
      }
      Status st = durable ? s->durable->Insert(m) : s->tree->Insert(m);
      if (!st.ok()) {
        if (s->breaker != nullptr) s->breaker->OnWalOutcome(false);
        return st;
      }
    }
  }
  // The guard's release synced this shard's WAL; an insert (parked or not)
  // is only acknowledged once its redo record is durable.
  if (!durable) return Status::OK();
  Status ack = s->gate->wal_status();
  if (!ack.ok() && s->breaker != nullptr) s->breaker->OnWalOutcome(false);
  return ack;
}

Status ShardedEngine::Insert(const MotionSegment& m) {
  ShardMetrics::Get().inserts->Add();
  return InsertIntoShard(shards_[static_cast<size_t>(map_.ShardOf(m))].get(),
                         m);
}

Status ShardedEngine::InsertBatch(const std::vector<MotionSegment>& batch) {
  // Group by shard first so each shard's gate is taken exactly once.
  std::unordered_map<int, std::vector<const MotionSegment*>> groups;
  for (const MotionSegment& m : batch) {
    groups[map_.ShardOf(m)].push_back(&m);
  }
  ShardMetrics& sm = ShardMetrics::Get();
  sm.batches->Add();
  sm.batch_fanout->Record(groups.size());
  sm.inserts->Add(batch.size());
  for (auto& [shard, group] : groups) {
    Shard* s = shards_[static_cast<size_t>(shard)].get();
    const bool durable = s->durable != nullptr;
    {
      auto guard = s->gate->LockExclusive();
      const bool open = s->breaker != nullptr &&
                        s->breaker->state() == BreakerState::kOpen;
      if (!open && s->redo != nullptr && s->redo->depth() > 0) {
        DQMO_RETURN_IF_ERROR(DrainRedoLocked(s));
      }
      for (const MotionSegment* m : group) {
        DQMO_RETURN_IF_ERROR(open ? ParkLocked(s, *m)
                                  : (durable ? s->durable->Insert(*m)
                                             : s->tree->Insert(*m)));
      }
    }
    if (durable) DQMO_RETURN_IF_ERROR(s->gate->wal_status());
  }
  return Status::OK();
}

Status ShardedEngine::BulkLoad(std::vector<MotionSegment> data) {
  if (!options_.durable_dir.empty()) {
    return Status::InvalidArgument("BulkLoad: in-memory engines only");
  }
  for (const auto& s : shards_) {
    if (s->tree->num_segments() != 0) {
      return Status::InvalidArgument("BulkLoad requires empty shards");
    }
  }
  std::vector<std::vector<MotionSegment>> parts(shards_.size());
  for (MotionSegment& m : data) {
    parts[static_cast<size_t>(map_.ShardOf(m))].push_back(std::move(m));
  }
  data.clear();
  ShardMetrics::Get().inserts->Add(
      [&parts] {
        size_t n = 0;
        for (const auto& p : parts) n += p.size();
        return n;
      }());
  for (size_t i = 0; i < shards_.size(); ++i) {
    // STR packing needs an empty file; rebuild the shard's stack around a
    // fresh one (the old stack held only the empty insert-built tree).
    auto s = std::make_unique<Shard>();
    DQMO_ASSIGN_OR_RETURN(
        s->memory_tree,
        dqmo::BulkLoad(&s->memory_file, std::move(parts[i]),
                       BulkLoadOptions{options_.tree, 0.5}));
    DQMO_RETURN_IF_ERROR(s->memory_file.Publish());
    s->file = &s->memory_file;
    s->tree = s->memory_tree.get();
    s->pool = std::make_unique<BufferPool>(s->file, options_.pool_pages,
                                           options_.pool_shards);
    if (options_.cache_nodes > 0) {
      s->node_cache = std::make_unique<DecodedNodeCache>(options_.cache_nodes);
      s->tree->AttachNodeCache(s->node_cache.get());
    }
    s->gate = std::make_unique<TreeGate>(s->file, s->pool.get(), nullptr,
                                         s->node_cache.get());
    AttachFailureDomain(s.get(), static_cast<int>(i));
    shards_[i] = std::move(s);
  }
  return Status::OK();
}

Status ShardedEngine::Checkpoint() {
  for (const auto& s : shards_) {
    if (s->durable == nullptr) {
      return Status::InvalidArgument("Checkpoint: durable engines only");
    }
    auto guard = s->gate->LockExclusive();
    if (s->redo != nullptr && s->redo->depth() > 0) {
      if (s->breaker != nullptr &&
          s->breaker->state() == BreakerState::kOpen) {
        // Checkpointing would reset a WAL whose parked records the tree
        // has not applied — the one way to lose an acked write. Skip; the
        // shard checkpoints after reinstatement.
        continue;
      }
      DQMO_RETURN_IF_ERROR(DrainRedoLocked(s.get()));
    }
    DQMO_RETURN_IF_ERROR(s->durable->Checkpoint());
  }
  return Status::OK();
}

uint64_t ShardedEngine::num_segments() const {
  uint64_t n = 0;
  for (const auto& s : shards_) n += s->tree->num_segments();
  return n;
}

IoStats ShardedEngine::TotalIoStats() const {
  IoStats total;
  for (const auto& s : shards_) total += s->file->stats();
  return total;
}

}  // namespace dqmo
