// Online scrub & repair for quarantined shards (the recovery half of the
// failure-domain layer in server/health.h).
//
// While a shard's circuit breaker is open, its sessions get instant
// attributed kPartial frames and its writes park in the redo queue — but
// nothing yet *fixes* it. The ShardScrubber closes that loop: a background
// pass (or an explicit ScrubPass() call, which is what the deterministic
// chaos tests drive) walks every quarantined shard and, under that shard's
// exclusive gate,
//
//   1. CRC-verifies every page of the shard's PageFile (scrub semantics —
//      no trust cache, unlike the read path's verify-once model);
//   2. if damage is found and the shard is durable, rebuilds the live tree
//      in place from the durable pair via DurableIndex::ReloadFromDisk()
//      — checkpoint image + full-WAL ARIES redo, the same recovery
//      sequence a restart runs, but into the existing objects so every
//      pointer held by router sessions stays valid;
//   3. drops the shard's caches, drains the redo queue (LSN-idempotent:
//      records the repair's replay already materialized are skipped), and
//      promotes the breaker to half-open — the router's seeded probe
//      frames then re-admit the shard gradually.
//
// A clean scrub (storage intact; the failure was transient or lives in the
// delivery path) skips straight to promotion: probing, not the scrub, is
// the arbiter of "healthy again" — if faults persist, the first failed
// probe reopens the breaker and the scrubber simply tries again later, so
// recovery is monotone once the fault clears. An in-memory shard with
// at-rest damage has no durable pair to rebuild from and stays
// quarantined (reported as unrepairable).
//
// Crash points: the fork-based chaos tests kill the process around the
// repair protocol. They are deliberately NOT in CrashPoints::All() — that
// list enumerates the single-tree durability protocol for
// tests/recovery_test.cc; these belong to the sharded chaos harness.
#ifndef DQMO_SERVER_SCRUBBER_H_
#define DQMO_SERVER_SCRUBBER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "common/status.h"
#include "rtree/rtree.h"
#include "server/shard.h"

namespace dqmo {

namespace crash_points {
/// ShardScrubber, after damage was found but before ReloadFromDisk: the
/// damaged in-memory state dies with the process; restart must recover
/// from the untouched durable pair, parked acks included.
inline constexpr char kScrubBeforeRepair[] = "scrub:before_repair";
/// After the in-place rebuild, before the redo queue drains: parked
/// records are applied to nothing in memory, but they sit in the WAL —
/// restart replays them.
inline constexpr char kScrubBeforeDrain[] = "scrub:before_drain";
/// After the drain applied parked records to the live tree (no checkpoint
/// yet): restart replays the same records from the WAL; LSN filtering
/// makes that exactly-once.
inline constexpr char kScrubAfterDrain[] = "scrub:after_drain";
}  // namespace crash_points

struct ScrubOptions {
  /// Background pass period. Each pass only touches quarantined shards,
  /// so an all-healthy engine pays num_shards breaker-state loads.
  uint64_t interval_ms = 50;
  /// Rebuild damaged durable shards in place. Off: scrub only reports
  /// (pages_bad) and never promotes a damaged shard.
  bool repair = true;

  /// DQMO_SCRUB_INTERVAL_MS, DQMO_SCRUB_REPAIR.
  static ScrubOptions FromEnv();
};

/// Walks quarantined shards, verifying, repairing, draining, promoting.
/// One scrubber per engine; the engine must outlive it. Thread-safe with
/// concurrent router frames and inserts — every mutation happens under the
/// affected shard's exclusive gate, with the hedge worker quiesced.
class ShardScrubber {
 public:
  /// What one full pass over the engine did.
  struct PassReport {
    int shards_scrubbed = 0;    // Quarantined shards examined.
    uint64_t pages_scanned = 0; // CRC checks performed.
    uint64_t pages_bad = 0;     // Checksum mismatches found.
    uint64_t pages_rebuilt = 0; // Bad pages healed by in-place repair.
    int shards_promoted = 0;    // Breakers moved open -> half-open.
    int shards_unrepairable = 0;// Damaged but no durable pair / repair off.

    std::string ToString() const;
  };

  ShardScrubber(ShardedEngine* engine, const ScrubOptions& options);
  ~ShardScrubber();  // Stops the background thread if running.

  ShardScrubber(const ShardScrubber&) = delete;
  ShardScrubber& operator=(const ShardScrubber&) = delete;

  /// Starts the periodic background pass. Idempotent.
  void Start();
  /// Stops and joins the background thread. Idempotent; safe if never
  /// started.
  void Stop();

  /// One synchronous pass over all shards, as the background thread would
  /// run it. The chaos tests call this directly so scrub timing is
  /// deterministic. A shard whose repair failed shows up as
  /// shards_unrepairable and stays quarantined; the next pass retries.
  PassReport ScrubPass();

  uint64_t passes() const { return passes_; }

 private:
  void Loop();
  /// Scrubs one quarantined shard. Caller verified breaker state == kOpen.
  void ScrubShard(int i, PassReport* report);

  ShardedEngine* engine_;
  const ScrubOptions options_;

  std::atomic<uint64_t> passes_{0};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

/// Offline repair of one durable shard pair (`dqmo_tool scrub --repair`):
/// the process-down analogue of the scrubber's in-place rebuild.
struct OfflineRepair {
  /// Corrupt pages found in the checkpoint image before repair.
  uint64_t pages_bad = 0;
  /// The image was damaged beyond loading, set aside as
  /// `<pgf>.damaged`, and rebuilt purely from the WAL (possible only when
  /// the log still covers the full history, i.e. starts at LSN 1).
  bool image_rebuilt = false;
  /// WAL records replayed into the repaired index.
  uint64_t replayed = 0;
  /// Segments in the repaired index.
  uint64_t segments = 0;
};

/// Repairs the shard persisted as `pgf_path` + `wal_path` and leaves a
/// fresh checkpoint behind. Recoverable damage (torn WAL tail, image
/// corruption with a full-history WAL) is healed; a corrupt image whose
/// WAL was already reset is unrepairable — that state genuinely lost data
/// — and fails with Corruption. `tree` configures a rebuilt-from-scratch
/// tree (ignored when the image loads).
Result<OfflineRepair> RepairDurableShard(const std::string& pgf_path,
                                         const std::string& wal_path,
                                         const RTree::Options& tree);

}  // namespace dqmo

#endif  // DQMO_SERVER_SCRUBBER_H_
