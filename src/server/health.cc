#include "server/health.h"

#include <algorithm>
#include <chrono>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* BreakerStateName(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

BreakerOptions BreakerOptions::FromEnv() {
  BreakerOptions o;
  o.open_error_rate =
      GetEnvDouble("DQMO_BREAKER_ERROR_RATE", o.open_error_rate);
  o.min_samples = static_cast<uint64_t>(
      GetEnvInt("DQMO_BREAKER_MIN_SAMPLES",
                static_cast<int64_t>(o.min_samples)));
  o.consecutive_failures = static_cast<uint64_t>(
      GetEnvInt("DQMO_BREAKER_CONSECUTIVE",
                static_cast<int64_t>(o.consecutive_failures)));
  o.cooldown_frames = static_cast<uint64_t>(
      GetEnvInt("DQMO_BREAKER_COOLDOWN_FRAMES",
                static_cast<int64_t>(o.cooldown_frames)));
  o.probe_rate = GetEnvDouble("DQMO_BREAKER_PROBE_RATE", o.probe_rate);
  o.probe_successes_to_close = static_cast<uint64_t>(
      GetEnvInt("DQMO_BREAKER_PROBE_CLOSES",
                static_cast<int64_t>(o.probe_successes_to_close)));
  return o;
}

HealthMetrics& HealthMetrics::Get() {
  static HealthMetrics m = [] {
    MetricsRegistry& r = MetricsRegistry::Global();
    return HealthMetrics{
        r.GetGauge("dqmo_breaker_state",
                   "Shards currently quarantined or probing (not closed)"),
        r.GetCounter("dqmo_breaker_transitions_total",
                     "Circuit-breaker state transitions"),
        r.GetCounter("dqmo_quarantine_events_total",
                     "Times a shard breaker opened (trip or failed probe)"),
        r.GetCounter("dqmo_quarantined_frames_total",
                     "Per-shard frames served around a quarantined shard"),
        r.GetCounter("dqmo_hedged_reads_total",
                     "Reads that launched a second (hedge) probe"),
        r.GetCounter("dqmo_hedged_reads_won_total",
                     "Hedged reads where the second probe won"),
        r.GetCounter("dqmo_hedged_reads_lost_total",
                     "Hedged reads where the primary finished first"),
        r.GetCounter("dqmo_scrub_pages_total",
                     "Pages scanned by the shard scrubber"),
        r.GetCounter("dqmo_scrub_pages_rebuilt_total",
                     "Damaged pages rebuilt by online repair"),
        r.GetGauge("dqmo_redo_queue_depth",
                   "Writes currently parked for quarantined shards"),
        r.GetCounter("dqmo_redo_parked_total",
                     "Writes parked in a quarantined shard's redo queue"),
        r.GetCounter("dqmo_redo_drained_total",
                     "Parked writes drained back into a reinstated shard"),
    };
  }();
  return m;
}

CircuitBreaker::CircuitBreaker(int shard, const BreakerOptions& options)
    : shard_(shard), options_(options), probe_rng_(options.probe_seed) {
  DQMO_CHECK(options.error_alpha > 0.0 && options.error_alpha <= 1.0);
  DQMO_CHECK(options.latency_alpha > 0.0 && options.latency_alpha <= 1.0);
  DQMO_CHECK(options.probe_rate >= 0.0 && options.probe_rate <= 1.0);
  DQMO_CHECK(options.probe_successes_to_close >= 1);
}

void CircuitBreaker::SetStateLocked(BreakerState next) {
  const BreakerState cur = state();
  if (cur == next) return;
  HealthMetrics& m = HealthMetrics::Get();
  m.breaker_transitions->Add(1);
  if (cur == BreakerState::kClosed) m.breaker_state->Add(1);
  if (next == BreakerState::kClosed) m.breaker_state->Add(-1);
  state_.store(static_cast<uint8_t>(next), std::memory_order_relaxed);
  // Every transition is a flight-recorder event: the blackbox's whole job
  // is answering "what did this breaker do, and when" after the fact.
  const FlightEventKind ev =
      next == BreakerState::kOpen     ? FlightEventKind::kBreakerOpen
      : next == BreakerState::kHalfOpen ? FlightEventKind::kBreakerHalfOpen
                                        : FlightEventKind::kBreakerClose;
  FlightRecorder::Record(ev, shard_, static_cast<uint64_t>(cur));
}

void CircuitBreaker::OpenLocked(const std::string& cause) {
  if (state() == BreakerState::kOpen) return;
  SetStateLocked(BreakerState::kOpen);
  frames_open_ = 0;
  probe_streak_ = 0;
  last_open_cause_ = cause;
  ++open_events_;
  probe_frame_.store(false, std::memory_order_relaxed);
  HealthMetrics::Get().quarantine_events->Add(1);
  FlightRecorder::Record(FlightEventKind::kQuarantine, shard_, open_events_);
  // A breaker trip is an anomaly worth a blackbox snapshot: the ring still
  // holds the reads/WAL events that caused it.
  FlightRecorder::Global().MaybeAutoDump("breaker open");
}

void CircuitBreaker::OnReadOutcome(bool ok, uint64_t latency_ns) {
  std::lock_guard<std::mutex> lock(mu_);
  ++samples_;
  error_ewma_ = options_.error_alpha * (ok ? 0.0 : 1.0) +
                (1.0 - options_.error_alpha) * error_ewma_;
  if (ok) {
    consecutive_errors_ = 0;
    // Failed reads carry no latency signal (a fast failure is not a fast
    // shard); seed the EWMA with the first observation instead of decaying
    // up from zero.
    latency_ewma_ns_d_ =
        latency_ewma_ns_d_ == 0.0
            ? static_cast<double>(latency_ns)
            : options_.latency_alpha * static_cast<double>(latency_ns) +
                  (1.0 - options_.latency_alpha) * latency_ewma_ns_d_;
    latency_ewma_ns_.store(static_cast<uint64_t>(latency_ewma_ns_d_),
                           std::memory_order_relaxed);
    return;
  }
  ++consecutive_errors_;
  // Only a closed breaker trips on read errors: while half-open, the probe
  // verdict (a whole frame's worth of evidence) governs, and while open the
  // gate blocks reads anyway.
  if (state() != BreakerState::kClosed) return;
  if (consecutive_errors_ >= options_.consecutive_failures) {
    OpenLocked(StrFormat("%llu consecutive exhausted reads",
                         static_cast<unsigned long long>(
                             consecutive_errors_)));
  } else if (samples_ >= options_.min_samples &&
             error_ewma_ >= options_.open_error_rate) {
    OpenLocked(StrFormat("error-rate EWMA %.2f", error_ewma_));
  }
}

void CircuitBreaker::OnWalOutcome(bool ok) {
  if (ok) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (state() == BreakerState::kClosed) OpenLocked("wal append/sync failed");
}

CircuitBreaker::FrameDecision CircuitBreaker::OnFrameStart() {
  std::lock_guard<std::mutex> lock(mu_);
  FrameDecision d;
  BreakerState s = state();
  if (s == BreakerState::kOpen) {
    ++frames_open_;
    if (options_.cooldown_frames > 0 &&
        frames_open_ >= options_.cooldown_frames) {
      // Cooldown elapsed: maybe the fault was transient. Probe our way
      // back. (cooldown_frames == 0 pins the shard open until the scrubber
      // repairs it.)
      SetStateLocked(BreakerState::kHalfOpen);
      probe_streak_ = 0;
      s = BreakerState::kHalfOpen;
    } else {
      probe_frame_.store(false, std::memory_order_relaxed);
      d.blocked = true;
      return d;
    }
  }
  if (s == BreakerState::kHalfOpen) {
    const bool probe = probe_rng_.Bernoulli(options_.probe_rate);
    probe_frame_.store(probe, std::memory_order_relaxed);
    d.probe = probe;
    d.blocked = !probe;
    if (probe) ++probe_frames_;
    return d;
  }
  probe_frame_.store(false, std::memory_order_relaxed);
  return d;
}

void CircuitBreaker::OnProbeOutcome(bool healthy) {
  std::lock_guard<std::mutex> lock(mu_);
  probe_frame_.store(false, std::memory_order_relaxed);
  if (state() != BreakerState::kHalfOpen) return;
  if (!healthy) {
    OpenLocked("failed probe frame");
    return;
  }
  if (++probe_streak_ >= options_.probe_successes_to_close) {
    SetStateLocked(BreakerState::kClosed);
    // A closed breaker starts with a clean bill of health; stale error
    // history from before the repair must not re-trip it.
    error_ewma_ = 0.0;
    samples_ = 0;
    consecutive_errors_ = 0;
    frames_open_ = 0;
    probe_streak_ = 0;
  }
}

void CircuitBreaker::ForceOpen(const std::string& cause) {
  std::lock_guard<std::mutex> lock(mu_);
  OpenLocked(cause);
}

void CircuitBreaker::OnRepairComplete() {
  std::lock_guard<std::mutex> lock(mu_);
  if (state() != BreakerState::kOpen) return;
  SetStateLocked(BreakerState::kHalfOpen);
  probe_streak_ = 0;
}

double CircuitBreaker::error_rate() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_ewma_;
}

uint64_t CircuitBreaker::latency_ewma_ns() const {
  return latency_ewma_ns_.load(std::memory_order_relaxed);
}

uint64_t CircuitBreaker::open_events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return open_events_;
}

uint64_t CircuitBreaker::probe_frames() const {
  std::lock_guard<std::mutex> lock(mu_);
  return probe_frames_;
}

std::string CircuitBreaker::last_open_cause() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_open_cause_;
}

BreakerGateReader::BreakerGateReader(PageReader* base, CircuitBreaker* breaker,
                                     uint64_t (*clock_ns)())
    : base_(base),
      breaker_(breaker),
      clock_ns_(clock_ns != nullptr ? clock_ns : &SteadyNowNs) {
  DQMO_CHECK(base != nullptr && breaker != nullptr);
}

Result<PageReader::ReadResult> BreakerGateReader::Read(PageId id) {
  if (breaker_->ReadsBlocked()) {
    blocked_reads_.fetch_add(1, std::memory_order_relaxed);
    // IOError, not a bespoke code: the kSkipSubtree machinery treats it
    // like any other unreadable subtree, which is the whole design — a
    // quarantined shard degrades to attributed kPartial frames through the
    // exact code path PR 1 built.
    return Status::IOError(StrFormat("shard %d quarantined (breaker %s)",
                                     breaker_->shard(),
                                     BreakerStateName(breaker_->state())));
  }
  std::lock_guard<std::mutex> fetch_lock(fetch_mu_);
  const uint64_t t0 = clock_ns_();
  Result<ReadResult> r = base_->Read(id);
  breaker_->OnReadOutcome(r.ok(), clock_ns_() - t0);
  return r;
}

HedgeOptions HedgeOptions::FromEnv() {
  HedgeOptions o;
  o.enabled = GetEnvBool("DQMO_HEDGE", o.enabled);
  o.latency_factor = GetEnvDouble("DQMO_HEDGE_FACTOR", o.latency_factor);
  o.min_latency_us = static_cast<uint64_t>(
      GetEnvInt("DQMO_HEDGE_MIN_US", static_cast<int64_t>(o.min_latency_us)));
  return o;
}

HedgedPageReader::HedgedPageReader(PageReader* primary, PageReader* secondary,
                                   CircuitBreaker* health,
                                   const HedgeOptions& options,
                                   uint64_t (*clock_ns)())
    : primary_(primary),
      secondary_(secondary),
      health_(health),
      options_(options),
      clock_ns_(clock_ns != nullptr ? clock_ns : &SteadyNowNs) {
  DQMO_CHECK(primary != nullptr);
  DQMO_CHECK(!options.enabled || secondary != nullptr);
}

HedgedPageReader::~HedgedPageReader() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (worker_started_) worker_.join();
}

void HedgedPageReader::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] { return stop_ || job_.pending; });
    if (stop_) return;
    const PageId id = job_.id;
    const Tracer::FrameHandle trace = job_.trace;
    const int16_t shard = job_.shard;
    const uint64_t submit_ns = job_.submit_ns;
    lock.unlock();
    Result<ReadResult> r = primary_->Read(id);
    if (trace != nullptr) {
      // Report the primary leg back to the frame that submitted it —
      // whether it won or was abandoned to the hedge. This is exactly the
      // span that used to vanish: the worker has no armed TLS frame.
      const uint64_t now = NowNs();
      Tracer::RecordRemote(trace, SpanKind::kHedgeProbe,
                           SpanOrigin::kHedgeWorker, shard, submit_ns,
                           now - submit_ns, id);
    }
    lock.lock();
    job_.pending = false;
    job_.done = true;
    if (r.ok()) {
      job_.status = Status::OK();
      job_.result = *r;
    } else {
      job_.status = r.status();
      job_.result = ReadResult{};
    }
    done_cv_.notify_all();
  }
}

void HedgedPageReader::DrainWorker(std::unique_lock<std::mutex>& lock) {
  done_cv_.wait(lock, [&] { return !job_.pending; });
  job_.done = false;  // Discard any abandoned (hedge-won) result.
}

PageReader::ReadResult HedgedPageReader::Localize(const ReadResult& r) {
  if (r.data == nullptr) return r;
  std::vector<uint8_t>& buf = caller_pages_[std::this_thread::get_id()];
  buf.assign(r.data, r.data + kPageSize);
  return ReadResult{buf.data(), r.physical};
}

void HedgedPageReader::Quiesce() {
  std::unique_lock<std::mutex> lock(mu_);
  DrainWorker(lock);
}

Result<PageReader::ReadResult> HedgedPageReader::Read(PageId id) {
  if (!options_.enabled) return primary_->Read(id);
  // Captured on the frame thread, before any blocking: thread-locals are
  // meaningless once the job crosses to the worker.
  Tracer::FrameHandle frame_trace;
  int16_t frame_shard = -1;
  if (internal::ThreadFrameArmed()) {
    frame_trace = Tracer::ActiveFrame();
    frame_shard = internal::ThreadCurrentShard();
  }
  QueryBudget* budget = budget_.load(std::memory_order_relaxed);
  const bool can_hedge = budget == nullptr || !budget->stopped();
  const uint64_t ewma = health_ != nullptr ? health_->latency_ewma_ns() : 0;
  const uint64_t threshold_ns =
      std::max(options_.min_latency_us * 1000,
               static_cast<uint64_t>(options_.latency_factor *
                                     static_cast<double>(ewma)));

  std::unique_lock<std::mutex> lock(mu_);
  if (!worker_started_) {
    worker_ = std::thread([this] { WorkerLoop(); });
    worker_started_ = true;
  }
  // A previous hedge-won read may have left the worker mid-read; its result
  // buffer (the primary chain's) must not be recycled while the previous
  // caller could still hold a pointer into the *secondary* chain — which it
  // cannot by now, since this call is the "next read". Join it and discard.
  DrainWorker(lock);
  job_ = Job{};
  job_.id = id;
  job_.pending = true;
  job_.trace = std::move(frame_trace);
  job_.shard = frame_shard;
  if (job_.trace != nullptr) job_.submit_ns = NowNs();
  work_cv_.notify_one();

  if (!can_hedge) {
    // Cancelled frame: no speculative probe for a result about to be thrown
    // away. Wait for the primary, however slow.
    done_cv_.wait(lock, [&] { return job_.done; });
    job_.done = false;
    if (job_.status.ok()) return Localize(job_.result);
    return job_.status;
  }

  if (done_cv_.wait_for(lock, std::chrono::nanoseconds(threshold_ns),
                        [&] { return job_.done; })) {
    job_.done = false;
    if (job_.status.ok()) return Localize(job_.result);
    return job_.status;
  }

  // Primary is dawdling: fire the hedge on this thread against the
  // independent secondary chain. First result wins.
  ++hedges_;
  HealthMetrics::Get().hedged_reads->Add(1);
  lock.unlock();
  // The hedge leg runs on the frame thread itself, so a plain span suffices.
  Result<ReadResult> second = [&] {
    Tracer::SpanScope hedge_span(SpanKind::kHedgeProbe, id);
    return secondary_->Read(id);
  }();
  lock.lock();
  if (job_.done) {
    // Primary finished while the hedge ran: by arrival order it won.
    job_.done = false;
    ++hedges_lost_;
    HealthMetrics::Get().hedged_reads_lost->Add(1);
    if (job_.status.ok()) return Localize(job_.result);
    if (second.ok()) return *second;  // Hedge masked a primary failure.
    return job_.status;
  }
  if (second.ok()) {
    ++hedges_won_;
    HealthMetrics::Get().hedged_reads_won->Add(1);
    // Leave the primary in flight; the next Read joins it.
    return *second;
  }
  // The hedge itself failed and the primary is still out: correctness over
  // latency — wait for the primary rather than fail a read that may yet
  // succeed.
  done_cv_.wait(lock, [&] { return job_.done; });
  job_.done = false;
  ++hedges_lost_;
  HealthMetrics::Get().hedged_reads_lost->Add(1);
  if (job_.status.ok()) return Localize(job_.result);
  return job_.status;
}

void RedoQueue::Park(uint64_t lsn, const MotionSegment& stored) {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.push_back(Entry{lsn, stored});
  ++total_parked_;
  HealthMetrics& m = HealthMetrics::Get();
  m.redo_parked->Add(1);
  m.redo_queue_depth->Add(1);
}

std::vector<RedoQueue::Entry> RedoQueue::Take() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  out.swap(entries_);
  if (!out.empty()) {
    HealthMetrics::Get().redo_queue_depth->Add(
        -static_cast<int64_t>(out.size()));
  }
  return out;
}

void RedoQueue::Restore(std::vector<Entry> entries) {
  if (entries.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  HealthMetrics::Get().redo_queue_depth->Add(
      static_cast<int64_t>(entries.size()));
  entries.insert(entries.end(), std::make_move_iterator(entries_.begin()),
                 std::make_move_iterator(entries_.end()));
  entries_ = std::move(entries);
}

size_t RedoQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t RedoQueue::total_parked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_parked_;
}

}  // namespace dqmo
