// TimeSet: a union of disjoint time intervals.
//
// A PDQ trajectory can enter, leave and re-enter a bounding box (or a motion
// segment), so the exact "overlapping time" of Eq. (3) in the paper is a
// union of intervals, not a single one. The paper joins them (∪_j T^j); we
// keep the exact set, which both tightens queue priorities and avoids false
// positives for objects with intermittent visibility.
#ifndef DQMO_GEOM_TIMESET_H_
#define DQMO_GEOM_TIMESET_H_

#include <string>
#include <vector>

#include "geom/interval.h"

namespace dqmo {

/// Sorted union of pairwise-disjoint, non-empty intervals.
class TimeSet {
 public:
  TimeSet() = default;

  /// Singleton set (empty set if `iv` is empty).
  explicit TimeSet(const Interval& iv) { Add(iv); }

  /// Inserts an interval, merging with any intervals it touches/overlaps.
  void Add(const Interval& iv);

  /// Empties the set, keeping the allocated capacity (scratch reuse in the
  /// query hot path).
  void Clear() { intervals_.clear(); }

  /// Union with another set.
  void AddAll(const TimeSet& other);

  bool empty() const { return intervals_.empty(); }

  /// Earliest instant in the set (+inf when empty).
  double Start() const { return empty() ? kInf : intervals_.front().lo; }

  /// Latest instant in the set (-inf when empty).
  double End() const { return empty() ? -kInf : intervals_.back().hi; }

  /// Total measure (sum of lengths).
  double TotalLength() const;

  bool Contains(double t) const;

  /// True iff any member interval overlaps `iv`.
  bool Overlaps(const Interval& iv) const;

  /// The part of the set inside `iv`.
  TimeSet Intersect(const Interval& iv) const;

  /// First member interval that overlaps `iv` (empty Interval if none).
  Interval FirstOverlap(const Interval& iv) const;

  /// Earliest instant of the set that is >= t (+inf if none). If t falls
  /// inside a member interval the answer is t itself.
  double FirstInstantAtOrAfter(double t) const;

  const std::vector<Interval>& intervals() const { return intervals_; }

  friend bool operator==(const TimeSet& a, const TimeSet& b) {
    return a.intervals_ == b.intervals_;
  }

  std::string ToString() const;

 private:
  std::vector<Interval> intervals_;
};

}  // namespace dqmo

#endif  // DQMO_GEOM_TIMESET_H_
