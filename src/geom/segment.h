// Space-time line segments: the geometric form of a motion between two
// updates, and the exact segment-vs-query tests of Sect. 3.2.
#ifndef DQMO_GEOM_SEGMENT_H_
#define DQMO_GEOM_SEGMENT_H_

#include <string>

#include "geom/box.h"
#include "geom/interval.h"
#include "geom/vec.h"

namespace dqmo {

/// A directed line segment in space-time: the object is at `p0` at time
/// `time.lo` and moves with constant velocity to `p1` at time `time.hi`.
///
/// This is the leaf-level representation of NSI (Sect. 3.2): storing exact
/// endpoints instead of bounding boxes lets the index skip motions whose BB
/// intersects a query while the motion itself does not.
struct StSegment {
  Vec p0;
  Vec p1;
  Interval time;

  StSegment() = default;
  StSegment(Vec a, Vec b, Interval t) : p0(a), p1(b), time(t) {}

  int dims() const { return p0.dims; }

  /// Constant velocity (p1 - p0) / duration; zero vector for instantaneous
  /// segments (duration 0).
  Vec Velocity() const;

  /// Scalar speed |velocity|; 0 for instantaneous segments.
  double Speed() const;

  /// Location function f(t) = p0 + v * (t - time.lo), Eq. (1) of the paper.
  /// `t` must lie within the segment's valid time.
  Vec PositionAt(double t) const;

  /// Minimal space-time bounding rectangle (the internal-node form of NSI).
  StBox Bounds() const;

  /// The exact time interval during which the moving point lies inside the
  /// (static) space-time query box, i.e. the solution of
  ///   q.spatial.lo_i <= x_i(t) <= q.spatial.hi_i  for all i,
  ///   t in q.time, t in this->time.
  /// Empty when the motion misses the query even though its BB may not.
  Interval OverlapTime(const StBox& q) const;

  /// True iff OverlapTime(q) is non-empty.
  bool Intersects(const StBox& q) const;

  /// Euclidean distance from the moving point at time t to `p`.
  double DistanceAt(double t, const Vec& p) const;

  std::string ToString() const;
};

/// The exact time interval within `window` during which the two moving
/// points are within Euclidean distance `delta` of each other. Both motions
/// are linear, so the squared inter-object distance is a quadratic in t;
/// the answer is a single (possibly empty) interval — the kernel of the
/// spatio-temporal distance join (the paper's future-work item (ii),
/// following its reference [6]).
Interval WithinDistanceTime(const StSegment& a, const StSegment& b,
                            double delta, const Interval& window);

}  // namespace dqmo

#endif  // DQMO_GEOM_SEGMENT_H_
