#include "geom/trajectory.h"

#include <algorithm>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

Result<QueryTrajectory> QueryTrajectory::Make(std::vector<KeySnapshot> keys) {
  if (keys.size() < 2) {
    return Status::InvalidArgument("trajectory needs at least 2 key snapshots");
  }
  const int d = keys.front().window.dims;
  for (size_t j = 0; j < keys.size(); ++j) {
    if (keys[j].window.dims != d) {
      return Status::InvalidArgument("key snapshot windows differ in dims");
    }
    if (keys[j].window.empty()) {
      return Status::InvalidArgument(
          StrFormat("key snapshot %zu has an empty window", j));
    }
    if (j > 0 && !(keys[j - 1].t < keys[j].t)) {
      return Status::InvalidArgument(
          "key snapshot times must be strictly increasing");
    }
  }
  QueryTrajectory q;
  q.keys_ = std::move(keys);
  return q;
}

TrajectorySegment QueryTrajectory::Segment(int j) const {
  DQMO_DCHECK(j >= 0 && j < num_segments());
  const KeySnapshot& a = keys_[static_cast<size_t>(j)];
  const KeySnapshot& b = keys_[static_cast<size_t>(j) + 1];
  return TrajectorySegment(a.window, b.window, Interval(a.t, b.t));
}

Box QueryTrajectory::WindowAt(double t) const {
  DQMO_DCHECK(TimeSpan().Contains(t));
  // Find the segment containing t.
  auto it = std::upper_bound(
      keys_.begin(), keys_.end(), t,
      [](double v, const KeySnapshot& k) { return v < k.t; });
  int j = static_cast<int>(it - keys_.begin()) - 1;
  j = std::clamp(j, 0, num_segments() - 1);
  return Segment(j).WindowAt(t);
}

StBox QueryTrajectory::FrameQuery(double t0, double t1) const {
  DQMO_DCHECK(t0 <= t1);
  const Interval frame(t0, t1);
  Box cover = WindowAt(t0);
  // Cover the window at t1 and at every key snapshot inside the frame (the
  // window path is piecewise linear, so extremes occur at ends or keys).
  cover = cover.Cover(WindowAt(t1));
  for (const KeySnapshot& k : keys_) {
    if (k.t > t0 && k.t < t1) cover = cover.Cover(k.window);
  }
  return StBox(cover, frame);
}

TimeSet QueryTrajectory::OverlapTimes(const StBox& r) const {
  TimeSet times;
  if (r.empty()) return times;
  // Only segments temporally overlapping r can contribute.
  for (int j = 0; j < num_segments(); ++j) {
    const TrajectorySegment s = Segment(j);
    if (!s.time.Overlaps(r.time)) continue;
    times.Add(s.OverlapTime(r));
  }
  return times;
}

TimeSet QueryTrajectory::OverlapTimes(const StSegment& m) const {
  TimeSet times;
  for (int j = 0; j < num_segments(); ++j) {
    const TrajectorySegment s = Segment(j);
    if (!s.time.Overlaps(m.time)) continue;
    times.Add(s.OverlapTime(m));
  }
  return times;
}

QueryTrajectory QueryTrajectory::Inflate(double delta) const {
  QueryTrajectory q;
  q.keys_ = keys_;
  for (KeySnapshot& k : q.keys_) k.window = k.window.Inflate(delta);
  return q;
}

std::string QueryTrajectory::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(keys_.size());
  for (const KeySnapshot& k : keys_) {
    parts.push_back(StrFormat("K(t=%s, %s)", FormatDouble(k.t).c_str(),
                              k.window.ToString().c_str()));
  }
  return "traj[" + StrJoin(parts, ", ") + "]";
}

}  // namespace dqmo
