#include "geom/timeset.h"

#include <algorithm>

namespace dqmo {

void TimeSet::Add(const Interval& iv) {
  if (iv.empty()) return;
  // Find the range of existing intervals that touch [iv.lo, iv.hi].
  auto first = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv,
      [](const Interval& a, const Interval& b) { return a.hi < b.lo; });
  if (first == intervals_.end() || iv.hi < first->lo) {
    intervals_.insert(first, iv);
    return;
  }
  // Merge [first, last) into one interval covering iv.
  auto last = first;
  Interval merged = iv;
  while (last != intervals_.end() && last->lo <= iv.hi) {
    merged = merged.Cover(*last);
    ++last;
  }
  *first = merged;
  intervals_.erase(first + 1, last);
}

void TimeSet::AddAll(const TimeSet& other) {
  for (const Interval& iv : other.intervals_) Add(iv);
}

double TimeSet::TotalLength() const {
  double sum = 0.0;
  for (const Interval& iv : intervals_) sum += iv.length();
  return sum;
}

bool TimeSet::Contains(double t) const {
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), t,
      [](const Interval& a, double v) { return a.hi < v; });
  return it != intervals_.end() && it->Contains(t);
}

bool TimeSet::Overlaps(const Interval& iv) const {
  return !FirstOverlap(iv).empty();
}

TimeSet TimeSet::Intersect(const Interval& iv) const {
  TimeSet out;
  if (iv.empty()) return out;
  for (const Interval& member : intervals_) {
    const Interval x = member.Intersect(iv);
    if (!x.empty()) out.intervals_.push_back(x);
  }
  return out;
}

Interval TimeSet::FirstOverlap(const Interval& iv) const {
  if (iv.empty()) return Interval::Empty();
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), iv.lo,
      [](const Interval& a, double v) { return a.hi < v; });
  if (it != intervals_.end() && it->lo <= iv.hi) return *it;
  return Interval::Empty();
}

double TimeSet::FirstInstantAtOrAfter(double t) const {
  auto it = std::lower_bound(
      intervals_.begin(), intervals_.end(), t,
      [](const Interval& a, double v) { return a.hi < v; });
  if (it == intervals_.end()) return kInf;
  return std::max(t, it->lo);
}

std::string TimeSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < intervals_.size(); ++i) {
    if (i > 0) out += " u ";
    out += intervals_[i].ToString();
  }
  out += "}";
  return out;
}

}  // namespace dqmo
