#include "geom/box.h"

#include <algorithm>
#include <cmath>

namespace dqmo {

Box Box::Centered(const Vec& center, double side) {
  Box b(center.dims);
  const double half = 0.5 * side;
  for (int i = 0; i < b.dims; ++i) {
    b.extent(i) = Interval(center[i] - half, center[i] + half);
  }
  return b;
}

Box Box::Point(const Vec& p) {
  Box b(p.dims);
  for (int i = 0; i < b.dims; ++i) b.extent(i) = Interval::Point(p[i]);
  return b;
}

Box Box::FromCorners(const Vec& a, const Vec& b) {
  DQMO_DCHECK(a.dims == b.dims);
  Box box(a.dims);
  for (int i = 0; i < box.dims; ++i) {
    box.extent(i) = Interval(std::min(a[i], b[i]), std::max(a[i], b[i]));
  }
  return box;
}

bool Box::empty() const {
  for (int i = 0; i < dims; ++i) {
    if (extent(i).empty()) return true;
  }
  return false;
}

double Box::Volume() const {
  if (empty()) return 0.0;
  double vol = 1.0;
  for (int i = 0; i < dims; ++i) vol *= extent(i).length();
  return vol;
}

bool Box::Contains(const Vec& p) const {
  DQMO_DCHECK(p.dims == dims);
  for (int i = 0; i < dims; ++i) {
    if (!extent(i).Contains(p[i])) return false;
  }
  return true;
}

bool Box::Contains(const Box& other) const {
  if (other.empty()) return true;
  DQMO_DCHECK(other.dims == dims);
  for (int i = 0; i < dims; ++i) {
    if (!extent(i).Contains(other.extent(i))) return false;
  }
  return true;
}

bool Box::Overlaps(const Box& other) const {
  DQMO_DCHECK(other.dims == dims);
  for (int i = 0; i < dims; ++i) {
    if (!extent(i).Overlaps(other.extent(i))) return false;
  }
  return true;
}

Box Box::Intersect(const Box& other) const {
  DQMO_DCHECK(other.dims == dims);
  Box r(dims);
  for (int i = 0; i < dims; ++i) {
    r.extent(i) = extent(i).Intersect(other.extent(i));
  }
  return r;
}

Box Box::Cover(const Box& other) const {
  if (empty()) return other;
  if (other.empty()) return *this;
  DQMO_DCHECK(other.dims == dims);
  Box r(dims);
  for (int i = 0; i < dims; ++i) {
    r.extent(i) = extent(i).Cover(other.extent(i));
  }
  return r;
}

Box Box::Inflate(double delta) const {
  Box r(dims);
  for (int i = 0; i < dims; ++i) r.extent(i) = extent(i).Inflate(delta);
  return r;
}

Box Box::Shift(const Vec& offset) const {
  DQMO_DCHECK(offset.dims == dims);
  Box r(dims);
  for (int i = 0; i < dims; ++i) r.extent(i) = extent(i).Shift(offset[i]);
  return r;
}

Vec Box::Center() const {
  Vec c(dims);
  for (int i = 0; i < dims; ++i) c[i] = extent(i).mid();
  return c;
}

double Box::MinDistance(const Vec& p) const {
  DQMO_DCHECK(p.dims == dims);
  double sum = 0.0;
  for (int i = 0; i < dims; ++i) {
    double d = 0.0;
    if (p[i] < extent(i).lo) {
      d = extent(i).lo - p[i];
    } else if (p[i] > extent(i).hi) {
      d = p[i] - extent(i).hi;
    }
    sum += d * d;
  }
  return std::sqrt(sum);
}

double Box::MinDistance(const Box& other) const {
  DQMO_DCHECK(other.dims == dims);
  double sum = 0.0;
  for (int i = 0; i < dims; ++i) {
    double gap = 0.0;
    if (other.extent(i).hi < extent(i).lo) {
      gap = extent(i).lo - other.extent(i).hi;
    } else if (other.extent(i).lo > extent(i).hi) {
      gap = other.extent(i).lo - extent(i).hi;
    }
    sum += gap * gap;
  }
  return std::sqrt(sum);
}

std::string Box::ToString() const {
  std::string out = "<";
  for (int i = 0; i < dims; ++i) {
    if (i > 0) out += " x ";
    out += extent(i).ToString();
  }
  out += ">";
  return out;
}

std::string StBox::ToString() const {
  return "{t=" + time.ToString() + ", s=" + spatial.ToString() + "}";
}

std::string Vec::ToString() const {
  std::string out = "(";
  for (int i = 0; i < dims; ++i) {
    if (i > 0) out += ", ";
    out += std::to_string((*this)[i]);
  }
  out += ")";
  return out;
}

}  // namespace dqmo
