#include "geom/segment.h"

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

Vec StSegment::Velocity() const {
  const double dt = time.length();
  Vec v(p0.dims);
  if (dt <= 0.0) return v;
  for (int i = 0; i < v.dims; ++i) v[i] = (p1[i] - p0[i]) / dt;
  return v;
}

double StSegment::Speed() const { return Velocity().Norm(); }

Vec StSegment::PositionAt(double t) const {
  DQMO_DCHECK(time.Contains(t));
  const double dt = time.length();
  if (dt <= 0.0) return p0;
  return Lerp(p0, p1, (t - time.lo) / dt);
}

StBox StSegment::Bounds() const {
  return StBox(Box::FromCorners(p0, p1), time);
}

Interval StSegment::OverlapTime(const StBox& q) const {
  DQMO_DCHECK(q.spatial.dims == dims());
  Interval sol = time.Intersect(q.time);
  if (sol.empty()) return Interval::Empty();
  const Vec v = Velocity();
  for (int i = 0; i < dims() && !sol.empty(); ++i) {
    // x_i(t) = p0_i + v_i * (t - time.lo)  >= q.lo_i  and  <= q.hi_i.
    // As a + b*t with b = v_i, a = p0_i - v_i * time.lo - bound.
    const double b = v[i];
    const double base = p0[i] - v[i] * time.lo;
    sol = sol.Intersect(SolveLinearGe(base - q.spatial.extent(i).lo, b));
    sol = sol.Intersect(SolveLinearLe(base - q.spatial.extent(i).hi, b));
  }
  return sol;
}

bool StSegment::Intersects(const StBox& q) const {
  return !OverlapTime(q).empty();
}

double StSegment::DistanceAt(double t, const Vec& p) const {
  return PositionAt(t).DistanceTo(p);
}

Interval WithinDistanceTime(const StSegment& a, const StSegment& b,
                            double delta, const Interval& window) {
  DQMO_DCHECK(a.dims() == b.dims());
  DQMO_DCHECK(delta >= 0.0);
  const Interval domain = a.time.Intersect(b.time).Intersect(window);
  if (domain.empty()) return Interval::Empty();
  // Relative motion r(t) = c + d * t; squared distance is
  // |d|^2 t^2 + 2 c.d t + |c|^2 <= delta^2.
  const Vec va = a.Velocity();
  const Vec vb = b.Velocity();
  Vec c(a.dims());
  Vec d(a.dims());
  for (int i = 0; i < a.dims(); ++i) {
    c[i] = (a.p0[i] - va[i] * a.time.lo) - (b.p0[i] - vb[i] * b.time.lo);
    d[i] = va[i] - vb[i];
  }
  const double qa = d.NormSquared();
  const double qb = 2.0 * c.Dot(d);
  const double qc = c.NormSquared() - delta * delta;
  if (qa <= 0.0) {
    // Constant relative position: either always or never within range.
    return qc <= 0.0 ? domain : Interval::Empty();
  }
  const double disc = qb * qb - 4.0 * qa * qc;
  if (disc < 0.0) return Interval::Empty();
  // Numerically stable roots: compute the larger-magnitude one by
  // addition, derive the other via the product of roots (qc / qa).
  const double sq = std::sqrt(disc);
  const double q = -0.5 * (qb + std::copysign(sq, qb));
  double r1 = q / qa;
  double r2 = q != 0.0 ? qc / q : -qb / (2.0 * qa);
  if (r1 > r2) std::swap(r1, r2);
  return Interval(r1, r2).Intersect(domain);
}

std::string StSegment::ToString() const {
  return StrFormat("seg{%s->%s @ %s}", p0.ToString().c_str(),
                   p1.ToString().c_str(), time.ToString().c_str());
}

}  // namespace dqmo
