// Query trajectories: sequences of key snapshots (Sect. 4.1, Eq. (2)).
#ifndef DQMO_GEOM_TRAJECTORY_H_
#define DQMO_GEOM_TRAJECTORY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "geom/box.h"
#include "geom/segment.h"
#include "geom/timeset.h"
#include "geom/trapezoid.h"

namespace dqmo {

/// A key snapshot K^j: a spatial range window at a given instant.
struct KeySnapshot {
  double t = 0.0;
  Box window;

  KeySnapshot() = default;
  KeySnapshot(double time, Box w) : t(time), window(std::move(w)) {}
};

/// The trajectory of a dynamic query: key snapshots K^1..K^n with strictly
/// increasing times; between consecutive keys the window interpolates
/// linearly (the trapezoid segments S^j).
class QueryTrajectory {
 public:
  QueryTrajectory() = default;

  /// Builds a trajectory from key snapshots. Fails unless there are at least
  /// two keys, times are strictly increasing, all windows share one
  /// dimensionality, and no window is empty.
  static Result<QueryTrajectory> Make(std::vector<KeySnapshot> keys);

  int dims() const { return keys_.front().window.dims; }

  const std::vector<KeySnapshot>& keys() const { return keys_; }

  /// Number of trapezoid segments (keys - 1).
  int num_segments() const { return static_cast<int>(keys_.size()) - 1; }

  /// The j-th trapezoid segment S^j (0-based).
  TrajectorySegment Segment(int j) const;

  /// [K^1.t, K^n.t].
  Interval TimeSpan() const {
    return Interval(keys_.front().t, keys_.back().t);
  }

  /// Interpolated query window at time t (t must lie in TimeSpan()).
  Box WindowAt(double t) const;

  /// The snapshot query covering frame interval [t0, t1]: time extent
  /// [t0, t1] and spatial extent covering every window position in between
  /// (exact for linear interpolation: the coverage of the end windows).
  StBox FrameQuery(double t0, double t1) const;

  /// Exact times the moving window overlaps static box `r`:
  /// T_{Q,R} = ∪_j T^j (paper Sect. 4.1), kept as an exact TimeSet.
  TimeSet OverlapTimes(const StBox& r) const;

  /// Exact times the moving window contains the moving point of `m`.
  TimeSet OverlapTimes(const StSegment& m) const;

  /// A copy whose every window is inflated by `delta` on all sides: the
  /// SPDQ transformation (Sect. 4, Semi-Predictive Dynamic Query) allowing
  /// the observer to deviate up to `delta` from the predicted path.
  QueryTrajectory Inflate(double delta) const;

  std::string ToString() const;

 private:
  std::vector<KeySnapshot> keys_;
};

}  // namespace dqmo

#endif  // DQMO_GEOM_TRAJECTORY_H_
