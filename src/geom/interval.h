// Interval arithmetic (Definition 1 of the paper).
//
// An Interval [lo, hi] is empty iff lo > hi. The paper's operations are
// intersection (∩), coverage (⊎), overlap (≬) and precedes (⪯); we add the
// containment and linear-inequality helpers the query processors need.
#ifndef DQMO_GEOM_INTERVAL_H_
#define DQMO_GEOM_INTERVAL_H_

#include <algorithm>
#include <limits>
#include <string>

namespace dqmo {

inline constexpr double kInf = std::numeric_limits<double>::infinity();

/// Closed interval of reals; empty when lo > hi.
struct Interval {
  double lo = kInf;   // Default-constructed interval is empty.
  double hi = -kInf;

  constexpr Interval() = default;
  constexpr Interval(double l, double h) : lo(l), hi(h) {}

  /// The degenerate interval [v, v] (paper: a single value v ≡ [v, v]).
  static constexpr Interval Point(double v) { return Interval(v, v); }

  /// The canonical empty interval.
  static constexpr Interval Empty() { return Interval(); }

  /// (-inf, +inf).
  static constexpr Interval All() { return Interval(-kInf, kInf); }

  bool empty() const { return lo > hi; }

  /// Length (hi - lo); 0 for points, negative never (0 for empty).
  double length() const { return empty() ? 0.0 : hi - lo; }

  double mid() const { return 0.5 * (lo + hi); }

  bool Contains(double v) const { return lo <= v && v <= hi; }

  /// True iff `other` ⊆ this. The empty interval is contained in anything.
  bool Contains(const Interval& other) const {
    if (other.empty()) return true;
    if (empty()) return false;
    return lo <= other.lo && other.hi <= hi;
  }

  /// Paper's ≬ (overlap): intersection non-empty.
  bool Overlaps(const Interval& other) const {
    return !(empty() || other.empty()) && lo <= other.hi && other.lo <= hi;
  }

  /// Paper's ⪯ (precedes): every point of this is <= other.lo.
  /// Empty intervals vacuously precede everything.
  bool Precedes(const Interval& other) const {
    return empty() || other.empty() || hi <= other.lo;
  }

  /// Paper's ∩.
  Interval Intersect(const Interval& other) const {
    return Interval(std::max(lo, other.lo), std::min(hi, other.hi));
  }

  /// Paper's ⊎ (coverage): smallest interval containing both. Coverage with
  /// an empty interval returns the other operand.
  Interval Cover(const Interval& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Interval(std::min(lo, other.lo), std::max(hi, other.hi));
  }

  /// Grows both ends by delta (>= 0); used by SPDQ window inflation.
  Interval Inflate(double delta) const {
    if (empty()) return *this;
    return Interval(lo - delta, hi + delta);
  }

  /// Translates by delta.
  Interval Shift(double delta) const {
    if (empty()) return *this;
    return Interval(lo + delta, hi + delta);
  }

  /// Equality treats all empty intervals as equal.
  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }

  std::string ToString() const;
};

/// Solves a + b*t >= 0 over the reals, returning the solution interval
/// (possibly unbounded via +/-inf, possibly empty, possibly all of R).
///
/// This one helper subsumes the four slope cases of Fig. 3(b) in the paper:
/// every border-vs-border overlap condition is a linear inequality in t.
Interval SolveLinearGe(double a, double b);

/// Solves a + b*t <= 0 over the reals.
Interval SolveLinearLe(double a, double b);

}  // namespace dqmo

#endif  // DQMO_GEOM_INTERVAL_H_
