#include "geom/interval.h"

#include "common/string_util.h"

namespace dqmo {

std::string Interval::ToString() const {
  if (empty()) return "[]";
  return "[" + FormatDouble(lo) + "," + FormatDouble(hi) + "]";
}

Interval SolveLinearGe(double a, double b) {
  if (b > 0.0) return Interval(-a / b, kInf);
  if (b < 0.0) return Interval(-kInf, -a / b);
  return a >= 0.0 ? Interval::All() : Interval::Empty();
}

Interval SolveLinearLe(double a, double b) {
  if (b > 0.0) return Interval(-kInf, -a / b);
  if (b < 0.0) return Interval(-a / b, kInf);
  return a <= 0.0 ? Interval::All() : Interval::Empty();
}

}  // namespace dqmo
