#include "geom/interval.h"

#include "common/string_util.h"

namespace dqmo {

std::string Interval::ToString() const {
  if (empty()) return "[]";
  // StrFormat rather than operator+ chaining: GCC 12 at -O2 emits a bogus
  // -Wrestrict for `const char* + std::string&&` (PR105651), and Release CI
  // builds with -Werror.
  return StrFormat("[%s,%s]", FormatDouble(lo).c_str(),
                   FormatDouble(hi).c_str());
}

Interval SolveLinearGe(double a, double b) {
  if (b > 0.0) return Interval(-a / b, kInf);
  if (b < 0.0) return Interval(-kInf, -a / b);
  return a >= 0.0 ? Interval::All() : Interval::Empty();
}

Interval SolveLinearLe(double a, double b) {
  if (b > 0.0) return Interval(-kInf, -a / b);
  if (b < 0.0) return Interval(-a / b, kInf);
  return a <= 0.0 ? Interval::All() : Interval::Empty();
}

}  // namespace dqmo
