// Boxes (Definition 2 of the paper): products of intervals, plus the
// space-time box StBox = spatial box x time interval used throughout
// indexing and query processing.
#ifndef DQMO_GEOM_BOX_H_
#define DQMO_GEOM_BOX_H_

#include <array>
#include <string>

#include "common/check.h"
#include "common/types.h"
#include "geom/interval.h"
#include "geom/vec.h"

namespace dqmo {

/// d-dimensional spatial box: the product I_1 x ... x I_d. Empty iff any
/// extent is empty.
struct Box {
  std::array<Interval, kMaxSpatialDims> extents{};
  int dims = 2;

  Box() = default;

  /// Empty box of the given dimensionality.
  explicit Box(int d) : dims(d) {
    DQMO_DCHECK(d >= 1 && d <= kMaxSpatialDims);
  }

  /// 2-d convenience constructor.
  Box(Interval x, Interval y) : dims(2) {
    extents[0] = x;
    extents[1] = y;
  }

  /// 3-d convenience constructor.
  Box(Interval x, Interval y, Interval z) : dims(3) {
    extents[0] = x;
    extents[1] = y;
    extents[2] = z;
  }

  /// Axis-aligned box centered at `center` with side length `side` per dim.
  static Box Centered(const Vec& center, double side);

  /// Degenerate box equal to a point.
  static Box Point(const Vec& p);

  /// Smallest box containing two points (e.g. a segment's endpoints).
  static Box FromCorners(const Vec& a, const Vec& b);

  const Interval& extent(int i) const {
    DQMO_DCHECK(i >= 0 && i < dims);
    return extents[static_cast<size_t>(i)];
  }
  Interval& extent(int i) {
    DQMO_DCHECK(i >= 0 && i < dims);
    return extents[static_cast<size_t>(i)];
  }

  bool empty() const;

  /// Product of extent lengths (0 when empty).
  double Volume() const;

  bool Contains(const Vec& p) const;

  /// True iff `other` ⊆ this (empty boxes are contained in anything).
  bool Contains(const Box& other) const;

  /// Paper's ≬ on boxes: per-dimension overlap in every dimension.
  bool Overlaps(const Box& other) const;

  /// Paper's ∩ on boxes: per-dimension intersection.
  Box Intersect(const Box& other) const;

  /// Paper's ⊎ on boxes: per-dimension coverage.
  Box Cover(const Box& other) const;

  /// Grows every extent by delta on both sides (SPDQ inflation).
  Box Inflate(double delta) const;

  /// Translates by `offset`.
  Box Shift(const Vec& offset) const;

  /// Center point (undefined content for empty boxes).
  Vec Center() const;

  /// Minimum Euclidean distance from p to the box (0 if inside).
  double MinDistance(const Vec& p) const;

  /// Minimum Euclidean distance between two boxes (0 when they overlap).
  double MinDistance(const Box& other) const;

  friend bool operator==(const Box& a, const Box& b) {
    if (a.dims != b.dims) return false;
    for (int i = 0; i < a.dims; ++i) {
      if (!(a.extent(i) == b.extent(i))) return false;
    }
    return true;
  }

  std::string ToString() const;
};

/// Space-time box: the paper's query/node rectangle <t, x_1, ..., x_d>.
struct StBox {
  Box spatial;
  Interval time;

  StBox() = default;
  StBox(Box s, Interval t) : spatial(std::move(s)), time(t) {}

  bool empty() const { return time.empty() || spatial.empty(); }

  bool Overlaps(const StBox& other) const {
    return time.Overlaps(other.time) && spatial.Overlaps(other.spatial);
  }

  bool Contains(const StBox& other) const {
    if (other.empty()) return true;
    return time.Contains(other.time) && spatial.Contains(other.spatial);
  }

  StBox Intersect(const StBox& other) const {
    return StBox(spatial.Intersect(other.spatial),
                 time.Intersect(other.time));
  }

  StBox Cover(const StBox& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return StBox(spatial.Cover(other.spatial), time.Cover(other.time));
  }

  friend bool operator==(const StBox& a, const StBox& b) {
    return a.spatial == b.spatial && a.time == b.time;
  }

  std::string ToString() const;
};

}  // namespace dqmo

#endif  // DQMO_GEOM_BOX_H_
