#include "geom/trapezoid.h"

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Linear function value(t) = a + b * t described by its values at the two
/// ends of a trajectory segment.
struct Linear {
  double a = 0.0;
  double b = 0.0;

  static Linear Through(double t0, double v0, double t1, double v1) {
    Linear f;
    const double dt = t1 - t0;
    if (dt <= 0.0) {
      // Degenerate segment (single instant): constant function.
      f.b = 0.0;
      f.a = v0;
    } else {
      f.b = (v1 - v0) / dt;
      f.a = v0 - f.b * t0;
    }
    return f;
  }

  double At(double t) const { return a + b * t; }
};

}  // namespace

Box TrajectorySegment::WindowAt(double t) const {
  DQMO_DCHECK(time.Contains(t));
  const double dt = time.length();
  if (dt <= 0.0) return window0;
  const double alpha = (t - time.lo) / dt;
  Box w(dims());
  for (int i = 0; i < dims(); ++i) {
    const Interval& e0 = window0.extent(i);
    const Interval& e1 = window1.extent(i);
    w.extent(i) = Interval(e0.lo + (e1.lo - e0.lo) * alpha,
                           e0.hi + (e1.hi - e0.hi) * alpha);
  }
  return w;
}

Interval TrajectorySegment::OverlapTime(const StBox& r) const {
  DQMO_DCHECK(r.spatial.dims == dims());
  Interval sol = time.Intersect(r.time);
  for (int i = 0; i < dims() && !sol.empty(); ++i) {
    const Linear upper = Linear::Through(time.lo, window0.extent(i).hi,
                                         time.hi, window1.extent(i).hi);
    const Linear lower = Linear::Through(time.lo, window0.extent(i).lo,
                                         time.hi, window1.extent(i).lo);
    // Upper border above box bottom: U_i(t) >= r.lo_i.
    sol = sol.Intersect(SolveLinearGe(upper.a - r.spatial.extent(i).lo,
                                      upper.b));
    // Lower border below box top: L_i(t) <= r.hi_i.
    sol = sol.Intersect(SolveLinearLe(lower.a - r.spatial.extent(i).hi,
                                      lower.b));
  }
  return sol;
}

Interval TrajectorySegment::OverlapTime(const StSegment& m) const {
  DQMO_DCHECK(m.dims() == dims());
  Interval sol = time.Intersect(m.time);
  if (sol.empty()) return sol;
  const Vec v = m.Velocity();
  for (int i = 0; i < dims() && !sol.empty(); ++i) {
    // Motion coordinate as a linear function of absolute time.
    Linear x;
    x.b = v[i];
    x.a = m.p0[i] - v[i] * m.time.lo;
    const Linear upper = Linear::Through(time.lo, window0.extent(i).hi,
                                         time.hi, window1.extent(i).hi);
    const Linear lower = Linear::Through(time.lo, window0.extent(i).lo,
                                         time.hi, window1.extent(i).lo);
    // x_i(t) <= U_i(t)  and  x_i(t) >= L_i(t).
    sol = sol.Intersect(SolveLinearLe(x.a - upper.a, x.b - upper.b));
    sol = sol.Intersect(SolveLinearGe(x.a - lower.a, x.b - lower.b));
  }
  return sol;
}

std::string TrajectorySegment::ToString() const {
  return StrFormat("trap{%s -> %s @ %s}", window0.ToString().c_str(),
                   window1.ToString().c_str(), time.ToString().c_str());
}

}  // namespace dqmo
