// The moving query window between two key snapshots (the "trapezoid"
// segments of Fig. 3 in the paper) and its overlap-time computations.
#ifndef DQMO_GEOM_TRAPEZOID_H_
#define DQMO_GEOM_TRAPEZOID_H_

#include <string>

#include "geom/box.h"
#include "geom/interval.h"
#include "geom/segment.h"

namespace dqmo {

/// One segment S^j of a dynamic-query trajectory: the query window
/// interpolates linearly from `window0` at time `time.lo` (key snapshot K^j)
/// to `window1` at time `time.hi` (key snapshot K^{j+1}). In each spatial
/// dimension the region swept in (t, x_i) is a trapezoid whose upper/lower
/// borders are the linear functions U_i(t) and L_i(t).
struct TrajectorySegment {
  Box window0;
  Box window1;
  Interval time;

  TrajectorySegment() = default;
  TrajectorySegment(Box w0, Box w1, Interval t)
      : window0(std::move(w0)), window1(std::move(w1)), time(t) {}

  int dims() const { return window0.dims; }

  /// The interpolated query window at time t in `time`.
  Box WindowAt(double t) const;

  /// Exact time interval during which the moving window overlaps the static
  /// space-time box R — Eq. (3) of the paper:
  ///   T^j = ∩_i ( T_i^{j,u} ∩ T_i^{j,l} ) ∩ [K^j.t, K^{j+1}.t] ∩ R.t
  /// Each border condition is one linear inequality in t, which subsumes the
  /// four slope cases of Fig. 3(b).
  Interval OverlapTime(const StBox& r) const;

  /// Exact time interval during which the moving window contains the moving
  /// point of motion segment `m` (leaf-level test): the constraints
  ///   L_i(t) <= x_i(t) <= U_i(t)
  /// are linear because both window borders and the motion are linear.
  Interval OverlapTime(const StSegment& m) const;

  std::string ToString() const;
};

}  // namespace dqmo

#endif  // DQMO_GEOM_TRAPEZOID_H_
