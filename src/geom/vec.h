// Small fixed-capacity spatial vector with runtime dimensionality.
#ifndef DQMO_GEOM_VEC_H_
#define DQMO_GEOM_VEC_H_

#include <array>
#include <cmath>
#include <string>

#include "common/check.h"
#include "common/types.h"

namespace dqmo {

/// A point (or velocity) in d-dimensional space, 1 <= d <= kMaxSpatialDims.
///
/// Dimensionality is a runtime property: the paper's applications use d = 2
/// or 3 and the index supports both without recompilation.
struct Vec {
  std::array<double, kMaxSpatialDims> v{};
  int dims = 2;

  Vec() = default;

  /// Zero vector of the given dimensionality.
  explicit Vec(int d) : dims(d) { DQMO_DCHECK(d >= 1 && d <= kMaxSpatialDims); }

  /// 2-d convenience constructor.
  Vec(double x, double y) : dims(2) {
    v[0] = x;
    v[1] = y;
  }

  /// 3-d convenience constructor.
  Vec(double x, double y, double z) : dims(3) {
    v[0] = x;
    v[1] = y;
    v[2] = z;
  }

  double operator[](int i) const {
    DQMO_DCHECK(i >= 0 && i < dims);
    return v[static_cast<size_t>(i)];
  }
  double& operator[](int i) {
    DQMO_DCHECK(i >= 0 && i < dims);
    return v[static_cast<size_t>(i)];
  }

  Vec operator+(const Vec& o) const {
    DQMO_DCHECK(dims == o.dims);
    Vec r(dims);
    for (int i = 0; i < dims; ++i) r[i] = (*this)[i] + o[i];
    return r;
  }

  Vec operator-(const Vec& o) const {
    DQMO_DCHECK(dims == o.dims);
    Vec r(dims);
    for (int i = 0; i < dims; ++i) r[i] = (*this)[i] - o[i];
    return r;
  }

  Vec operator*(double s) const {
    Vec r(dims);
    for (int i = 0; i < dims; ++i) r[i] = (*this)[i] * s;
    return r;
  }

  double Dot(const Vec& o) const {
    DQMO_DCHECK(dims == o.dims);
    double sum = 0.0;
    for (int i = 0; i < dims; ++i) sum += (*this)[i] * o[i];
    return sum;
  }

  double NormSquared() const { return Dot(*this); }
  double Norm() const { return std::sqrt(NormSquared()); }

  double DistanceTo(const Vec& o) const { return (*this - o).Norm(); }

  friend bool operator==(const Vec& a, const Vec& b) {
    if (a.dims != b.dims) return false;
    for (int i = 0; i < a.dims; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  std::string ToString() const;
};

/// Linear interpolation between points: a + (b - a) * alpha.
inline Vec Lerp(const Vec& a, const Vec& b, double alpha) {
  return a + (b - a) * alpha;
}

}  // namespace dqmo

#endif  // DQMO_GEOM_VEC_H_
