#include "harness/experiment.h"

#include <chrono>
#include <cstdio>
#include <sys/stat.h>

#include "common/check.h"
#include "common/env.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "rtree/bulk_load.h"

namespace dqmo {
namespace {

/// FNV-1a over the raw bytes of trivially copyable values.
class ConfigHasher {
 public:
  template <typename T>
  void Add(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const unsigned char*>(&value);
    for (size_t i = 0; i < sizeof(T); ++i) {
      hash_ ^= bytes[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

uint64_t HashConfig(const IndexConfig& config) {
  ConfigHasher h;
  h.Add(config.data.dims);
  h.Add(config.data.num_objects);
  h.Add(config.data.space_size);
  h.Add(config.data.horizon);
  h.Add(config.data.mean_update_interval);
  h.Add(config.data.update_interval_stddev);
  h.Add(config.data.min_update_interval);
  h.Add(config.data.mean_speed);
  h.Add(config.data.speed_stddev);
  h.Add(config.data.seed);
  h.Add(config.data.sort_by_start_time);
  h.Add(config.tree.dims);
  h.Add(config.tree.fill_factor);
  h.Add(config.tree.split_policy);
  h.Add(config.bulk_load);
  return h.hash();
}

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

IndexConfig PaperIndexConfig() {
  IndexConfig config;
  // DataGeneratorOptions defaults already match Sect. 5.
  config.tree.dims = config.data.dims;
  config.tree.fill_factor = 0.5;
  config.bulk_load = GetEnvBool("DQMO_BULK_LOAD", false);
  config.cache_dir = GetEnvString("DQMO_CACHE_DIR", "dqmo_cache");
  return config;
}

int TrajectoriesFromEnv(int fallback) {
  if (GetEnvBool("DQMO_FULL", false)) {
    return static_cast<int>(GetEnvInt("DQMO_TRAJECTORIES", 1000));
  }
  return static_cast<int>(GetEnvInt("DQMO_TRAJECTORIES", fallback));
}

Result<std::unique_ptr<Workbench>> Workbench::Prepare(
    const IndexConfig& config) {
  auto bench = std::unique_ptr<Workbench>(new Workbench());
  bench->config_ = config;

  std::string cache_path;
  if (!config.cache_dir.empty()) {
    ::mkdir(config.cache_dir.c_str(), 0755);  // Best effort.
    cache_path = StrFormat("%s/index_%016llx.pgf", config.cache_dir.c_str(),
                           static_cast<unsigned long long>(
                               HashConfig(config)));
  }

  if (!cache_path.empty() && FileExists(cache_path)) {
    // A stale or incompatible cache (e.g. written by an older build) is
    // not fatal — fall through and rebuild.
    Status load = bench->file_.LoadFrom(cache_path);
    if (load.ok()) {
      auto opened = RTree::Open(&bench->file_);
      if (opened.ok()) {
        bench->tree_ = std::move(opened).value();
        bench->from_cache_ = true;
        DQMO_LOG(kInfo) << "Loaded cached index " << cache_path << ": "
                        << bench->Describe();
        return bench;
      }
      load = opened.status();
    }
    DQMO_LOG(kWarn) << "Ignoring stale index cache " << cache_path << ": "
                    << load.ToString();
    bench->file_ = PageFile();
  }

  DQMO_LOG(kInfo) << "Generating motion data ("
                  << config.data.num_objects << " objects, horizon "
                  << config.data.horizon << ")...";
  DQMO_ASSIGN_OR_RETURN(std::vector<MotionSegment> segments,
                        GenerateMotionData(config.data));
  DQMO_LOG(kInfo) << "Generated " << segments.size()
                  << " motion segments; building index ("
                  << (config.bulk_load ? "STR bulk load" : "insertion")
                  << ")...";
  const auto t_begin = std::chrono::steady_clock::now();
  if (config.bulk_load) {
    BulkLoadOptions bulk;
    bulk.tree = config.tree;
    DQMO_ASSIGN_OR_RETURN(
        bench->tree_, BulkLoad(&bench->file_, std::move(segments), bulk));
  } else {
    DQMO_ASSIGN_OR_RETURN(bench->tree_,
                          RTree::Create(&bench->file_, config.tree));
    for (const MotionSegment& m : segments) {
      DQMO_RETURN_IF_ERROR(bench->tree_->Insert(m));
    }
  }
  DQMO_RETURN_IF_ERROR(bench->tree_->Flush());
  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    t_begin)
          .count();
  DQMO_LOG(kInfo) << "Built index in " << FormatDouble(seconds, 1)
                  << "s: " << bench->Describe();

  if (!cache_path.empty()) {
    const Status save = bench->file_.SaveTo(cache_path);
    if (!save.ok()) {
      DQMO_LOG(kWarn) << "Could not cache index: " << save.ToString();
    }
  }
  bench->file_.ResetStats();
  return bench;
}

std::string Workbench::Describe() const {
  return StrFormat(
      "%llu segments, %zu nodes, height %d, fanout %d/%d, %zu pages%s",
      static_cast<unsigned long long>(tree_->num_segments()),
      tree_->num_nodes(), tree_->height(), tree_->internal_capacity(),
      tree_->leaf_capacity(), file_.num_pages(),
      from_cache_ ? " (cached)" : "");
}

void MethodCost::Accumulate(const QueryStats& delta) {
  io_total += static_cast<double>(delta.node_reads);
  io_leaf += static_cast<double>(delta.leaf_reads);
  cpu += static_cast<double>(delta.distance_computations);
  results += static_cast<double>(delta.objects_returned);
  pages_skipped += static_cast<double>(delta.pages_skipped);
}

void MethodCost::Finish(double denominator) {
  DQMO_CHECK(denominator > 0.0);
  io_total /= denominator;
  io_leaf /= denominator;
  cpu /= denominator;
  results /= denominator;
  pages_skipped /= denominator;
}

namespace {

/// Shared sweep skeleton: generates `num_trajectories` dynamic queries and
/// feeds each frame to the naive evaluator and to `dq_frame` (a callback
/// running the dynamic-query method). Frame 0 is the "first query"; frames
/// 1..n are "subsequent".
template <typename MakeDqState, typename DqFrame>
Result<SweepRow> RunSweepPoint(Workbench* bench, const SweepOptions& options,
                               MakeDqState make_dq_state, DqFrame dq_frame) {
  DQMO_CHECK(bench != nullptr);
  RTree* tree = bench->tree();
  Rng rng(options.seed);

  SweepRow row;
  row.overlap = options.query.overlap;
  row.window = options.query.window;
  int64_t first_count = 0;
  int64_t subsequent_count = 0;

  for (int traj = 0; traj < options.num_trajectories; ++traj) {
    Rng traj_rng = rng.Fork();
    DQMO_ASSIGN_OR_RETURN(DynamicQueryWorkload workload,
                          GenerateDynamicQuery(options.query, &traj_rng));

    auto frame_query = [&](int i) {
      if (options.open_ended_frames) {
        // Open-ended snapshot at the frame instant (Sect. 4.2): the window
        // at t_i, over all times >= t_i. At 0% overlap consecutive windows
        // are disjoint and discardability neither helps nor hurts, exactly
        // as the paper reports for Fig. 10.
        const double t = workload.frame_times[static_cast<size_t>(i)];
        return StBox(workload.trajectory.WindowAt(t), Interval(t, kInf));
      }
      return workload.Frame(i);
    };

    // Naive: every frame is an independent snapshot range query.
    {
      QueryStats stats;
      for (int i = 0; i < workload.num_frames(); ++i) {
        const QueryStats before = stats;
        DQMO_ASSIGN_OR_RETURN(auto ignored,
                              tree->RangeSearch(frame_query(i), &stats));
        (void)ignored;
        const QueryStats delta = stats - before;
        if (i == 0) {
          row.naive_first.Accumulate(delta);
        } else {
          row.naive_subsequent.Accumulate(delta);
        }
      }
    }

    // Dynamic query method.
    {
      DQMO_ASSIGN_OR_RETURN(auto state, make_dq_state(tree, workload));
      for (int i = 0; i < workload.num_frames(); ++i) {
        DQMO_ASSIGN_OR_RETURN(
            QueryStats delta,
            dq_frame(state.get(), workload, i, frame_query(i)));
        if (i == 0) {
          row.dq_first.Accumulate(delta);
        } else {
          row.dq_subsequent.Accumulate(delta);
        }
      }
    }

    first_count += 1;
    subsequent_count += workload.num_frames() - 1;
  }

  row.naive_first.Finish(static_cast<double>(first_count));
  row.naive_subsequent.Finish(static_cast<double>(subsequent_count));
  row.dq_first.Finish(static_cast<double>(first_count));
  row.dq_subsequent.Finish(static_cast<double>(subsequent_count));
  return row;
}

}  // namespace

Result<SweepRow> RunPdqPoint(Workbench* bench, const SweepOptions& options) {
  auto make_state = [](RTree* tree, const DynamicQueryWorkload& workload)
      -> Result<std::unique_ptr<PredictiveDynamicQuery>> {
    return PredictiveDynamicQuery::Make(tree, workload.trajectory);
  };
  auto frame = [](PredictiveDynamicQuery* pdq,
                  const DynamicQueryWorkload& workload, int i,
                  const StBox& /*frame_query*/) -> Result<QueryStats> {
    const QueryStats before = pdq->stats();
    DQMO_ASSIGN_OR_RETURN(
        auto results,
        pdq->Frame(workload.frame_times[static_cast<size_t>(i)],
                   workload.frame_times[static_cast<size_t>(i) + 1]));
    (void)results;
    return pdq->stats() - before;
  };
  return RunSweepPoint(bench, options, make_state, frame);
}

Result<SweepRow> RunNpdqPoint(Workbench* bench, const SweepOptions& options,
                              const NpdqOptions& npdq_options) {
  auto make_state = [&npdq_options](RTree* tree,
                                    const DynamicQueryWorkload& workload)
      -> Result<std::unique_ptr<NonPredictiveDynamicQuery>> {
    (void)workload;
    return std::make_unique<NonPredictiveDynamicQuery>(tree, npdq_options);
  };
  auto frame = [](NonPredictiveDynamicQuery* npdq,
                  const DynamicQueryWorkload& workload, int i,
                  const StBox& frame_query) -> Result<QueryStats> {
    (void)workload;
    (void)i;
    const QueryStats before = npdq->stats();
    DQMO_ASSIGN_OR_RETURN(auto results, npdq->Execute(frame_query));
    (void)results;
    return npdq->stats() - before;
  };
  return RunSweepPoint(bench, options, make_state, frame);
}

}  // namespace dqmo
