#include "harness/table.h"

#include <algorithm>
#include <cstdio>

#include "common/check.h"

namespace dqmo {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  DQMO_CHECK(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += "  ";
      line.append(widths[c] - row[c].size(), ' ');
      line += row[c];
    }
    return line;
  };
  std::string out = render_row(headers_);
  out += "\n";
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  out.append(total, '-');
  out += "\n";
  for (const auto& row : rows_) {
    out += render_row(row);
    out += "\n";
  }
  return out;
}

void Table::Print() const { std::fputs(ToString().c_str(), stdout); }

}  // namespace dqmo
