// Experiment harness shared by the per-figure benchmark binaries: index
// preparation (with an on-disk cache so the ~0.5M-segment index of Sect. 5
// is built once per configuration) and the naive/PDQ/NPDQ cost sweeps that
// produce the rows behind Figs. 6-13.
#ifndef DQMO_HARNESS_EXPERIMENT_H_
#define DQMO_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "query/npdq.h"
#include "query/pdq.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"
#include "workload/data_generator.h"
#include "workload/query_generator.h"

namespace dqmo {

/// Index configuration: the data workload plus how the tree is built.
struct IndexConfig {
  DataGeneratorOptions data;
  RTree::Options tree;
  /// false (default): build by repeated insertion, as the paper does.
  /// true: STR bulk load (used by the build ablation and for quick runs).
  bool bulk_load = false;
  /// Directory for cached index files; empty disables caching. A config
  /// hash keys the cache, so changing any option rebuilds.
  std::string cache_dir;
};

/// The paper's Sect. 5 configuration (5000 objects, 100x100 space, 100 time
/// units, 4 KiB pages, fill factor 0.5), with the cache directory taken
/// from $DQMO_CACHE_DIR (default "dqmo_cache") and bulk_load from
/// $DQMO_BULK_LOAD (default off).
IndexConfig PaperIndexConfig();

/// A prepared index: backing page file + opened tree.
class Workbench {
 public:
  /// Builds (or loads from cache) the index for `config`.
  static Result<std::unique_ptr<Workbench>> Prepare(const IndexConfig& config);

  RTree* tree() { return tree_.get(); }
  PageFile* file() { return &file_; }
  const IndexConfig& config() const { return config_; }

  /// One-line summary (segments, nodes, height, build source).
  std::string Describe() const;

 private:
  Workbench() = default;

  IndexConfig config_;
  PageFile file_;
  std::unique_ptr<RTree> tree_;
  bool from_cache_ = false;
};

/// Averaged per-query costs of one method at one sweep point.
struct MethodCost {
  double io_total = 0.0;  // Disk accesses per query.
  double io_leaf = 0.0;   // ... at the leaf level.
  double cpu = 0.0;       // Distance computations per query.
  double results = 0.0;   // Objects returned per query.
  /// Unreadable subtree roots skipped per query (non-zero only in the
  /// fault-tolerance ablation, which sweeps under kSkipSubtree).
  double pages_skipped = 0.0;

  void Accumulate(const QueryStats& delta);
  void Finish(double denominator);
};

/// One row of a Fig. 6/7/10/11-style sweep: first-query and
/// subsequent-query costs for the naive method and the dynamic-query
/// method, at one (overlap, window) point.
struct SweepRow {
  double overlap = 0.0;
  double window = 0.0;
  MethodCost naive_first;
  MethodCost naive_subsequent;
  MethodCost dq_first;
  MethodCost dq_subsequent;
};

/// Options shared by the sweep runners.
struct SweepOptions {
  QueryWorkloadOptions query;  // window/overlap set per point by the caller.
  int num_trajectories = 50;   // Paper: 1000 (set via $DQMO_TRAJECTORIES).
  uint64_t seed = 20020324;    // EDBT 2002 vintage.
  /// Open-ended snapshot semantics (Sect. 4.2, Fig. 5(a)): each snapshot
  /// query asks for motions in the window *now or in the future* —
  /// Q_i = spatial_i x [t_i, +inf) — so the client receives every motion
  /// once, when it first becomes relevant. This is the semantics under
  /// which NPDQ discardability prunes aggressively (both temporal
  /// conditions of Lemma 1 hold vacuously and pruning is purely spatial);
  /// with bounded frames the subtrees that could be pruned must resolve
  /// start times finer than one frame, which barely exists at paper scale.
  /// Used by the Fig. 10-13 NPDQ experiments.
  bool open_ended_frames = false;
};

/// Number of trajectories from the environment: $DQMO_TRAJECTORIES, or
/// 1000 when $DQMO_FULL is truthy, else `fallback`.
int TrajectoriesFromEnv(int fallback = 50);

/// Runs one sweep point comparing the naive method (independent snapshot
/// range queries) against PDQ (Sect. 4.1).
Result<SweepRow> RunPdqPoint(Workbench* bench, const SweepOptions& options);

/// Runs one sweep point comparing the naive method against NPDQ
/// (Sect. 4.2) with the given evaluation options.
Result<SweepRow> RunNpdqPoint(Workbench* bench, const SweepOptions& options,
                              const NpdqOptions& npdq_options = {});

}  // namespace dqmo

#endif  // DQMO_HARNESS_EXPERIMENT_H_
