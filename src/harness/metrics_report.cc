#include "harness/metrics_report.h"

#include <cstdio>

#include "common/metrics.h"
#include "common/string_util.h"
#include "harness/table.h"

namespace dqmo {
namespace {

std::string FormatCount(uint64_t v) {
  return StrFormat("%llu", static_cast<unsigned long long>(v));
}

}  // namespace

std::string MetricsSummaryTable(bool include_empty) {
  Table table({"metric", "kind", "count", "mean", "p50", "p95", "p99",
               "max"});
  for (const MetricsRegistry::Row& row : MetricsRegistry::Global().Rows()) {
    if (!include_empty && row.count == 0) continue;
    if (row.kind == "histogram") {
      table.AddRow({row.name, row.kind, FormatCount(row.hist.count),
                    StrFormat("%.0f", row.hist.mean()),
                    FormatCount(row.hist.Percentile(50)),
                    FormatCount(row.hist.Percentile(95)),
                    FormatCount(row.hist.Percentile(99)),
                    FormatCount(row.hist.max)});
    } else {
      table.AddRow({row.name, row.kind, FormatCount(row.count), "-", "-",
                    "-", "-", "-"});
    }
  }
  return table.ToString();
}

void PrintMetricsSummary() {
  if (!MetricsEnabled()) return;
  std::printf("\n== metrics summary ==\n%s",
              MetricsSummaryTable().c_str());
}

}  // namespace dqmo
