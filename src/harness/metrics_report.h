// End-of-run observability summary for the experiment harness and
// dqmo_tool: every registered metric rendered as one table row.
#ifndef DQMO_HARNESS_METRICS_REPORT_H_
#define DQMO_HARNESS_METRICS_REPORT_H_

#include <string>

namespace dqmo {

/// Renders the global MetricsRegistry as a fixed-width table: counters and
/// gauges as a single value, histograms with count/mean/p50/p95/p99/max.
/// Metrics with zero activity are omitted so quick runs stay readable;
/// pass `include_empty` to show everything.
std::string MetricsSummaryTable(bool include_empty = false);

/// Prints MetricsSummaryTable() to stdout under a header, unless metrics
/// are disabled (then prints nothing). The figure runners call this after
/// their sweeps so every benchmark run ends with the observability rollup.
void PrintMetricsSummary();

}  // namespace dqmo

#endif  // DQMO_HARNESS_METRICS_REPORT_H_
