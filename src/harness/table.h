// Fixed-width text tables for benchmark output (the "rows behind every
// figure" of the paper's evaluation).
#ifndef DQMO_HARNESS_TABLE_H_
#define DQMO_HARNESS_TABLE_H_

#include <string>
#include <vector>

namespace dqmo {

/// Column-aligned plain-text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Renders with right-aligned cells and a header separator.
  std::string ToString() const;

  /// Prints to stdout.
  void Print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dqmo

#endif  // DQMO_HARNESS_TABLE_H_
