#include "storage/async_io.h"

#include <errno.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <mutex>
#include <thread>

#include "common/env.h"

#if __has_include(<linux/io_uring.h>)
#include <linux/io_uring.h>
#include <sys/mman.h>
#include <sys/syscall.h>
#include <sys/uio.h>
#define DQMO_HAS_IO_URING 1
#else
#define DQMO_HAS_IO_URING 0
#endif

namespace dqmo {

const char* IoBackendName(IoBackend backend) {
  switch (backend) {
    case IoBackend::kMemory:
      return "memory";
    case IoBackend::kPread:
      return "pread";
    case IoBackend::kUring:
      return "uring";
  }
  return "unknown";
}

IoBackend IoBackendFromEnv() {
  const std::string v = GetEnvString("DQMO_IO_BACKEND", "memory");
  if (v == "pread") return IoBackend::kPread;
  if (v == "uring") return IoBackend::kUring;
  return IoBackend::kMemory;
}

#if DQMO_HAS_IO_URING

namespace {

int SysIoUringSetup(unsigned entries, struct io_uring_params* p) {
  return static_cast<int>(::syscall(__NR_io_uring_setup, entries, p));
}

int SysIoUringEnter(int ring_fd, unsigned to_submit, unsigned min_complete,
                    unsigned flags) {
  return static_cast<int>(::syscall(__NR_io_uring_enter, ring_fd, to_submit,
                                    min_complete, flags, nullptr, 0));
}

}  // namespace

bool UringAvailable() {
  // One real probe, cached: containers commonly deny io_uring via seccomp
  // (EPERM) and old kernels via ENOSYS; only an actual setup call tells
  // the truth.
  static const bool available = [] {
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    const int fd = SysIoUringSetup(4, &params);
    if (fd < 0) return false;
    ::close(fd);
    return true;
  }();
  return available;
}

#else   // !DQMO_HAS_IO_URING

bool UringAvailable() { return false; }

#endif  // DQMO_HAS_IO_URING

namespace {

// ---------------------------------------------------------------------------
// ThreadReadQueue: worker threads issuing pread(2).

class ThreadReadQueue : public AsyncReadQueue {
 public:
  ThreadReadQueue(int fd, size_t depth, int num_threads,
                  uint64_t sim_read_delay_us = 0)
      : fd_(fd),
        depth_(depth == 0 ? 1 : depth),
        sim_read_delay_us_(sim_read_delay_us) {
    if (num_threads < 1) num_threads = 1;
    workers_.reserve(static_cast<size_t>(num_threads));
    for (int i = 0; i < num_threads; ++i) {
      workers_.emplace_back([this] { WorkerLoop(); });
    }
  }

  ~ThreadReadQueue() override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : workers_) t.join();
  }

  Status Submit(const AsyncRead& read) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (inflight_ >= depth_) {
        return Status::ResourceExhausted("async read queue full");
      }
      pending_.push_back(read);
      ++inflight_;
    }
    work_cv_.notify_one();
    return Status::OK();
  }

  size_t Reap(std::vector<AsyncCompletion>* out, bool block) override {
    std::unique_lock<std::mutex> lock(mu_);
    if (block) {
      done_cv_.wait(lock, [this] {
        return !completions_.empty() || inflight_ == completions_.size();
      });
    }
    const size_t n = completions_.size();
    for (AsyncCompletion& c : completions_) out->push_back(c);
    completions_.clear();
    inflight_ -= n;
    return n;
  }

  size_t inflight() const override {
    std::lock_guard<std::mutex> lock(mu_);
    return inflight_;
  }

  const char* name() const override { return "thread-pread"; }

 private:
  void WorkerLoop() {
    for (;;) {
      AsyncRead read;
      {
        std::unique_lock<std::mutex> lock(mu_);
        work_cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
        if (pending_.empty()) return;  // stop_ and drained.
        read = pending_.front();
        pending_.pop_front();
      }
      const ssize_t n = ::pread(fd_, read.buf, read.len,
                                static_cast<off_t>(read.offset));
      if (sim_read_delay_us_ > 0) {
        // Slow-device model: the completion arrives late, in this worker,
        // so the caller's concurrent CPU work genuinely overlaps it.
        std::this_thread::sleep_for(
            std::chrono::microseconds(sim_read_delay_us_));
      }
      AsyncCompletion done;
      done.tag = read.tag;
      done.result = n < 0 ? -errno : static_cast<int32_t>(n);
      {
        std::lock_guard<std::mutex> lock(mu_);
        completions_.push_back(done);
      }
      done_cv_.notify_all();
    }
  }

  const int fd_;
  const size_t depth_;
  const uint64_t sim_read_delay_us_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<AsyncRead> pending_;
  std::vector<AsyncCompletion> completions_;
  /// Submitted but not yet reaped (pending + in a worker + completed).
  size_t inflight_ = 0;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

#if DQMO_HAS_IO_URING

// ---------------------------------------------------------------------------
// UringReadQueue: raw-syscall io_uring (no liburing). IORING_OP_READV is
// used rather than IORING_OP_READ because READV is in every io_uring kernel
// (5.1+) while READ arrived in 5.6.

class UringReadQueue : public AsyncReadQueue {
 public:
  /// Factory: returns null when ring setup fails (caller falls back to the
  /// thread queue), so a constructed UringReadQueue is always usable.
  static std::unique_ptr<UringReadQueue> Create(int fd, size_t depth) {
    auto q = std::unique_ptr<UringReadQueue>(new UringReadQueue(fd));
    if (!q->Init(depth)) return nullptr;
    return q;
  }

  ~UringReadQueue() override {
    // Drain: buffers belong to the caller; never let the kernel write into
    // them after this object (and possibly the buffers) are gone.
    std::vector<AsyncCompletion> sink;
    while (inflight() > 0) {
      if (Reap(&sink, /*block=*/true) == 0) break;
    }
    if (sq_ring_ != MAP_FAILED && sq_ring_ != nullptr) {
      ::munmap(sq_ring_, sq_ring_bytes_);
    }
    if (!single_mmap_ && cq_ring_ != MAP_FAILED && cq_ring_ != nullptr) {
      ::munmap(cq_ring_, cq_ring_bytes_);
    }
    if (sqes_ != MAP_FAILED && sqes_ != nullptr) {
      ::munmap(sqes_, sqe_bytes_);
    }
    if (ring_fd_ >= 0) ::close(ring_fd_);
  }

  Status Submit(const AsyncRead& read) override {
    std::lock_guard<std::mutex> lock(mu_);
    if (inflight_.load(std::memory_order_relaxed) >= sq_entries_) {
      return Status::ResourceExhausted("io_uring submission queue full");
    }
    const uint32_t tail = *sq_tail_;  // We are the only tail writer.
    const uint32_t index = tail & *sq_mask_;
    struct io_uring_sqe* sqe = &sqes_[index];
    std::memset(sqe, 0, sizeof(*sqe));
    iovecs_[index].iov_base = read.buf;
    iovecs_[index].iov_len = read.len;
    sqe->opcode = IORING_OP_READV;
    sqe->fd = fd_;
    sqe->addr = reinterpret_cast<uint64_t>(&iovecs_[index]);
    sqe->len = 1;
    sqe->off = read.offset;
    sqe->user_data = read.tag;
    sq_array_[index] = index;
    std::atomic_ref<uint32_t>(*sq_tail_).store(tail + 1,
                                               std::memory_order_release);
    inflight_.fetch_add(1, std::memory_order_relaxed);
    const int n = SysIoUringEnter(ring_fd_, 1, 0, 0);
    if (n < 0) {
      inflight_.fetch_sub(1, std::memory_order_relaxed);
      return Status::IOError("io_uring_enter submit failed");
    }
    return Status::OK();
  }

  size_t Reap(std::vector<AsyncCompletion>* out, bool block) override {
    std::lock_guard<std::mutex> lock(mu_);
    size_t reaped = DrainCq(out);
    while (reaped == 0 && block &&
           inflight_.load(std::memory_order_relaxed) > 0) {
      if (SysIoUringEnter(ring_fd_, 0, 1, IORING_ENTER_GETEVENTS) < 0 &&
          errno != EINTR) {
        break;
      }
      reaped = DrainCq(out);
    }
    return reaped;
  }

  size_t inflight() const override {
    return inflight_.load(std::memory_order_relaxed);
  }

  const char* name() const override { return "io_uring"; }

 private:
  explicit UringReadQueue(int fd) : fd_(fd) {}

  bool Init(size_t depth) {
    if (depth == 0) depth = 1;
    struct io_uring_params params;
    std::memset(&params, 0, sizeof(params));
    ring_fd_ = SysIoUringSetup(static_cast<unsigned>(depth), &params);
    if (ring_fd_ < 0) return false;
    sq_entries_ = params.sq_entries;
    single_mmap_ = (params.features & IORING_FEAT_SINGLE_MMAP) != 0;
    sq_ring_bytes_ =
        params.sq_off.array + params.sq_entries * sizeof(uint32_t);
    cq_ring_bytes_ = params.cq_off.cqes +
                     params.cq_entries * sizeof(struct io_uring_cqe);
    if (single_mmap_ && cq_ring_bytes_ > sq_ring_bytes_) {
      sq_ring_bytes_ = cq_ring_bytes_;
    }
    sq_ring_ = ::mmap(nullptr, sq_ring_bytes_, PROT_READ | PROT_WRITE,
                      MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQ_RING);
    if (sq_ring_ == MAP_FAILED) return false;
    cq_ring_ = single_mmap_
                   ? sq_ring_
                   : ::mmap(nullptr, cq_ring_bytes_, PROT_READ | PROT_WRITE,
                            MAP_SHARED | MAP_POPULATE, ring_fd_,
                            IORING_OFF_CQ_RING);
    if (cq_ring_ == MAP_FAILED) return false;
    sqe_bytes_ = params.sq_entries * sizeof(struct io_uring_sqe);
    sqes_ = static_cast<struct io_uring_sqe*>(
        ::mmap(nullptr, sqe_bytes_, PROT_READ | PROT_WRITE,
               MAP_SHARED | MAP_POPULATE, ring_fd_, IORING_OFF_SQES));
    if (sqes_ == MAP_FAILED) return false;

    auto* sq = static_cast<uint8_t*>(sq_ring_);
    sq_tail_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.tail);
    sq_mask_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.ring_mask);
    sq_array_ = reinterpret_cast<uint32_t*>(sq + params.sq_off.array);
    auto* cq = static_cast<uint8_t*>(cq_ring_);
    cq_head_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.head);
    cq_tail_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.tail);
    cq_mask_ = reinterpret_cast<uint32_t*>(cq + params.cq_off.ring_mask);
    cqes_ = reinterpret_cast<struct io_uring_cqe*>(cq + params.cq_off.cqes);
    iovecs_.resize(sq_entries_);
    return true;
  }

  size_t DrainCq(std::vector<AsyncCompletion>* out) {
    size_t n = 0;
    uint32_t head = *cq_head_;  // We are the only head writer.
    const uint32_t tail =
        std::atomic_ref<uint32_t>(*cq_tail_).load(std::memory_order_acquire);
    while (head != tail) {
      const struct io_uring_cqe& cqe = cqes_[head & *cq_mask_];
      out->push_back(AsyncCompletion{cqe.user_data, cqe.res});
      ++head;
      ++n;
    }
    std::atomic_ref<uint32_t>(*cq_head_).store(head,
                                               std::memory_order_release);
    inflight_.fetch_sub(n, std::memory_order_relaxed);
    return n;
  }

  const int fd_;
  int ring_fd_ = -1;
  uint32_t sq_entries_ = 0;
  bool single_mmap_ = false;
  size_t sq_ring_bytes_ = 0;
  size_t cq_ring_bytes_ = 0;
  size_t sqe_bytes_ = 0;
  void* sq_ring_ = nullptr;
  void* cq_ring_ = nullptr;
  struct io_uring_sqe* sqes_ = nullptr;
  uint32_t* sq_tail_ = nullptr;
  uint32_t* sq_mask_ = nullptr;
  uint32_t* sq_array_ = nullptr;
  uint32_t* cq_head_ = nullptr;
  uint32_t* cq_tail_ = nullptr;
  uint32_t* cq_mask_ = nullptr;
  struct io_uring_cqe* cqes_ = nullptr;
  /// One registered iovec slot per sqe slot; slot i is rewritten only when
  /// sqe slot i is reused, which the ring's own depth bound serializes.
  std::vector<struct iovec> iovecs_;
  std::mutex mu_;
  std::atomic<size_t> inflight_{0};
};

#endif  // DQMO_HAS_IO_URING

}  // namespace

std::unique_ptr<AsyncReadQueue> CreateAsyncReadQueue(
    IoBackend backend, int fd, size_t depth, uint64_t sim_read_delay_us) {
#if DQMO_HAS_IO_URING
  if (backend == IoBackend::kUring && sim_read_delay_us == 0 &&
      UringAvailable()) {
    auto uring = UringReadQueue::Create(fd, depth);
    if (uring != nullptr) return uring;
  }
#endif
  (void)backend;
  // kPread, kUring on a host that denies io_uring, or any backend under a
  // simulated slow device: worker threads give the same overlap through
  // plain pread (and a thread to serve the simulated delay in). Workers
  // scale with depth — idle ones just sleep — so up to `depth` reads (or
  // simulated delays) really are in flight at once, like a device queue.
  const int workers =
      static_cast<int>(depth < 2 ? 2 : (depth > 8 ? 8 : depth));
  return std::make_unique<ThreadReadQueue>(fd, depth, workers,
                                           sim_read_delay_us);
}

}  // namespace dqmo
