// Write-ahead log for motion insertions: the durability substrate that
// turns the in-memory index into a restartable service.
//
// The paper's update management (Sect. 5) assumes motion insertions stay
// visible to running PDQ/NPDQ sessions; a server must additionally keep
// them visible across a crash. Pages live in memory only, so the durable
// state is exactly (last checkpoint file, WAL tail): every acknowledged
// insert is a CRC32C-framed redo record fsynced to the log, a checkpoint
// atomically replaces the page-file image (write-temp + fsync + rename,
// storage/page_file.h) and resets the log, and recovery replays the tail
// whose LSNs exceed the checkpoint's (ARIES-style redo; see
// server/durability.h for the orchestration and DESIGN.md "Durability &
// recovery" for the protocol).
//
// On-disk format (single-host byte order, like the page file):
//
//   header   : u64 magic "DQMOWAL1" | u32 version (1) | u32 reserved
//   record   : u32 crc | u32 payload_len | u64 lsn | u8 type | payload
//
// The CRC32C covers everything after the crc field (length, LSN, type,
// payload), so a damaged length field cannot silently re-frame the log.
// LSNs start at 1 and increase by exactly 1 per record, surviving log
// resets (a fresh post-checkpoint log continues the sequence).
//
// Torn-tail contract (the crash cases tests/wal_test.cc enumerates):
//   - A record cut off by the end of the file is a torn write: the scan
//     succeeds, delivers every record before it, and reports the dropped
//     byte count. Appending to such a log first truncates the torn tail.
//   - A damaged record *followed by a well-formed record* is mid-log
//     corruption: the scan fails with Status::Corruption carrying the
//     offset — replaying past a hole would silently drop acknowledged
//     inserts. (The final record's at-rest corruption is indistinguishable
//     from a torn write and is truncated; only unacknowledged data can be
//     lost that way.)
#ifndef DQMO_STORAGE_WAL_H_
#define DQMO_STORAGE_WAL_H_

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "motion/motion_segment.h"
#include "storage/io_stats.h"

namespace dqmo {

/// What one WAL record describes.
enum class WalRecordType : uint8_t {
  kInsert = 1,      // One motion insertion (redo record).
  kCheckpoint = 2,  // Marker: all LSNs <= checkpoint_lsn are checkpointed.
};

/// One decoded WAL record.
struct WalRecord {
  uint64_t lsn = 0;
  WalRecordType type = WalRecordType::kInsert;
  /// kInsert: the stored (float32-quantized) motion segment, so replaying
  /// through RTree::Insert reproduces the index bit-for-bit.
  MotionSegment motion;
  /// kCheckpoint: every record with lsn <= checkpoint_lsn is contained in
  /// the checkpoint image this marker follows.
  uint64_t checkpoint_lsn = 0;
  /// kCheckpoint: segment count of the checkpointed tree (for walinfo).
  uint64_t checkpoint_segments = 0;
};

/// Result of scanning a WAL file.
struct WalScan {
  std::vector<WalRecord> records;
  /// LSN of the last good record (0 when the log holds none).
  uint64_t last_lsn = 0;
  /// Bytes of the good prefix: header plus every well-formed record.
  uint64_t good_bytes = 0;
  /// Trailing bytes dropped as a torn write (0 when the tail is clean).
  uint64_t torn_bytes = 0;
  bool torn_tail = false;
};

/// Scans the log at `path` front to back. A missing or shorter-than-header
/// file yields an empty scan (a crash can interrupt log creation; an empty
/// log carries no acknowledged data). A torn tail is tolerated per the
/// contract above; mid-log corruption, a foreign magic, or an unsupported
/// version fail with a typed Status.
Result<WalScan> ScanWal(const std::string& path);

/// Summary counters over a log, computed record-at-a-time without ever
/// materializing the record list or the file — O(max record) memory, the
/// backing for `dqmo_tool walinfo --backend=pread` on logs larger than
/// RAM. Validation matches ScanWal: same torn-tail tolerance, same
/// mid-log-corruption rejection (the look-ahead that discriminates the two
/// reads the remainder after a bad frame, so only a damaged log pays more
/// than O(1)).
struct WalScanStats {
  uint64_t records = 0;
  uint64_t inserts = 0;
  uint64_t checkpoints = 0;
  uint64_t first_lsn = 0;  ///< LSN of the first record (0: empty log).
  uint64_t last_lsn = 0;
  uint64_t last_ckpt_lsn = 0;
  uint64_t last_ckpt_segments = 0;
  uint64_t good_bytes = 0;
  uint64_t torn_bytes = 0;
  bool torn_tail = false;
};
Result<WalScanStats> ScanWalStreaming(const std::string& path);

/// Appender with group commit. Append* buffers records in memory and
/// assigns LSNs; Sync() writes the batch and fsyncs, after which every
/// buffered record is durable — the moment an insert may be acknowledged.
/// Appends and syncs are counted in IoStats::{wal_appends, wal_syncs},
/// never in physical page I/O, so the paper's disk-access metric stays
/// comparable across benches.
///
/// Not thread-safe: the concurrent engine appends only under the exclusive
/// side of the TreeGate, whose write guard also drains the batch with
/// Sync() before readers resume (server/executor.h).
class WalWriter {
 public:
  struct Options {
    /// fsync(2) on every Sync. Disable only to measure the fsync cost
    /// (bench/abl_recovery); an unsynced "durable" log is a contradiction.
    bool fsync = true;
    /// Floor for the first assigned LSN. Recovery passes the checkpoint's
    /// applied LSN + 1 so a fresh post-reset log continues the sequence
    /// instead of restarting at 1 (which would make new inserts look
    /// already-checkpointed to the replay filter). The scanned log's own
    /// last LSN + 1 wins when larger.
    uint64_t min_next_lsn = 1;
  };

  WalWriter() = default;
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Opens `path` for appending, creating it (header only) if absent. An
  /// existing log is scanned first: a torn tail is truncated away before
  /// the first append lands; mid-log corruption fails the open. `stats`
  /// (may be null) receives wal_appends/wal_syncs counts.
  Status Open(const std::string& path, IoStats* stats,
              const Options& options);
  Status Open(const std::string& path, IoStats* stats = nullptr) {
    return Open(path, stats, Options{});
  }

  /// Closes the file (without syncing: unsynced appends were never
  /// promised durable). Open() may be called again.
  void Close();

  bool is_open() const { return file_ != nullptr; }
  const std::string& path() const { return path_; }

  /// Buffers a redo record for `m` (pass the stored, quantized form) and
  /// returns its LSN. Not durable until Sync().
  Result<uint64_t> AppendInsert(const MotionSegment& m);

  /// Buffers a checkpoint marker and returns its LSN.
  Result<uint64_t> AppendCheckpoint(uint64_t checkpoint_lsn,
                                    uint64_t checkpoint_segments);

  /// Writes every buffered record and fsyncs. On return all previously
  /// appended records are durable (synced_lsn() == last assigned LSN).
  /// No-op when nothing is pending. Crash points: kWalBeforeSync fires
  /// before any byte of the batch reaches the file (the whole batch is
  /// lost), kWalTornWrite after roughly half the batch's bytes (a torn
  /// record for recovery to truncate), kWalAfterSync after the fsync.
  Status Sync();

  /// Replaces the log with a fresh empty one (write temp header + fsync +
  /// rename), dropping any unsynced batch. The LSN sequence continues —
  /// post-checkpoint logs never reuse LSNs, so a stale checkpoint image
  /// can always tell which records it already contains.
  Status Reset();

  /// LSN the next Append* will assign.
  uint64_t next_lsn() const { return next_lsn_; }
  /// Highest LSN guaranteed durable (0 before the first Sync of a fresh
  /// log).
  uint64_t synced_lsn() const { return synced_lsn_; }
  /// Records appended but not yet synced.
  size_t pending_records() const { return pending_records_; }

 private:
  Status WriteRaw(const uint8_t* data, size_t n);
  Status FlushAndMaybeFsync();

  std::FILE* file_ = nullptr;
  std::string path_;
  Options options_;
  IoStats* stats_ = nullptr;
  std::vector<uint8_t> batch_;  // Encoded records awaiting Sync.
  size_t pending_records_ = 0;
  uint64_t next_lsn_ = 1;
  uint64_t synced_lsn_ = 0;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_WAL_H_
