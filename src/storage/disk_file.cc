#include "storage/disk_file.h"

#include <errno.h>
#include <fcntl.h>
#include <stdlib.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <thread>

#include "common/check.h"
#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "storage/fault.h"
#include "storage/image_format.h"

namespace dqmo {
namespace {

struct DiskMetrics {
  Counter* reads;
  Counter* writes;
  Histogram* read_ns;

  static DiskMetrics& Get() {
    static DiskMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return DiskMetrics{
          r.GetCounter("dqmo_disk_reads_total",
                       "Physical pread page reads on the disk backend"),
          r.GetCounter("dqmo_disk_writes_total",
                       "Physical pwrite page writes on the disk backend"),
          r.GetHistogram("dqmo_disk_read_ns",
                         "DiskPageFile synchronous page read latency"),
      };
    }();
    return m;
  }
};

/// Synchronous reads slower than this land in the flight recorder as
/// kSlowRead events (microseconds; DQMO_SLOW_READ_US, default 1000).
uint64_t SlowReadThresholdUs() {
  static const uint64_t us = [] {
    const int64_t v = GetEnvInt("DQMO_SLOW_READ_US", 1000);
    return v <= 0 ? UINT64_MAX : static_cast<uint64_t>(v);
  }();
  return us;
}

inline uint8_t LoadFlag(const std::vector<uint8_t>& flags, PageId id) {
  return std::atomic_ref<uint8_t>(const_cast<uint8_t&>(flags[id]))
      .load(std::memory_order_acquire);
}

inline void StoreFlag(std::vector<uint8_t>& flags, PageId id, uint8_t v) {
  std::atomic_ref<uint8_t>(flags[id]).store(v, std::memory_order_release);
}

Status FullPread(int fd, uint8_t* buf, size_t len, uint64_t offset,
                 const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pread(fd, buf + done, len - done,
                              static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("pread %s at offset %llu failed",
                                       path.c_str(),
                                       (unsigned long long)(offset + done)));
    }
    if (n == 0) {
      return Status::IOError(StrFormat(
          "pread %s at offset %llu hit EOF (%zu of %zu bytes)", path.c_str(),
          (unsigned long long)(offset + done), done, len));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status FullPwrite(int fd, const uint8_t* buf, size_t len, uint64_t offset,
                  const std::string& path) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n = ::pwrite(fd, buf + done, len - done,
                               static_cast<off_t>(offset + done));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(StrFormat("pwrite %s at offset %llu failed",
                                       path.c_str(),
                                       (unsigned long long)(offset + done)));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

/// open(2) for the store's file, trying O_DIRECT when asked and degrading
/// (with the flag reported back) when the filesystem refuses it.
int OpenStoreFd(const std::string& path, int base_flags, bool* o_direct) {
  if (*o_direct) {
#ifdef O_DIRECT
    const int fd = ::open(path.c_str(), base_flags | O_DIRECT, 0644);
    if (fd >= 0) return fd;
#endif
    *o_direct = false;  // Refused (or not a Linux build): plain buffered IO.
  }
  return ::open(path.c_str(), base_flags, 0644);
}

}  // namespace

AlignedPageBuf::AlignedPageBuf() : data_(nullptr) {
  void* p = nullptr;
  if (::posix_memalign(&p, kPageSize, kPageSize) != 0) {
    DQMO_CHECK(false && "posix_memalign failed");
  }
  data_ = static_cast<uint8_t*>(p);
  std::memset(data_, 0, kPageSize);
}

AlignedPageBuf::~AlignedPageBuf() { ::free(data_); }

AlignedPageBuf& AlignedPageBuf::operator=(AlignedPageBuf&& other) noexcept {
  if (this != &other) {
    ::free(data_);
    data_ = other.data_;
    other.data_ = nullptr;
  }
  return *this;
}

DiskPageFile::~DiskPageFile() {
  if (fd_ >= 0) ::close(fd_);
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Create(
    const std::string& path, const Options& options) {
  auto file = std::unique_ptr<DiskPageFile>(new DiskPageFile());
  file->path_ = path;
  file->backend_ = options.backend == IoBackend::kMemory ? IoBackend::kPread
                                                         : options.backend;
  file->o_direct_ = options.o_direct;
  file->dirty_frame_budget_ = options.dirty_frame_budget;
  file->sim_read_delay_us_ = options.sim_read_delay_us;
  file->version_ = kPgfVersionAligned;
  file->data_offset_ = PgfDataOffset(kPgfVersionAligned);
  file->fd_ = OpenStoreFd(path, O_RDWR | O_CREAT | O_TRUNC, &file->o_direct_);
  if (file->fd_ < 0) {
    return Status::IOError("cannot create " + path);
  }
  DQMO_RETURN_IF_ERROR(file->WriteHeader());
  return file;
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::Open(
    const std::string& path, const Options& options) {
  // Stream-verify the image before trusting any page: the shared loader
  // checks the header against the file's actual size and every checksum
  // with O(1) memory, so a multi-GiB image never has to be resident.
  StreamPgfOptions stream;
  stream.verify_checksums = true;
  auto streamed = StreamPgfPages(path, stream, nullptr);
  if (!streamed.ok()) return streamed.status();
  const PgfHeader header = streamed.value().header;
  if (header.version == kPgfVersionLegacy) {
    return Status::NotSupported(
        path + ": legacy (v1) images have no checksums; load them through "
               "PageFile and re-save to upgrade");
  }
  auto file = std::unique_ptr<DiskPageFile>(new DiskPageFile());
  file->path_ = path;
  file->backend_ = options.backend == IoBackend::kMemory ? IoBackend::kPread
                                                         : options.backend;
  // v2 images put page 0 at byte 24: every page offset is misaligned, so
  // O_DIRECT (which requires block-aligned offsets) is impossible.
  file->o_direct_ =
      options.o_direct && header.version == kPgfVersionAligned;
  file->dirty_frame_budget_ = options.dirty_frame_budget;
  file->sim_read_delay_us_ = options.sim_read_delay_us;
  file->version_ = header.version;
  file->data_offset_ = PgfDataOffset(header.version);
  file->num_pages_ = header.num_pages;
  file->verified_.assign(header.num_pages, 1);  // Verified by the stream.
  file->fd_ = OpenStoreFd(path, O_RDWR, &file->o_direct_);
  if (file->fd_ < 0) {
    return Status::IOError("cannot open " + path + " for read-write");
  }
  return file;
}

Result<std::unique_ptr<DiskPageFile>> DiskPageFile::CreateFromImage(
    const std::string& live_path, const std::string& image_path,
    const Options& options) {
  DQMO_ASSIGN_OR_RETURN(auto file, Create(live_path, options));
  DQMO_RETURN_IF_ERROR(file->ReloadFromImage(image_path));
  return file;
}

Status DiskPageFile::ReloadFromImage(const std::string& image_path) {
  // The live file is a disposable working copy: truncate, restream from
  // the durable image (verifying page-at-a-time), rewrite the header.
  // The object's address — held by tree, pool, and gate — never changes.
  frames_.clear();
  frame_fifo_.clear();
  dirty_pages_.clear();
  if (::ftruncate(fd_, static_cast<off_t>(data_offset_)) != 0) {
    return Status::IOError("cannot truncate " + path_);
  }
  AlignedPageBuf copy;
  StreamPgfOptions stream;
  stream.verify_checksums = true;
  auto streamed = StreamPgfPages(
      image_path, stream, [&](uint64_t id, const uint8_t* page) {
        std::memcpy(copy.data(), page, kPageSize);
        return FullPwrite(fd_, copy.data(), kPageSize,
                          PageOffset(static_cast<PageId>(id)), path_);
      });
  if (!streamed.ok()) return streamed.status();
  num_pages_ = streamed.value().header.num_pages;
  verified_.assign(num_pages_, 1);
  DQMO_RETURN_IF_ERROR(WriteHeader());
  if (::fsync(fd_) != 0) return Status::IOError("fsync failed on " + path_);
  stats_.Reset();
  return Status::OK();
}

Status DiskPageFile::CheckId(PageId id) const {
  if (id >= num_pages_) {
    return Status::OutOfRange(StrFormat(
        "page %u out of range (file has %zu pages)", id, num_pages_));
  }
  return Status::OK();
}

Status DiskPageFile::WriteHeader() {
  PgfHeader header{kPgfMagic, version_, 0, num_pages_};
  if (version_ == kPgfVersionAligned) {
    AlignedPageBuf block;  // Zero-padded to the full aligned header block.
    std::memcpy(block.data(), &header, sizeof(header));
    return FullPwrite(fd_, block.data(), kPageSize, 0, path_);
  }
  return FullPwrite(fd_, reinterpret_cast<const uint8_t*>(&header),
                    sizeof(header), 0, path_);
}

Status DiskPageFile::RawRead(PageId id, uint8_t* buf) const {
  return FullPread(fd_, buf, kPageSize, PageOffset(id), path_);
}

Status DiskPageFile::RawWrite(PageId id, const uint8_t* buf) const {
  return FullPwrite(fd_, buf, kPageSize, PageOffset(id), path_);
}

uint8_t* DiskPageFile::ThreadScratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  // Node-based map: the buffer's address is stable across rehashes, so the
  // pointer handed to a reader survives other threads' first reads.
  return scratch_[std::this_thread::get_id()].data();
}

bool DiskPageFile::HasDirtyFrame(PageId id) const {
  return frames_.count(id) != 0;
}

bool DiskPageFile::PageVerified(PageId id) const {
  return LoadFlag(verified_, id) != 0;
}

void DiskPageFile::MarkPageVerified(PageId id) {
  StoreFlag(verified_, id, 1);
}

PageId DiskPageFile::Allocate() {
  const PageId id = static_cast<PageId>(num_pages_++);
  verified_.push_back(0);
  Frame& frame = frames_[id];  // Fresh zeroed aligned buffer.
  frame.sealed = false;
  frame_fifo_.push_back(id);
  dirty_pages_.push_back(id);
  // Budget eviction may flush older frames to disk; an error there would
  // have nowhere to go from Allocate's signature, but FlushFrame failures
  // surface again at SealAllDirty/Publish, which do return Status.
  (void)EvictFramesOverBudget(id);
  return id;
}

Result<PageReader::ReadResult> DiskPageFile::Read(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  // Identical accounting to the in-memory backend: one physical read per
  // Read call, dirty-frame hits included — so node-level I/O counts match
  // across backends byte-for-byte.
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  DiskMetrics::Get().reads->Add();
  uint8_t* scratch = ThreadScratch();
  auto frame_it = frames_.find(id);
  if (frame_it != frames_.end()) {
    Frame& frame = frame_it->second;
    if (!std::atomic_ref<bool>(frame.sealed)
             .load(std::memory_order_acquire)) {
      // Serialize sealing like PageFile: one reader recomputes the
      // trailer, the rest see the sealed flag (release/acquire on the
      // flag orders the trailer bytes).
      std::lock_guard<std::mutex> lock(scratch_mu_);
      if (!frame.sealed) {
        SealPage(frame.buf.data());
        std::atomic_ref<bool>(frame.sealed)
            .store(true, std::memory_order_release);
      }
    }
    std::memcpy(scratch, frame.buf.data(), kPageSize);
    StoreFlag(verified_, id, 1);  // Freshly sealed: consistent.
    return ReadResult{scratch, /*physical=*/true};
  }
  {
    const uint64_t tick = TickNs();
    ScopedLatencyTimer timer(DiskMetrics::Get().read_ns);
    DQMO_RETURN_IF_ERROR(RawRead(id, scratch));
    if (sim_read_delay_us_ > 0) {
      // Slow-device model (Options::sim_read_delay_us): the synchronous
      // path pays the full latency in the caller, the async path pays it
      // in a queue worker — the asymmetry prefetch exists to exploit.
      std::this_thread::sleep_for(
          std::chrono::microseconds(sim_read_delay_us_));
    }
    if (tick != 0) {
      const uint64_t elapsed_us = (NowNs() - tick) / 1000;
      if (elapsed_us >= SlowReadThresholdUs()) {
        FlightRecorder::Record(FlightEventKind::kSlowRead, -1, elapsed_us);
      }
    }
  }
  if (verify_on_read_ && LoadFlag(verified_, id) == 0) {
    if (!PageChecksumOk(scratch)) {
      ++stats_.checksum_failures;
      return Status::Corruption(StrFormat(
          "page %u checksum mismatch (stored %08x, computed %08x)", id,
          StoredPageChecksum(scratch), ComputePageChecksum(scratch)));
    }
    StoreFlag(verified_, id, 1);
  }
  return ReadResult{scratch, /*physical=*/true};
}

Status DiskPageFile::Write(PageId id, const uint8_t* data) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  // Write-through: seal and persist immediately, superseding any frame.
  AlignedPageBuf copy;
  std::memcpy(copy.data(), data, kPageSize);
  SealPage(copy.data());
  DQMO_RETURN_IF_ERROR(RawWrite(id, copy.data()));
  frames_.erase(id);  // Stale fifo entries are skipped on pop.
  StoreFlag(verified_, id, 1);
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  DiskMetrics::Get().writes->Add();
  return Status::OK();
}

Result<DiskPageFile::Frame*> DiskPageFile::EnsureFrame(PageId id,
                                                       bool load_existing) {
  auto it = frames_.find(id);
  if (it != frames_.end()) return &it->second;
  Frame& frame = frames_[id];
  if (load_existing) {
    // Invariant: any page without a resident frame is on disk (Allocate
    // creates the frame; eviction writes it back), so seeding an in-place
    // edit from disk always succeeds.
    Status s = RawRead(id, frame.buf.data());
    if (!s.ok()) {
      frames_.erase(id);
      return s;
    }
  }
  frame_fifo_.push_back(id);
  return &frame;
}

Result<PageView> DiskPageFile::WritableView(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  DiskMetrics::Get().writes->Add();
  DQMO_ASSIGN_OR_RETURN(Frame * frame, EnsureFrame(id, /*load_existing=*/true));
  if (frame->sealed || LoadFlag(verified_, id) != 0) {
    dirty_pages_.push_back(id);
  } else if (std::find(dirty_pages_.begin(), dirty_pages_.end(), id) ==
             dirty_pages_.end()) {
    dirty_pages_.push_back(id);
  }
  frame->sealed = false;  // Trailer stale until sealed.
  StoreFlag(verified_, id, 0);
  DQMO_RETURN_IF_ERROR(EvictFramesOverBudget(id));
  // Re-find: eviction never drops `id`, but map insertions may have moved
  // nothing (node-based) — the frame pointer is stable.
  return PageView(frame->buf.data(), kPageSize);
}

Status DiskPageFile::FlushFrame(PageId id, Frame* frame) {
  if (!frame->sealed) {
    SealPage(frame->buf.data());
    frame->sealed = true;
  }
  DQMO_RETURN_IF_ERROR(RawWrite(id, frame->buf.data()));
  StoreFlag(verified_, id, 1);
  frames_.erase(id);
  return Status::OK();
}

Status DiskPageFile::EvictFramesOverBudget(PageId keep) {
  const size_t budget = dirty_frame_budget_ == 0 ? 1 : dirty_frame_budget_;
  while (frames_.size() > budget && frames_.size() > 1) {
    const PageId victim = frame_fifo_.front();
    frame_fifo_.pop_front();
    if (victim == keep) {
      frame_fifo_.push_back(victim);  // Never evict the page in hand.
      continue;
    }
    auto it = frames_.find(victim);
    if (it == frames_.end()) continue;  // Stale fifo entry.
    DQMO_RETURN_IF_ERROR(FlushFrame(victim, &it->second));
  }
  return Status::OK();
}

void DiskPageFile::SealAllDirty() {
  // Seal *and* write back: after this, every page is on disk and the frame
  // table is empty — the steady state concurrent readers (and speculative
  // prefetch reads, which bypass the frame table) require.
  while (!frames_.empty()) {
    auto it = frames_.begin();
    // Flush failures surface at Publish/SaveTo, which return Status; the
    // page stays framed (and correct in memory) if the write fails.
    if (!FlushFrame(it->first, &it->second).ok()) {
      frames_.erase(it);  // Avoid spinning; Publish will re-detect.
    }
  }
  frame_fifo_.clear();
  dirty_pages_.clear();
}

Status DiskPageFile::Publish() {
  SealAllDirty();
  AlignedPageBuf buf;
  for (PageId id = 0; id < num_pages_; ++id) {
    if (LoadFlag(verified_, id) != 0) continue;
    DQMO_RETURN_IF_ERROR(RawRead(id, buf.data()));
    if (!PageChecksumOk(buf.data())) {
      ++stats_.checksum_failures;
      return Status::Corruption(StrFormat(
          "page %u checksum mismatch (stored %08x, computed %08x)", id,
          StoredPageChecksum(buf.data()), ComputePageChecksum(buf.data())));
    }
    StoreFlag(verified_, id, 1);
  }
  return Status::OK();
}

Status DiskPageFile::VerifyPage(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  AlignedPageBuf buf;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    if (!it->second.sealed) {
      SealPage(it->second.buf.data());
      it->second.sealed = true;
    }
    std::memcpy(buf.data(), it->second.buf.data(), kPageSize);
  } else {
    DQMO_RETURN_IF_ERROR(RawRead(id, buf.data()));
  }
  // Scrub semantics: always recompute, never trust the verified_ cache.
  if (!PageChecksumOk(buf.data())) {
    ++stats_.checksum_failures;
    return Status::Corruption(StrFormat(
        "page %u checksum mismatch (stored %08x, computed %08x)", id,
        StoredPageChecksum(buf.data()), ComputePageChecksum(buf.data())));
  }
  StoreFlag(verified_, id, 1);
  return Status::OK();
}

size_t DiskPageFile::VerifyAllPages(std::vector<PageId>* bad) {
  size_t corrupt = 0;
  for (PageId id = 0; id < num_pages_; ++id) {
    if (!VerifyPage(id).ok()) {
      ++corrupt;
      if (bad != nullptr) bad->push_back(id);
    }
  }
  return corrupt;
}

Status DiskPageFile::SaveTo(const std::string& path) {
  // Everything to disk first; the frame table empties either way.
  for (auto it = frames_.begin(); it != frames_.end();
       it = frames_.begin()) {
    DQMO_RETURN_IF_ERROR(FlushFrame(it->first, &it->second));
  }
  frame_fifo_.clear();
  dirty_pages_.clear();
  if (path == path_) {
    // Flushing our own file: header + data durable in place. No rename —
    // the live file is a working copy, not the durable checkpoint.
    DQMO_RETURN_IF_ERROR(WriteHeader());
    if (::fsync(fd_) != 0) return Status::IOError("fsync failed on " + path_);
    return Status::OK();
  }
  // Checkpointing elsewhere: stream page-at-a-time into a temp file, then
  // the same fsync + crash-point + rename protocol as PageFile::SaveTo.
  const std::string tmp = path + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      return Status::IOError("cannot open " + tmp + " for write");
    }
    auto fail = [&](const std::string& msg) {
      std::fclose(out);
      return Status::IOError(msg);
    };
    AlignedPageBuf header_block;
    PgfHeader header{kPgfMagic, kPgfVersionAligned, 0, num_pages_};
    std::memcpy(header_block.data(), &header, sizeof(header));
    if (std::fwrite(header_block.data(), kPageSize, 1, out) != 1) {
      return fail("short header write to " + tmp);
    }
    AlignedPageBuf page;
    for (PageId id = 0; id < num_pages_; ++id) {
      Status s = RawRead(id, page.data());
      if (!s.ok()) {
        std::fclose(out);
        return s;
      }
      if (std::fwrite(page.data(), kPageSize, 1, out) != 1) {
        return fail("short page write to " + tmp);
      }
    }
    if (std::fflush(out) != 0) return fail("fflush failed on " + tmp);
    if (::fsync(::fileno(out)) != 0) return fail("fsync failed on " + tmp);
    std::fclose(out);
  }
  CrashPoints::Hit(crash_points::kSaveBeforeRename);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Status DiskPageFile::CorruptPageForTest(PageId id, size_t offset,
                                        uint8_t mask) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  if (offset >= kPageSize) {
    return Status::InvalidArgument("corruption offset past page end");
  }
  // Damage at rest: the frame (if any) goes to disk sealed first, then the
  // stored bytes are flipped with the trailer left stale.
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    DQMO_RETURN_IF_ERROR(FlushFrame(id, &it->second));
  }
  AlignedPageBuf buf;
  DQMO_RETURN_IF_ERROR(RawRead(id, buf.data()));
  buf.data()[offset] ^= mask;
  DQMO_RETURN_IF_ERROR(RawWrite(id, buf.data()));
  StoreFlag(verified_, id, 0);
  return Status::OK();
}

}  // namespace dqmo
