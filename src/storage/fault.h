// Deterministic storage-fault injection and the retrying reader that
// absorbs it.
//
// The paper's testbed assumes a well-behaved disk; a server tracking
// thousands of moving objects cannot. This module provides the fault model
// for the integrity subsystem (DESIGN.md, "Fault model & integrity"):
//
//   PageFile  ->  FaultyPageReader  ->  RetryingPageReader  ->  queries
//   (sealed       (injects seeded        (bounded retries,
//    + verified)   failures)              verifies checksums)
//
// Every schedule is reproducible from an Rng seed, so a failing
// degraded-query run can be replayed bit-for-bit.
#ifndef DQMO_STORAGE_FAULT_H_
#define DQMO_STORAGE_FAULT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_file.h"

namespace dqmo {

/// Names of the crash points the durability protocol registers, in the
/// order they are reached. Tests iterate CrashPoints::All(); the constants
/// exist so call sites and tests cannot drift apart.
namespace crash_points {
/// WalWriter::Sync, before any byte of the pending batch reaches the file:
/// the whole batch is lost, none of it was acknowledged.
inline constexpr char kWalBeforeSync[] = "wal:before_sync";
/// WalWriter::Sync, after roughly half the pending batch's bytes were
/// written: recovery must truncate the torn record.
inline constexpr char kWalTornWrite[] = "wal:torn_write";
/// WalWriter::Sync, after the fsync: the batch is durable but the caller
/// never saw Sync return (durable-but-unacknowledged inserts may surface
/// after recovery; they must never be *lost*).
inline constexpr char kWalAfterSync[] = "wal:after_sync";
/// DurableIndex::Checkpoint, after the WAL sync but before the checkpoint
/// temp file is written: the old image plus the full log must recover.
inline constexpr char kCkptBeforeTemp[] = "ckpt:before_temp";
/// PageFile::SaveTo, after the temp file is written and fsynced but before
/// the rename: the previous image must be untouched.
inline constexpr char kSaveBeforeRename[] = "save:before_rename";
/// DurableIndex::Checkpoint, after the rename installed the new image but
/// before the WAL reset: recovery must skip the already-checkpointed
/// records by LSN instead of replaying them twice.
inline constexpr char kCkptBeforeWalReset[] = "ckpt:before_wal_reset";
}  // namespace crash_points

/// Deterministic kill-point injection for the fork-based crash tests
/// (tests/recovery_test.cc): a test arms one named point (optionally
/// skipping the first `skip` hits), forks, and the child dies with
/// _exit(kExitCode) the moment the durability code reaches it — no stack
/// unwinding, no buffers flushed, exactly like a kill -9 at that
/// instruction. Disarmed (the default) a crash point costs one relaxed
/// atomic load.
///
/// The registry is process-global; Arm/Disarm are meant for a forked child
/// before it starts work (arming while other threads run durability code
/// would kill the process from an arbitrary thread, which is the point of
/// the exercise but rarely what a unit test wants).
class CrashPoints {
 public:
  /// Exit code of a crashed process; chosen to be distinguishable from
  /// gtest failures (1), sanitizer aborts, and signal deaths.
  static constexpr int kExitCode = 87;

  /// Arms `name`: the (skip+1)-th Hit/ConsumeHit of that name crashes.
  static void Arm(const char* name, uint64_t skip = 0);
  static void Disarm();
  static bool armed();

  /// Crashes via _exit(kExitCode) if `name` is armed and its skip count is
  /// exhausted; otherwise decrements and returns.
  static void Hit(const char* name);

  /// Like Hit but lets the caller interleave work between the decision and
  /// the death (the torn-write point writes half a batch first): returns
  /// true when this hit should crash — the caller must then call Die().
  static bool ConsumeHit(const char* name);

  /// Immediate _exit(kExitCode).
  [[noreturn]] static void Die();

  /// Every registered crash point name, in protocol order.
  static std::vector<std::string> All();
};

/// Decides, deterministically, whether each successive read fails and how.
/// A schedule combines:
///   - a seeded Bernoulli stream of *transient* faults (transient_fault_rate),
///   - a seeded Bernoulli stream of *slow* reads (slow_read_rate): the page
///     is delivered intact, but only after a configured delay — the
///     overload-bench's model of a saturated or degraded disk,
///   - "hard" points: fail permanently after N reads (fail_after), fail
///     transiently on every Kth read (fail_every_kth), delay every Kth read
///     (slow_every_kth), stop injecting anything after N reads (stop_after:
///     "the fault window closes"),
///   - targeted corruptions: flip bits of page P at byte B, either once
///     (transient: the stored page is intact, only the returned copy is
///     damaged) or persistently (every read of P returns damaged bytes).
///
/// Determinism contract: the outcome of read #n depends only on the seed,
/// the options, and n — never on wall-clock or pointer values. New option
/// streams (slow reads) draw from the Rng only when their rate is non-zero,
/// so schedules produced by older option sets replay bit-for-bit.
///
/// Thread-safe: decision state is guarded by a mutex, so one injector may
/// be shared by concurrent readers (the overload chaos harness does). Under
/// concurrency the read *numbering* follows arrival order, so which thread
/// draws fault #n depends on scheduling — single-threaded use remains
/// bit-for-bit reproducible.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Probability that any given read fails transiently (IOError).
    double transient_fault_rate = 0.0;
    /// After this many successful reads, every further read fails
    /// permanently (IOError, non-recovering). 0 disables.
    uint64_t fail_after = 0;
    /// Every Kth read (K, 2K, ...) fails transiently. 0 disables.
    uint64_t fail_every_kth = 0;
    /// Probability that any given read is delayed by slow_read_delay_us
    /// before being delivered intact. 0 disables.
    double slow_read_rate = 0.0;
    /// Every Kth read (K, 2K, ...) is delayed. 0 disables.
    uint64_t slow_every_kth = 0;
    /// Delay applied to slow reads, microseconds.
    uint64_t slow_read_delay_us = 1000;
    /// After this many reads, every further read passes untouched — no
    /// faults, no delays (registered per-page flips/dead pages included).
    /// Models a fault window that clears; 0 = faults never stop.
    uint64_t stop_after = 0;
  };

  /// What the injector decided for one read.
  struct Decision {
    enum class Kind : uint8_t {
      kPass,           // Deliver the page untouched.
      kTransientFail,  // IOError this time; a retry may succeed.
      kPermanentFail,  // IOError now and on every future attempt.
      kCorrupt,        // Deliver the page with bytes flipped.
      kSlow,           // Deliver the page untouched after delay_us.
    };
    Kind kind = Kind::kPass;
    uint64_t delay_us = 0;  // Meaningful for kSlow.
  };

  explicit FaultInjector(const Options& options);

  /// Registers a bit flip: reads of `page` return its bytes with `mask`
  /// XORed into byte `offset`. Transient flips damage only the first
  /// delivered copy (a retry sees clean bytes); persistent flips damage
  /// every delivery, modelling at-rest corruption.
  void AddBitFlip(PageId page, size_t offset, uint8_t mask, bool transient);

  /// Registers `page` as unreadable: every read of it fails with IOError.
  void AddPermanentFault(PageId page);

  /// Decides the fate of the next read of `page`. Advances the seeded
  /// stream, so call exactly once per physical read attempt.
  Decision NextRead(PageId page);

  /// Decides the fate of the next *asynchronous* (speculative prefetch)
  /// read. Same Options knobs — transient_fault_rate, fail_after,
  /// fail_every_kth, slow_read_rate, slow_every_kth, stop_after — but
  /// drawn from a separately-seeded Rng stream with its own read counter,
  /// so arming a prefetcher never shifts the synchronous schedule (which
  /// chaos_test replays bit-for-bit) and a seeded slow-read storm delays
  /// io_uring completions exactly as it delays synchronous reads.
  /// Page-targeted faults (bit flips, dead pages) stay on the synchronous
  /// stream: a failed speculative read merely degrades to the sync path,
  /// where those are injected, retried, and repaired as usual. Never
  /// returns kCorrupt or kPermanentFail; a speculative read either
  /// passes, fails transiently, or is slow.
  Decision NextAsyncRead(PageId page);

  /// Total asynchronous reads decided so far.
  uint64_t async_reads_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return async_reads_seen_;
  }
  /// Asynchronous faults injected so far (slow completions included).
  uint64_t async_faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return async_faults_injected_;
  }

  /// Applies any registered (still-armed) bit flips for `page` to `buf`
  /// (kPageSize bytes). Consumes transient flips.
  void ApplyCorruption(PageId page, uint8_t* buf);

  /// Total reads decided so far.
  uint64_t reads_seen() const {
    std::lock_guard<std::mutex> lock(mu_);
    return reads_seen_;
  }
  /// Faults injected so far (all kinds, slow reads included).
  uint64_t faults_injected() const {
    std::lock_guard<std::mutex> lock(mu_);
    return faults_injected_;
  }
  /// Slow (delayed) reads decided so far.
  uint64_t slow_reads() const {
    std::lock_guard<std::mutex> lock(mu_);
    return slow_reads_;
  }

 private:
  struct BitFlip {
    size_t offset;
    uint8_t mask;
    bool transient;
    bool spent = false;  // Transient flips fire once.
  };

  Options options_;
  mutable std::mutex mu_;
  // All decision state below is guarded by mu_.
  Rng rng_;
  uint64_t reads_seen_ = 0;
  uint64_t faults_injected_ = 0;
  uint64_t slow_reads_ = 0;
  /// The async (speculative-read) stream: independent Rng and counters so
  /// the synchronous schedule is untouched by prefetch activity.
  Rng async_rng_;
  uint64_t async_reads_seen_ = 0;
  uint64_t async_faults_injected_ = 0;
  std::unordered_map<PageId, std::vector<BitFlip>> flips_;
  std::unordered_map<PageId, bool> dead_pages_;
};

/// PageReader decorator that injects the faults an injector schedules.
/// Failed reads still count as physical accesses on the underlying reader's
/// accounting only when the underlying read actually happened (corruption
/// does read the page; transient/permanent failures abort before it).
class FaultyPageReader : public PageReader {
 public:
  /// How a kSlow decision's delay is served; injectable so latency-fault
  /// tests stay deterministic and sleep-free. The default performs a real
  /// sleep_for of that many microseconds.
  using Sleeper = std::function<void(uint64_t delay_us)>;

  /// Neither pointer is owned. `injector` may be shared across readers
  /// (its stream then interleaves in call order) or null — a null injector
  /// makes the reader a pure pass-through, which is how a per-shard fault
  /// plane sits permanently in a read chain without costing anything until
  /// a chaos program arms that shard. A null `sleeper` uses a real sleep.
  FaultyPageReader(PageReader* base, FaultInjector* injector,
                   Sleeper sleeper = nullptr);

  Result<ReadResult> Read(PageId id) override;

  /// Swaps the injector (null disarms). Not synchronized against concurrent
  /// Read calls — callers must hold the owning shard's exclusive gate (or
  /// otherwise quiesce readers) while swapping, which is exactly what
  /// ShardedEngine::ArmShardFault/ClearShardFault do.
  void set_injector(FaultInjector* injector) { injector_ = injector; }
  FaultInjector* injector() const { return injector_; }

 private:
  PageReader* base_;
  FaultInjector* injector_;
  Sleeper sleeper_;
  // Corrupted deliveries need a private buffer: the base reader's bytes
  // must stay pristine (transient corruption, by definition, is not
  // written back).
  std::vector<uint8_t> scratch_;
};

/// PageReader decorator that absorbs transient faults by retrying, verifies
/// checksums on every delivered page, and converts unrecoverable failures
/// into typed errors for the degraded-result machinery above it.
///
/// Retry policy: IOError / Corruption results are retried up to
/// max_attempts total attempts or until the per-read deadline (measured by
/// the injectable clock) expires, whichever is first; other codes (e.g.
/// OutOfRange for a bad page id) are returned immediately — retrying a
/// malformed request cannot help.
class RetryingPageReader : public PageReader {
 public:
  struct RetryPolicy {
    /// Total attempts per read, including the first. Must be >= 1.
    int max_attempts = 3;
    /// Wall-clock budget per read in seconds; once exceeded, no further
    /// attempts are made (the attempt in flight is not interrupted).
    /// <= 0 means no deadline.
    double per_read_deadline = 0.0;
    /// Verify the delivered page's checksum even when the base reader
    /// claims success; a mismatch counts as a retryable corruption.
    bool verify_checksums = true;
    /// Decorrelated-jitter backoff between attempts, seconds. 0 (default)
    /// keeps the legacy back-to-back retries (no sleeps, no Rng draws).
    /// With base > 0, the delay before retry k is
    ///   min(backoff_max, Uniform(backoff_base, 3 * previous_delay))
    /// — the AWS "decorrelated jitter" scheme, which spreads retry storms
    /// without the lockstep of plain exponential backoff. A sleep is never
    /// started when it would overrun per_read_deadline; the read gives up
    /// with the deadline message instead.
    double backoff_base = 0.0;
    double backoff_max = 0.1;
    /// Seed for the jitter stream (deterministic per reader).
    uint64_t backoff_seed = 1;
  };

  /// Serves a backoff delay (seconds); injectable so backoff tests run
  /// without real sleeps. A null sleeper sleeps for real.
  using Sleeper = std::function<void(double seconds)>;

  /// Seconds-valued monotonic clock; injectable so deadline behaviour is
  /// testable without sleeping.
  using Clock = std::function<double()>;

  /// `base` is not owned. `stats` (may be null) receives retry and
  /// checksum-failure counts; pass the PageFile's mutable_stats() to fold
  /// them into the experiment accounting. A default clock (steady_clock)
  /// is used when `clock` is null; a default real sleep when `sleeper` is
  /// null.
  RetryingPageReader(PageReader* base, const RetryPolicy& policy,
                     IoStats* stats = nullptr, Clock clock = nullptr,
                     Sleeper sleeper = nullptr);

  Result<ReadResult> Read(PageId id) override;

  const RetryPolicy& policy() const { return policy_; }

  /// Reads that ultimately failed after exhausting the policy.
  uint64_t exhausted_reads() const { return exhausted_reads_; }

 private:
  static bool Retryable(const Status& s) {
    return s.IsIOError() || s.IsCorruption();
  }

  PageReader* base_;
  RetryPolicy policy_;
  IoStats* stats_;
  Clock clock_;
  Sleeper sleeper_;
  Rng backoff_rng_;
  uint64_t exhausted_reads_ = 0;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_FAULT_H_
