#include "storage/fault.h"

#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Armed-point state. The fast path (disarmed) reads only g_armed; the
/// slow path serializes on a mutex so a multi-threaded child still dies at
/// exactly the requested hit.
std::atomic<bool> g_armed{false};
std::mutex g_crash_mu;
std::string g_crash_name;       // Guarded by g_crash_mu.
uint64_t g_crash_skip = 0;      // Hits to survive before dying.

}  // namespace

void CrashPoints::Arm(const char* name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_crash_name = name;
  g_crash_skip = skip;
  g_armed.store(true, std::memory_order_release);
}

void CrashPoints::Disarm() {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_crash_name.clear();
  g_armed.store(false, std::memory_order_release);
}

bool CrashPoints::armed() {
  return g_armed.load(std::memory_order_acquire);
}

bool CrashPoints::ConsumeHit(const char* name) {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (g_crash_name != name) return false;
  if (g_crash_skip > 0) {
    --g_crash_skip;
    return false;
  }
  return true;
}

void CrashPoints::Hit(const char* name) {
  if (ConsumeHit(name)) Die();
}

void CrashPoints::Die() {
  // _exit, not exit: no atexit handlers, no stream flushing — the process
  // state that survives is exactly what already reached the kernel.
  ::_exit(kExitCode);
}

std::vector<std::string> CrashPoints::All() {
  return {crash_points::kWalBeforeSync, crash_points::kWalTornWrite,
          crash_points::kWalAfterSync,  crash_points::kCkptBeforeTemp,
          crash_points::kSaveBeforeRename,
          crash_points::kCkptBeforeWalReset};
}

FaultInjector::FaultInjector(const Options& options)
    : options_(options), rng_(options.seed) {
  DQMO_CHECK(options.transient_fault_rate >= 0.0 &&
             options.transient_fault_rate <= 1.0);
}

void FaultInjector::AddBitFlip(PageId page, size_t offset, uint8_t mask,
                               bool transient) {
  DQMO_CHECK(offset < kPageSize);
  flips_[page].push_back(BitFlip{offset, mask, transient});
}

void FaultInjector::AddPermanentFault(PageId page) {
  dead_pages_[page] = true;
}

FaultInjector::Decision FaultInjector::NextRead(PageId page) {
  const uint64_t n = ++reads_seen_;
  // The Bernoulli stream advances on *every* read regardless of which
  // branch fires, so decisions for read #n are independent of the pages
  // read before it — this is what makes schedules replayable across query
  // plans that reorder their page accesses.
  const bool rate_fault = options_.transient_fault_rate > 0.0 &&
                          rng_.Bernoulli(options_.transient_fault_rate);
  Decision d;
  if (dead_pages_.count(page) != 0) {
    d.kind = Decision::Kind::kPermanentFail;
  } else if (options_.fail_after != 0 && n > options_.fail_after) {
    d.kind = Decision::Kind::kPermanentFail;
  } else if (options_.fail_every_kth != 0 &&
             n % options_.fail_every_kth == 0) {
    d.kind = Decision::Kind::kTransientFail;
  } else if (rate_fault) {
    d.kind = Decision::Kind::kTransientFail;
  } else {
    auto it = flips_.find(page);
    if (it != flips_.end()) {
      for (const BitFlip& flip : it->second) {
        if (!flip.spent) {
          d.kind = Decision::Kind::kCorrupt;
          break;
        }
      }
    }
  }
  if (d.kind != Decision::Kind::kPass) ++faults_injected_;
  return d;
}

void FaultInjector::ApplyCorruption(PageId page, uint8_t* buf) {
  auto it = flips_.find(page);
  if (it == flips_.end()) return;
  for (BitFlip& flip : it->second) {
    if (flip.spent) continue;
    buf[flip.offset] ^= flip.mask;
    if (flip.transient) flip.spent = true;
  }
}

FaultyPageReader::FaultyPageReader(PageReader* base, FaultInjector* injector)
    : base_(base), injector_(injector) {
  DQMO_CHECK(base != nullptr && injector != nullptr);
}

Result<PageReader::ReadResult> FaultyPageReader::Read(PageId id) {
  const FaultInjector::Decision d = injector_->NextRead(id);
  using Kind = FaultInjector::Decision::Kind;
  switch (d.kind) {
    case Kind::kTransientFail:
      return Status::IOError(
          StrFormat("injected transient fault reading page %u", id));
    case Kind::kPermanentFail:
      return Status::IOError(
          StrFormat("injected permanent fault reading page %u", id));
    case Kind::kCorrupt: {
      DQMO_ASSIGN_OR_RETURN(auto read, base_->Read(id));
      scratch_.assign(read.data, read.data + kPageSize);
      injector_->ApplyCorruption(id, scratch_.data());
      return ReadResult{scratch_.data(), read.physical};
    }
    case Kind::kPass:
      break;
  }
  return base_->Read(id);
}

RetryingPageReader::RetryingPageReader(PageReader* base,
                                       const RetryPolicy& policy,
                                       IoStats* stats, Clock clock)
    : base_(base), policy_(policy), stats_(stats), clock_(std::move(clock)) {
  DQMO_CHECK(base != nullptr);
  DQMO_CHECK(policy.max_attempts >= 1);
  if (!clock_) {
    clock_ = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
}

Result<PageReader::ReadResult> RetryingPageReader::Read(PageId id) {
  const double start = clock_();
  Status last = Status::OK();
  for (int attempt = 1;; ++attempt) {
    if (attempt > 1 && stats_ != nullptr) ++stats_->retries;
    Result<ReadResult> r = base_->Read(id);
    if (r.ok()) {
      const ReadResult read = *r;
      if (!policy_.verify_checksums || PageChecksumOk(read.data)) {
        return read;
      }
      if (stats_ != nullptr) ++stats_->checksum_failures;
      last = Status::Corruption(StrFormat(
          "page %u checksum mismatch (stored %08x, computed %08x)", id,
          StoredPageChecksum(read.data), ComputePageChecksum(read.data)));
    } else {
      last = r.status();
      if (!Retryable(last)) return last;  // e.g. OutOfRange: a bad request.
    }
    if (attempt >= policy_.max_attempts) break;
    if (policy_.per_read_deadline > 0.0 &&
        clock_() - start >= policy_.per_read_deadline) {
      last = Status(last.code(),
                    last.message() + StrFormat(" (deadline %.3fs exceeded "
                                               "after %d attempts)",
                                               policy_.per_read_deadline,
                                               attempt));
      break;
    }
  }
  ++exhausted_reads_;
  return last;
}

}  // namespace dqmo
