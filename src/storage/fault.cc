#include "storage/fault.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Armed-point state. The fast path (disarmed) reads only g_armed; the
/// slow path serializes on a mutex so a multi-threaded child still dies at
/// exactly the requested hit.
std::atomic<bool> g_armed{false};
std::mutex g_crash_mu;
std::string g_crash_name;       // Guarded by g_crash_mu.
uint64_t g_crash_skip = 0;      // Hits to survive before dying.

}  // namespace

void CrashPoints::Arm(const char* name, uint64_t skip) {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_crash_name = name;
  g_crash_skip = skip;
  g_armed.store(true, std::memory_order_release);
}

void CrashPoints::Disarm() {
  std::lock_guard<std::mutex> lock(g_crash_mu);
  g_crash_name.clear();
  g_armed.store(false, std::memory_order_release);
}

bool CrashPoints::armed() {
  return g_armed.load(std::memory_order_acquire);
}

bool CrashPoints::ConsumeHit(const char* name) {
  if (!g_armed.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(g_crash_mu);
  if (g_crash_name != name) return false;
  if (g_crash_skip > 0) {
    --g_crash_skip;
    return false;
  }
  return true;
}

void CrashPoints::Hit(const char* name) {
  if (ConsumeHit(name)) Die();
}

void CrashPoints::Die() {
  // _exit, not exit: no atexit handlers, no stream flushing — the process
  // state that survives is exactly what already reached the kernel.
  ::_exit(kExitCode);
}

std::vector<std::string> CrashPoints::All() {
  return {crash_points::kWalBeforeSync, crash_points::kWalTornWrite,
          crash_points::kWalAfterSync,  crash_points::kCkptBeforeTemp,
          crash_points::kSaveBeforeRename,
          crash_points::kCkptBeforeWalReset};
}

FaultInjector::FaultInjector(const Options& options)
    : options_(options),
      rng_(options.seed),
      // The async stream derives from the same seed (one seed still
      // replays the whole run) but is an independent generator, so the
      // synchronous stream's draw sequence is identical whether or not a
      // prefetcher is issuing speculative reads.
      async_rng_(options.seed ^ 0xa5f3'c6d1'9b27'e48dULL) {
  DQMO_CHECK(options.transient_fault_rate >= 0.0 &&
             options.transient_fault_rate <= 1.0);
}

void FaultInjector::AddBitFlip(PageId page, size_t offset, uint8_t mask,
                               bool transient) {
  DQMO_CHECK(offset < kPageSize);
  std::lock_guard<std::mutex> lock(mu_);
  flips_[page].push_back(BitFlip{offset, mask, transient});
}

void FaultInjector::AddPermanentFault(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  dead_pages_[page] = true;
}

FaultInjector::Decision FaultInjector::NextRead(PageId page) {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = ++reads_seen_;
  // The Bernoulli streams advance on *every* read regardless of which
  // branch fires, so decisions for read #n are independent of the pages
  // read before it — this is what makes schedules replayable across query
  // plans that reorder their page accesses. The slow-read stream draws
  // strictly after the fault stream (and only when its rate is non-zero),
  // so pre-existing schedules are unchanged by the new option.
  const bool rate_fault = options_.transient_fault_rate > 0.0 &&
                          rng_.Bernoulli(options_.transient_fault_rate);
  const bool rate_slow = options_.slow_read_rate > 0.0 &&
                         rng_.Bernoulli(options_.slow_read_rate);
  Decision d;
  if (options_.stop_after != 0 && n > options_.stop_after) {
    // The fault window has closed: everything passes from here on.
    return d;
  }
  if (dead_pages_.count(page) != 0) {
    d.kind = Decision::Kind::kPermanentFail;
  } else if (options_.fail_after != 0 && n > options_.fail_after) {
    d.kind = Decision::Kind::kPermanentFail;
  } else if (options_.fail_every_kth != 0 &&
             n % options_.fail_every_kth == 0) {
    d.kind = Decision::Kind::kTransientFail;
  } else if (rate_fault) {
    d.kind = Decision::Kind::kTransientFail;
  } else if ((options_.slow_every_kth != 0 &&
              n % options_.slow_every_kth == 0) ||
             rate_slow) {
    d.kind = Decision::Kind::kSlow;
    d.delay_us = options_.slow_read_delay_us;
    ++slow_reads_;
  } else {
    auto it = flips_.find(page);
    if (it != flips_.end()) {
      for (const BitFlip& flip : it->second) {
        if (!flip.spent) {
          d.kind = Decision::Kind::kCorrupt;
          break;
        }
      }
    }
  }
  if (d.kind != Decision::Kind::kPass) ++faults_injected_;
  return d;
}

FaultInjector::Decision FaultInjector::NextAsyncRead(PageId page) {
  (void)page;  // Page-targeted faults stay on the synchronous stream.
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t n = ++async_reads_seen_;
  // Mirror NextRead's structure on the independent stream: both Bernoulli
  // draws advance on every read so decision #n is position-dependent only,
  // and the slow draw comes strictly after the fault draw.
  const bool rate_fault = options_.transient_fault_rate > 0.0 &&
                          async_rng_.Bernoulli(options_.transient_fault_rate);
  const bool rate_slow = options_.slow_read_rate > 0.0 &&
                         async_rng_.Bernoulli(options_.slow_read_rate);
  Decision d;
  if (options_.stop_after != 0 && n > options_.stop_after) {
    return d;
  }
  if (options_.fail_after != 0 && n > options_.fail_after) {
    // Speculative reads have a synchronous fallback, so even the
    // "permanent" point degrades them transiently: the sync retry path
    // owns permanence.
    d.kind = Decision::Kind::kTransientFail;
  } else if (options_.fail_every_kth != 0 &&
             n % options_.fail_every_kth == 0) {
    d.kind = Decision::Kind::kTransientFail;
  } else if (rate_fault) {
    d.kind = Decision::Kind::kTransientFail;
  } else if ((options_.slow_every_kth != 0 &&
              n % options_.slow_every_kth == 0) ||
             rate_slow) {
    d.kind = Decision::Kind::kSlow;
    d.delay_us = options_.slow_read_delay_us;
  }
  if (d.kind != Decision::Kind::kPass) ++async_faults_injected_;
  return d;
}

void FaultInjector::ApplyCorruption(PageId page, uint8_t* buf) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = flips_.find(page);
  if (it == flips_.end()) return;
  for (BitFlip& flip : it->second) {
    if (flip.spent) continue;
    buf[flip.offset] ^= flip.mask;
    if (flip.transient) flip.spent = true;
  }
}

FaultyPageReader::FaultyPageReader(PageReader* base, FaultInjector* injector,
                                   Sleeper sleeper)
    : base_(base), injector_(injector), sleeper_(std::move(sleeper)) {
  DQMO_CHECK(base != nullptr);
  if (!sleeper_) {
    sleeper_ = [](uint64_t delay_us) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    };
  }
}

Result<PageReader::ReadResult> FaultyPageReader::Read(PageId id) {
  if (injector_ == nullptr) return base_->Read(id);  // Disarmed shard.
  const FaultInjector::Decision d = injector_->NextRead(id);
  using Kind = FaultInjector::Decision::Kind;
  switch (d.kind) {
    case Kind::kTransientFail:
      return Status::IOError(
          StrFormat("injected transient fault reading page %u", id));
    case Kind::kPermanentFail:
      return Status::IOError(
          StrFormat("injected permanent fault reading page %u", id));
    case Kind::kCorrupt: {
      DQMO_ASSIGN_OR_RETURN(auto read, base_->Read(id));
      scratch_.assign(read.data, read.data + kPageSize);
      injector_->ApplyCorruption(id, scratch_.data());
      return ReadResult{scratch_.data(), read.physical};
    }
    case Kind::kSlow:
      // Latency, not loss: serve the delay, then the intact page.
      sleeper_(d.delay_us);
      break;
    case Kind::kPass:
      break;
  }
  return base_->Read(id);
}

RetryingPageReader::RetryingPageReader(PageReader* base,
                                       const RetryPolicy& policy,
                                       IoStats* stats, Clock clock,
                                       Sleeper sleeper)
    : base_(base),
      policy_(policy),
      stats_(stats),
      clock_(std::move(clock)),
      sleeper_(std::move(sleeper)),
      backoff_rng_(policy.backoff_seed) {
  DQMO_CHECK(base != nullptr);
  DQMO_CHECK(policy.max_attempts >= 1);
  DQMO_CHECK(policy.backoff_base >= 0.0);
  DQMO_CHECK(policy.backoff_max >= policy.backoff_base);
  if (!clock_) {
    clock_ = [] {
      return std::chrono::duration<double>(
                 std::chrono::steady_clock::now().time_since_epoch())
          .count();
    };
  }
  if (!sleeper_) {
    sleeper_ = [](double seconds) {
      std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    };
  }
}

Result<PageReader::ReadResult> RetryingPageReader::Read(PageId id) {
  const double start = clock_();
  Status last = Status::OK();
  double prev_delay = policy_.backoff_base;
  for (int attempt = 1;; ++attempt) {
    if (attempt > 1 && stats_ != nullptr) ++stats_->retries;
    Result<ReadResult> r = base_->Read(id);
    if (r.ok()) {
      const ReadResult read = *r;
      if (!policy_.verify_checksums || PageChecksumOk(read.data)) {
        return read;
      }
      if (stats_ != nullptr) ++stats_->checksum_failures;
      last = Status::Corruption(StrFormat(
          "page %u checksum mismatch (stored %08x, computed %08x)", id,
          StoredPageChecksum(read.data), ComputePageChecksum(read.data)));
    } else {
      last = r.status();
      if (!Retryable(last)) return last;  // e.g. OutOfRange: a bad request.
    }
    if (attempt >= policy_.max_attempts) break;
    const double elapsed = clock_() - start;
    if (policy_.per_read_deadline > 0.0 &&
        elapsed >= policy_.per_read_deadline) {
      last = Status(last.code(),
                    last.message() + StrFormat(" (deadline %.3fs exceeded "
                                               "after %d attempts)",
                                               policy_.per_read_deadline,
                                               attempt));
      break;
    }
    if (policy_.backoff_base > 0.0) {
      // Decorrelated jitter: each delay is drawn from [base, 3 * previous],
      // capped at backoff_max — spreads concurrent retriers apart instead of
      // marching them in exponential lockstep.
      const double hi = std::max(policy_.backoff_base, 3.0 * prev_delay);
      const double delay = std::min(policy_.backoff_max,
                                    backoff_rng_.Uniform(policy_.backoff_base,
                                                         hi));
      if (policy_.per_read_deadline > 0.0 &&
          elapsed + delay >= policy_.per_read_deadline) {
        // The sleep alone would blow the deadline: give up now rather than
        // sleep past it and discover the overrun afterwards.
        last = Status(last.code(),
                      last.message() + StrFormat(" (deadline %.3fs exceeded "
                                                 "after %d attempts)",
                                                 policy_.per_read_deadline,
                                                 attempt));
        break;
      }
      sleeper_(delay);
      prev_delay = delay;
    }
  }
  ++exhausted_reads_;
  return last;
}

}  // namespace dqmo
