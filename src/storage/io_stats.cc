#include "storage/io_stats.h"

#include "common/string_util.h"

namespace dqmo {

bool IoStats::SnapshotConsistent(const IoStats& live, IoStats* snapshot,
                                 int attempts) {
  IoStats first = live;
  for (int i = 0; i < attempts; ++i) {
    IoStats second = live;
    *snapshot = second;
    if (first == second) return true;
    first = second;
  }
  return false;
}

std::string IoStats::ToString() const {
  return StrFormat(
      "io{reads=%llu, writes=%llu, hits=%llu, crc_fail=%llu, retries=%llu, "
      "wal_app=%llu, wal_sync=%llu, pf_issued=%llu, pf_hit=%llu, "
      "pf_wasted=%llu}",
      static_cast<unsigned long long>(physical_reads),
      static_cast<unsigned long long>(physical_writes),
      static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(checksum_failures),
      static_cast<unsigned long long>(retries),
      static_cast<unsigned long long>(wal_appends),
      static_cast<unsigned long long>(wal_syncs),
      static_cast<unsigned long long>(prefetch_issued),
      static_cast<unsigned long long>(prefetch_hits),
      static_cast<unsigned long long>(prefetch_wasted));
}

}  // namespace dqmo
