#include "storage/wal.h"

#include <unistd.h>

#include <cstring>

#include "common/crc32c.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "common/types.h"
#include "storage/fault.h"

namespace dqmo {
namespace {

/// Process-wide WAL metrics (aggregate across writers; per-writer deltas
/// stay in the IoStats each writer was opened with).
struct WalMetrics {
  Counter* appends;
  Counter* syncs;
  Counter* synced_bytes;
  Histogram* sync_ns;

  static WalMetrics& Get() {
    static WalMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return WalMetrics{
          r.GetCounter("dqmo_wal_appends_total",
                       "Records buffered by WalWriter::Append*"),
          r.GetCounter("dqmo_wal_syncs_total",
                       "Batches made durable by WalWriter::Sync"),
          r.GetCounter("dqmo_wal_synced_bytes_total",
                       "Bytes pushed to the log by successful syncs"),
          r.GetHistogram("dqmo_wal_sync_ns",
                         "WalWriter::Sync latency (write + flush + fsync)"),
      };
    }();
    return m;
  }
};

constexpr uint64_t kWalMagic = 0x4451'4d4f'5741'4c31ULL;  // "DQMOWAL1"
constexpr uint32_t kWalVersion = 1;
constexpr size_t kWalHeaderSize = 16;  // magic + version + reserved.
/// crc (u32) + payload_len (u32) + lsn (u64) + type (u8).
constexpr size_t kRecordHeaderSize = 17;
/// Payload sanity bound: an insert payload is at most 24 + 16 * 6 = 120
/// bytes; anything near a page is a damaged length field.
constexpr uint32_t kMaxWalPayload = 4096;

void PutU32(std::vector<uint8_t>* out, uint32_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutU64(std::vector<uint8_t>* out, uint64_t v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

void PutF64(std::vector<uint8_t>* out, double v) {
  const size_t at = out->size();
  out->resize(at + sizeof(v));
  std::memcpy(out->data() + at, &v, sizeof(v));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

double GetF64(const uint8_t* p) {
  double v;
  std::memcpy(&v, p, sizeof(v));
  return v;
}

/// Insert payload: u32 oid | u32 dims | f64 t_lo | f64 t_hi |
/// dims x f64 p0 | dims x f64 p1.
void EncodeInsertPayload(const MotionSegment& m, std::vector<uint8_t>* out) {
  PutU32(out, m.oid);
  PutU32(out, static_cast<uint32_t>(m.seg.dims()));
  PutF64(out, m.seg.time.lo);
  PutF64(out, m.seg.time.hi);
  for (int i = 0; i < m.seg.dims(); ++i) PutF64(out, m.seg.p0[i]);
  for (int i = 0; i < m.seg.dims(); ++i) PutF64(out, m.seg.p1[i]);
}

size_t InsertPayloadSize(int dims) {
  return 8 + 16 + 16 * static_cast<size_t>(dims);
}

/// Appends one framed record to `out`. The CRC covers everything after the
/// crc field itself, so a damaged length cannot silently re-frame the log.
void EncodeRecord(uint64_t lsn, WalRecordType type,
                  const std::vector<uint8_t>& payload,
                  std::vector<uint8_t>* out) {
  std::vector<uint8_t> body;
  body.reserve(kRecordHeaderSize - 4 + payload.size());
  PutU32(&body, static_cast<uint32_t>(payload.size()));
  PutU64(&body, lsn);
  body.push_back(static_cast<uint8_t>(type));
  body.insert(body.end(), payload.begin(), payload.end());
  PutU32(out, Crc32c(body.data(), body.size()));
  out->insert(out->end(), body.begin(), body.end());
}

/// Returns true when any CRC-valid record starts in (from, size): the
/// discriminator between a torn tail (nothing well-formed follows the
/// damage) and mid-log corruption (acknowledged data follows a hole).
bool AnyValidRecordAfter(const uint8_t* data, size_t size, size_t from) {
  for (size_t c = from + 1; c + kRecordHeaderSize <= size; ++c) {
    const uint32_t len = GetU32(data + c + 4);
    if (len > kMaxWalPayload) continue;
    if (c + kRecordHeaderSize + len > size) continue;
    const uint32_t crc = GetU32(data + c);
    if (Crc32c(data + c + 4, kRecordHeaderSize - 4 + len) == crc) {
      return true;
    }
  }
  return false;
}

/// Decodes the payload of a CRC-valid record. A valid CRC with a malformed
/// payload (impossible dims, size mismatch, unknown type) is corruption,
/// not a torn write: the frame was intact, the content is wrong.
Status DecodePayload(const uint8_t* payload, uint32_t len, uint64_t offset,
                     WalRecord* rec) {
  switch (rec->type) {
    case WalRecordType::kInsert: {
      if (len < 8) {
        return Status::Corruption(StrFormat(
            "WAL insert record at offset %llu: payload too short (%u bytes)",
            static_cast<unsigned long long>(offset), len));
      }
      const uint32_t oid = GetU32(payload);
      const uint32_t dims = GetU32(payload + 4);
      if (dims < 1 || dims > static_cast<uint32_t>(kMaxSpatialDims) ||
          len != InsertPayloadSize(static_cast<int>(dims))) {
        return Status::Corruption(StrFormat(
            "WAL insert record at offset %llu: dims %u / length %u "
            "inconsistent",
            static_cast<unsigned long long>(offset), dims, len));
      }
      Vec p0(static_cast<int>(dims));
      Vec p1(static_cast<int>(dims));
      const Interval time{GetF64(payload + 8), GetF64(payload + 16)};
      for (uint32_t i = 0; i < dims; ++i) {
        p0[static_cast<int>(i)] = GetF64(payload + 24 + 8 * i);
        p1[static_cast<int>(i)] = GetF64(payload + 24 + 8 * (dims + i));
      }
      rec->motion = MotionSegment(oid, StSegment(p0, p1, time));
      return Status::OK();
    }
    case WalRecordType::kCheckpoint: {
      if (len != 16) {
        return Status::Corruption(StrFormat(
            "WAL checkpoint record at offset %llu: payload length %u != 16",
            static_cast<unsigned long long>(offset), len));
      }
      rec->checkpoint_lsn = GetU64(payload);
      rec->checkpoint_segments = GetU64(payload + 8);
      return Status::OK();
    }
  }
  return Status::Corruption(StrFormat(
      "WAL record at offset %llu: unknown type %u",
      static_cast<unsigned long long>(offset),
      static_cast<unsigned>(rec->type)));
}

/// RAII wrapper over std::FILE (mirrors page_file.cc's).
class File {
 public:
  File(const char* path, const char* mode) : f_(std::fopen(path, mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

  long Size() {
    if (std::fseek(f_, 0, SEEK_END) != 0) return -1;
    const long size = std::ftell(f_);
    if (std::fseek(f_, 0, SEEK_SET) != 0) return -1;
    return size;
  }

 private:
  std::FILE* f_;
};

Status FlushFsync(std::FILE* f, const std::string& path, bool fsync) {
  if (std::fflush(f) != 0) {
    return Status::IOError("fflush failed on " + path);
  }
  if (fsync && ::fsync(::fileno(f)) != 0) {
    return Status::IOError("fsync failed on " + path);
  }
  return Status::OK();
}

/// Writes a fresh header-only log at `tmp` and renames it over `path`:
/// shared by log creation and Reset so both are atomic.
Status WriteFreshLog(const std::string& path, bool fsync) {
  const std::string tmp = path + ".tmp";
  {
    File f(tmp.c_str(), "wb");
    if (!f.ok()) {
      return Status::IOError("cannot open " + tmp + " for write");
    }
    std::vector<uint8_t> header;
    PutU64(&header, kWalMagic);
    PutU32(&header, kWalVersion);
    PutU32(&header, 0);  // reserved
    if (std::fwrite(header.data(), 1, header.size(), f.get()) !=
        header.size()) {
      return Status::IOError("short header write to " + tmp);
    }
    DQMO_RETURN_IF_ERROR(FlushFsync(f.get(), tmp, fsync));
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

}  // namespace

Result<WalScan> ScanWal(const std::string& path) {
  WalScan scan;
  File f(path.c_str(), "rb");
  if (!f.ok()) return scan;  // Absent log: nothing was ever acknowledged.
  const long fsize = f.Size();
  if (fsize < 0) return Status::IOError("cannot stat " + path);
  const size_t size = static_cast<size_t>(fsize);
  if (size < kWalHeaderSize) {
    // A crash can interrupt log creation mid-header; no record can have
    // been acknowledged from a log whose header never finished.
    scan.torn_bytes = size;
    scan.torn_tail = size > 0;
    return scan;
  }
  std::vector<uint8_t> data(size);
  if (std::fread(data.data(), 1, size, f.get()) != size) {
    return Status::IOError("short read from " + path);
  }
  if (GetU64(data.data()) != kWalMagic) {
    return Status::Corruption(path + " is not a DQMO WAL file");
  }
  const uint32_t version = GetU32(data.data() + 8);
  if (version != kWalVersion) {
    return Status::NotSupported(
        StrFormat("WAL version %u unsupported", version));
  }

  size_t offset = kWalHeaderSize;
  while (offset < size) {
    bool bad = false;
    uint32_t len = 0;
    if (offset + kRecordHeaderSize > size) {
      bad = true;  // Frame header cut off by EOF.
    } else {
      len = GetU32(data.data() + offset + 4);
      if (len > kMaxWalPayload ||
          offset + kRecordHeaderSize + len > size ||
          Crc32c(data.data() + offset + 4, kRecordHeaderSize - 4 + len) !=
              GetU32(data.data() + offset)) {
        bad = true;
      }
    }
    if (bad) {
      if (AnyValidRecordAfter(data.data(), size, offset)) {
        return Status::Corruption(StrFormat(
            "%s: corrupt WAL record at offset %zu with well-formed records "
            "after it — refusing to replay past a hole",
            path.c_str(), offset));
      }
      scan.torn_bytes = size - offset;
      scan.torn_tail = true;
      break;
    }
    WalRecord rec;
    rec.lsn = GetU64(data.data() + offset + 8);
    rec.type = static_cast<WalRecordType>(data[offset + 16]);
    DQMO_RETURN_IF_ERROR(DecodePayload(data.data() + offset +
                                           kRecordHeaderSize,
                                       len, offset, &rec));
    if (scan.last_lsn != 0 && rec.lsn != scan.last_lsn + 1) {
      return Status::Corruption(StrFormat(
          "%s: LSN discontinuity at offset %zu (%llu after %llu)",
          path.c_str(), offset, static_cast<unsigned long long>(rec.lsn),
          static_cast<unsigned long long>(scan.last_lsn)));
    }
    scan.last_lsn = rec.lsn;
    scan.records.push_back(std::move(rec));
    offset += kRecordHeaderSize + len;
  }
  scan.good_bytes = size - scan.torn_bytes;
  return scan;
}

Result<WalScanStats> ScanWalStreaming(const std::string& path) {
  WalScanStats stats;
  File f(path.c_str(), "rb");
  if (!f.ok()) return stats;  // Absent log: nothing was ever acknowledged.
  const long fsize = f.Size();
  if (fsize < 0) return Status::IOError("cannot stat " + path);
  const uint64_t size = static_cast<uint64_t>(fsize);
  if (size < kWalHeaderSize) {
    stats.torn_bytes = size;
    stats.torn_tail = size > 0;
    return stats;
  }
  uint8_t header[kWalHeaderSize];
  if (std::fread(header, 1, kWalHeaderSize, f.get()) != kWalHeaderSize) {
    return Status::IOError("short read from " + path);
  }
  if (GetU64(header) != kWalMagic) {
    return Status::Corruption(path + " is not a DQMO WAL file");
  }
  const uint32_t version = GetU32(header + 8);
  if (version != kWalVersion) {
    return Status::NotSupported(
        StrFormat("WAL version %u unsupported", version));
  }

  // One frame resident at a time. Only the torn-vs-hole look-ahead below
  // ever reads more, and only on a damaged log.
  std::vector<uint8_t> frame(kRecordHeaderSize + kMaxWalPayload);
  uint64_t offset = kWalHeaderSize;
  while (offset < size) {
    bool bad = false;
    uint32_t len = 0;
    if (offset + kRecordHeaderSize > size) {
      bad = true;  // Frame header cut off by EOF.
    } else {
      if (std::fread(frame.data(), 1, kRecordHeaderSize, f.get()) !=
          kRecordHeaderSize) {
        return Status::IOError("short read from " + path);
      }
      len = GetU32(frame.data() + 4);
      if (len > kMaxWalPayload || offset + kRecordHeaderSize + len > size) {
        bad = true;
      } else {
        if (len > 0 &&
            std::fread(frame.data() + kRecordHeaderSize, 1, len, f.get()) !=
                len) {
          return Status::IOError("short read from " + path);
        }
        bad = Crc32c(frame.data() + 4, kRecordHeaderSize - 4 + len) !=
              GetU32(frame.data());
      }
    }
    if (bad) {
      std::vector<uint8_t> rest(size - offset);
      if (std::fseek(f.get(), static_cast<long>(offset), SEEK_SET) != 0 ||
          std::fread(rest.data(), 1, rest.size(), f.get()) != rest.size()) {
        return Status::IOError("short read from " + path);
      }
      if (AnyValidRecordAfter(rest.data(), rest.size(), 0)) {
        return Status::Corruption(StrFormat(
            "%s: corrupt WAL record at offset %llu with well-formed records "
            "after it — refusing to replay past a hole",
            path.c_str(), static_cast<unsigned long long>(offset)));
      }
      stats.torn_bytes = size - offset;
      stats.torn_tail = true;
      break;
    }
    WalRecord rec;
    rec.lsn = GetU64(frame.data() + 8);
    rec.type = static_cast<WalRecordType>(frame[16]);
    DQMO_RETURN_IF_ERROR(
        DecodePayload(frame.data() + kRecordHeaderSize, len, offset, &rec));
    if (stats.last_lsn != 0 && rec.lsn != stats.last_lsn + 1) {
      return Status::Corruption(StrFormat(
          "%s: LSN discontinuity at offset %llu (%llu after %llu)",
          path.c_str(), static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(rec.lsn),
          static_cast<unsigned long long>(stats.last_lsn)));
    }
    if (stats.records == 0) stats.first_lsn = rec.lsn;
    stats.last_lsn = rec.lsn;
    ++stats.records;
    if (rec.type == WalRecordType::kInsert) {
      ++stats.inserts;
    } else {
      ++stats.checkpoints;
      stats.last_ckpt_lsn = rec.checkpoint_lsn;
      stats.last_ckpt_segments = rec.checkpoint_segments;
    }
    offset += kRecordHeaderSize + len;
  }
  stats.good_bytes = size - stats.torn_bytes;
  return stats;
}

WalWriter::~WalWriter() { Close(); }

Status WalWriter::Open(const std::string& path, IoStats* stats,
                       const Options& options) {
  Close();
  path_ = path;
  options_ = options;
  stats_ = stats;
  batch_.clear();
  pending_records_ = 0;

  DQMO_ASSIGN_OR_RETURN(WalScan scan, ScanWal(path));
  const bool exists = File(path.c_str(), "rb").ok();
  if (!exists || scan.good_bytes < kWalHeaderSize) {
    // Absent, zero-length, or so short even the header is torn: start
    // fresh so appends always land after a well-formed header.
    DQMO_RETURN_IF_ERROR(WriteFreshLog(path, options_.fsync));
  } else if (scan.torn_tail) {
    // Drop the torn record(s) before the first new append lands after
    // them; ::truncate keeps the good prefix in place.
    if (::truncate(path.c_str(),
                   static_cast<off_t>(scan.good_bytes)) != 0) {
      return Status::IOError("cannot truncate torn tail of " + path);
    }
  }
  next_lsn_ = scan.last_lsn + 1;
  if (next_lsn_ < options_.min_next_lsn) next_lsn_ = options_.min_next_lsn;
  synced_lsn_ = scan.last_lsn;

  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot open " + path + " for append");
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
  batch_.clear();
  pending_records_ = 0;
}

Result<uint64_t> WalWriter::AppendInsert(const MotionSegment& m) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::vector<uint8_t> payload;
  payload.reserve(InsertPayloadSize(m.seg.dims()));
  EncodeInsertPayload(m, &payload);
  const uint64_t lsn = next_lsn_++;
  EncodeRecord(lsn, WalRecordType::kInsert, payload, &batch_);
  ++pending_records_;
  if (stats_ != nullptr) {
    stats_->wal_appends.fetch_add(1, std::memory_order_relaxed);
  }
  WalMetrics::Get().appends->Add();
  return lsn;
}

Result<uint64_t> WalWriter::AppendCheckpoint(uint64_t checkpoint_lsn,
                                             uint64_t checkpoint_segments) {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::vector<uint8_t> payload;
  PutU64(&payload, checkpoint_lsn);
  PutU64(&payload, checkpoint_segments);
  const uint64_t lsn = next_lsn_++;
  EncodeRecord(lsn, WalRecordType::kCheckpoint, payload, &batch_);
  ++pending_records_;
  if (stats_ != nullptr) {
    stats_->wal_appends.fetch_add(1, std::memory_order_relaxed);
  }
  WalMetrics::Get().appends->Add();
  return lsn;
}

Status WalWriter::Sync() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  if (batch_.empty()) return Status::OK();
  const uint64_t tick = TickNs();
  Tracer::SpanScope span(SpanKind::kWalSync, batch_.size());
  CrashPoints::Hit(crash_points::kWalBeforeSync);
  if (CrashPoints::ConsumeHit(crash_points::kWalTornWrite)) {
    // Model a write torn by power loss: push roughly half the batch's
    // bytes all the way to the kernel, then die. Recovery must truncate
    // the cut record; nothing in this batch was acknowledged.
    const size_t half = batch_.size() / 2;
    if (half > 0) {
      std::fwrite(batch_.data(), 1, half, file_);
      std::fflush(file_);
      ::fsync(::fileno(file_));
    }
    CrashPoints::Die();
  }
  DQMO_RETURN_IF_ERROR(WriteRaw(batch_.data(), batch_.size()));
  DQMO_RETURN_IF_ERROR(FlushAndMaybeFsync());
  CrashPoints::Hit(crash_points::kWalAfterSync);
  synced_lsn_ = next_lsn_ - 1;
  WalMetrics& wm = WalMetrics::Get();
  wm.syncs->Add();
  wm.synced_bytes->Add(batch_.size());
  wm.sync_ns->RecordSince(tick);
  FlightRecorder::Record(FlightEventKind::kWalSync, -1, batch_.size());
  batch_.clear();
  pending_records_ = 0;
  if (stats_ != nullptr) {
    stats_->wal_syncs.fetch_add(1, std::memory_order_relaxed);
  }
  return Status::OK();
}

Status WalWriter::Reset() {
  if (file_ == nullptr) return Status::FailedPrecondition("WAL not open");
  std::fclose(file_);
  file_ = nullptr;
  batch_.clear();
  pending_records_ = 0;
  DQMO_RETURN_IF_ERROR(WriteFreshLog(path_, options_.fsync));
  file_ = std::fopen(path_.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("cannot reopen " + path_ + " after reset");
  }
  // The LSN sequence continues: next_lsn_ is untouched, and everything
  // assigned so far is contained in the checkpoint image the caller just
  // installed.
  synced_lsn_ = next_lsn_ - 1;
  return Status::OK();
}

Status WalWriter::WriteRaw(const uint8_t* data, size_t n) {
  if (std::fwrite(data, 1, n, file_) != n) {
    return Status::IOError("short WAL write to " + path_);
  }
  return Status::OK();
}

Status WalWriter::FlushAndMaybeFsync() {
  return FlushFsync(file_, path_, options_.fsync);
}

}  // namespace dqmo
