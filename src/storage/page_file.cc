#include "storage/page_file.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>

#include "common/metrics.h"
#include "common/string_util.h"
#include "storage/fault.h"
#include "storage/image_format.h"

namespace dqmo {
namespace {

/// Process-wide storage metrics (every PageFile instance aggregates; the
/// per-file IoStats remain the exact per-instance account).
struct StorageMetrics {
  Counter* reads;
  Counter* writes;
  Counter* checksum_failures;
  Histogram* save_ns;
  Histogram* load_ns;

  static StorageMetrics& Get() {
    static StorageMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return StorageMetrics{
          r.GetCounter("dqmo_storage_physical_reads_total",
                       "Physical page reads (the paper's disk accesses)"),
          r.GetCounter("dqmo_storage_physical_writes_total",
                       "Physical page writes"),
          r.GetCounter("dqmo_storage_checksum_failures_total",
                       "Page reads whose CRC32C trailer did not match"),
          r.GetHistogram("dqmo_storage_save_ns",
                         "PageFile::SaveTo latency (atomic checkpoint)"),
          r.GetHistogram("dqmo_storage_load_ns",
                         "PageFile::LoadFrom latency (verify included)"),
      };
    }();
    return m;
  }
};

/// RAII wrapper over std::FILE.
class File {
 public:
  File(const char* path, const char* mode) : f_(std::fopen(path, mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

/// Atomic view of one per-page flag byte. The flag vectors are plain
/// uint8_t storage; the read path touches them only through these helpers
/// so concurrent readers are race-free (std::atomic_ref, C++20).
inline uint8_t LoadFlag(const std::vector<uint8_t>& flags, PageId id) {
  // atomic_ref<const T> arrives only in C++26; cast away constness for the
  // load (the underlying byte is always mutable vector storage).
  return std::atomic_ref<uint8_t>(const_cast<uint8_t&>(flags[id]))
      .load(std::memory_order_acquire);
}

inline void StoreFlag(std::vector<uint8_t>& flags, PageId id, uint8_t v) {
  std::atomic_ref<uint8_t>(flags[id]).store(v, std::memory_order_release);
}

}  // namespace

void PageFile::MoveFrom(PageFile& other) {
  bytes_ = std::move(other.bytes_);
  dirty_ = std::move(other.dirty_);
  verified_ = std::move(other.verified_);
  dirty_pages_ = std::move(other.dirty_pages_);
  num_pages_ = other.num_pages_;
  verify_on_read_ = other.verify_on_read_;
  legacy_read_only_ = other.legacy_read_only_;
  stats_ = other.stats_;
  other.num_pages_ = 0;
}

Status PageFile::CheckId(PageId id) const {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("page %u out of range (file has %zu pages)", id,
                  num_pages_));
  }
  return Status::OK();
}

Status PageFile::CheckWritable() const {
  if (legacy_read_only_) {
    return Status::FailedPrecondition(
        "legacy (v1) page file is read-only; re-save to upgrade to v2");
  }
  return Status::OK();
}

PageId PageFile::Allocate() {
  bytes_.resize(bytes_.size() + kPageSize, 0);
  dirty_.push_back(1);  // Zeroed page: trailer not yet a valid checksum.
  verified_.push_back(0);
  const PageId id = static_cast<PageId>(num_pages_++);
  dirty_pages_.push_back(id);
  return id;
}

void PageFile::SealIfDirty(PageId id) {
  if (LoadFlag(dirty_, id) == 0) return;
  // Serialize sealing: when two readers hit the same lazily-dirty page,
  // exactly one recomputes the trailer; the other waits and sees the clean
  // flag (release/acquire on the flag orders the trailer bytes).
  std::lock_guard<std::mutex> lock(seal_mu_);
  if (LoadFlag(dirty_, id) == 0) return;
  SealPage(PageData(id));
  StoreFlag(verified_, id, 1);  // Freshly sealed: consistent by construction.
  StoreFlag(dirty_, id, 0);
}

void PageFile::SealAllDirty() {
  for (PageId id : dirty_pages_) SealIfDirty(id);
  dirty_pages_.clear();
}

Status PageFile::Publish() {
  SealAllDirty();
  for (PageId id = 0; id < num_pages_; ++id) {
    if (LoadFlag(verified_, id) != 0) continue;
    if (!PageChecksumOk(PageData(id))) {
      ++stats_.checksum_failures;
      return Status::Corruption(StrFormat(
          "page %u checksum mismatch (stored %08x, computed %08x)", id,
          StoredPageChecksum(PageData(id)),
          ComputePageChecksum(PageData(id))));
    }
    StoreFlag(verified_, id, 1);
  }
  return Status::OK();
}

Result<PageReader::ReadResult> PageFile::Read(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  stats_.physical_reads.fetch_add(1, std::memory_order_relaxed);
  StorageMetrics::Get().reads->Add();
  SealIfDirty(id);
  const uint8_t* data = PageData(id);
  // Verify-once: a page is checked when it enters memory untrusted (an
  // unverified load) and trusted until its bytes change — the block-cache
  // model. Steady-state reads pay only this flag load; racing verifiers
  // both hash the (immutable) bytes and both publish the same flag.
  if (verify_on_read_ && LoadFlag(verified_, id) == 0) {
    if (!PageChecksumOk(data)) {
      ++stats_.checksum_failures;
      StorageMetrics::Get().checksum_failures->Add();
      return Status::Corruption(
          StrFormat("page %u checksum mismatch (stored %08x, computed %08x)",
                    id, StoredPageChecksum(data), ComputePageChecksum(data)));
    }
    StoreFlag(verified_, id, 1);
  }
  return ReadResult{data, /*physical=*/true};
}

Status PageFile::Write(PageId id, const uint8_t* data) {
  DQMO_RETURN_IF_ERROR(CheckWritable());
  DQMO_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(PageData(id), data, kPageSize);
  SealPage(PageData(id));
  StoreFlag(verified_, id, 1);
  StoreFlag(dirty_, id, 0);
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  StorageMetrics::Get().writes->Add();
  return Status::OK();
}

Result<PageView> PageFile::WritableView(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckWritable());
  DQMO_RETURN_IF_ERROR(CheckId(id));
  stats_.physical_writes.fetch_add(1, std::memory_order_relaxed);
  StorageMetrics::Get().writes->Add();
  if (LoadFlag(dirty_, id) == 0) {
    StoreFlag(dirty_, id, 1);  // Sealed lazily before the next read/save.
    dirty_pages_.push_back(id);
  }
  StoreFlag(verified_, id, 0);
  return PageView(PageData(id), kPageSize);
}

Status PageFile::CorruptPageForTest(PageId id, size_t offset, uint8_t mask) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  if (offset >= kPageSize) {
    return Status::InvalidArgument("corruption offset past page end");
  }
  SealIfDirty(id);  // Damage the sealed form; sealing must not heal it.
  PageData(id)[offset] ^= mask;
  StoreFlag(verified_, id, 0);
  return Status::OK();
}

Status PageFile::VerifyPage(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  SealIfDirty(id);
  const uint8_t* data = PageData(id);
  // Scrub semantics: always recompute, never trust the verified_ cache.
  if (!PageChecksumOk(data)) {
    ++stats_.checksum_failures;
    return Status::Corruption(
        StrFormat("page %u checksum mismatch (stored %08x, computed %08x)",
                  id, StoredPageChecksum(data), ComputePageChecksum(data)));
  }
  StoreFlag(verified_, id, 1);
  return Status::OK();
}

size_t PageFile::VerifyAllPages(std::vector<PageId>* bad) {
  size_t corrupt = 0;
  for (PageId id = 0; id < num_pages_; ++id) {
    SealIfDirty(id);
    if (PageChecksumOk(PageData(id))) {
      StoreFlag(verified_, id, 1);
    } else {
      ++corrupt;
      if (bad != nullptr) bad->push_back(id);
    }
  }
  return corrupt;
}

Status PageFile::SaveTo(const std::string& path) {
  ScopedLatencyTimer timer(StorageMetrics::Get().save_ns);
  for (PageId id = 0; id < num_pages_; ++id) SealIfDirty(id);
  dirty_pages_.clear();
  // Write-to-temp + fsync + rename: the previous image at `path` stays
  // intact (and loadable) until the new one is complete and durable. A
  // crash anywhere in between leaves at worst a stale .tmp to ignore;
  // writing `path` directly would truncate the old checkpoint before the
  // new one exists.
  const std::string tmp = path + ".tmp";
  {
    File f(tmp.c_str(), "wb");
    if (!f.ok()) {
      return Status::IOError("cannot open " + tmp + " for write");
    }
    PgfHeader header{kPgfMagic, kPgfVersion, 0, num_pages_};
    if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) {
      return Status::IOError("short header write to " + tmp);
    }
    if (num_pages_ > 0 &&
        std::fwrite(bytes_.data(), kPageSize, num_pages_, f.get()) !=
            num_pages_) {
      return Status::IOError("short page write to " + tmp);
    }
    if (std::fflush(f.get()) != 0) {
      return Status::IOError("fflush failed on " + tmp);
    }
    if (::fsync(::fileno(f.get())) != 0) {
      return Status::IOError("fsync failed on " + tmp);
    }
  }
  CrashPoints::Hit(crash_points::kSaveBeforeRename);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("cannot rename " + tmp + " over " + path);
  }
  return Status::OK();
}

Status PageFile::LoadFrom(const std::string& path,
                          const LoadOptions& options) {
  ScopedLatencyTimer timer(StorageMetrics::Get().load_ns);
  // Stream the image through the shared loader: checksums are verified
  // page-at-a-time as pages arrive, so a corrupt page fails the load after
  // O(1) extra memory (the loader's single page buffer), not after the
  // whole image has been materialized. The destination vector is still
  // sized up front from the validated header — PageFile is the in-memory
  // backend — but verification no longer depends on that residency; the
  // same loader backs DiskPageFile and the tool's bounded-memory scrub.
  std::vector<uint8_t> bytes;
  bool legacy = false;
  StreamPgfOptions stream;
  stream.verify_checksums = options.verify_checksums;
  stream.on_header = [&](const PgfHeader& header) {
    legacy = header.version == kPgfVersionLegacy;
    bytes.resize(header.num_pages * kPageSize);
    return Status::OK();
  };
  auto streamed = StreamPgfPages(
      path, stream, [&](uint64_t id, const uint8_t* page) {
        uint8_t* dst = bytes.data() + id * kPageSize;
        std::memcpy(dst, page, kPageSize);
        // v1 pages carry no checksum; their trailer bytes were zeroed
        // slack. Seal them in memory so subsequent reads verify uniformly.
        if (legacy) SealPage(dst);
        return Status::OK();
      });
  if (!streamed.ok()) {
    if (streamed.status().IsCorruption()) ++stats_.checksum_failures;
    return streamed.status();
  }
  bytes_ = std::move(bytes);
  num_pages_ = streamed.value().header.num_pages;
  dirty_.assign(num_pages_, 0);
  dirty_pages_.clear();
  // Legacy pages were sealed during the stream (consistent by
  // construction) and v2/v3 pages were verified unless the caller opted
  // out — only the opt-out leaves pages untrusted, to be verified on
  // first read.
  verified_.assign(num_pages_,
                   (legacy || options.verify_checksums) ? 1 : 0);
  legacy_read_only_ = legacy;
  stats_.Reset();
  return Status::OK();
}

}  // namespace dqmo
