#include "storage/page_file.h"

#include <cstdio>
#include <cstring>

#include "common/string_util.h"

namespace dqmo {
namespace {

constexpr uint64_t kMagic = 0x4451'4d4f'5047'4631ULL;  // "DQMOPGF1"
constexpr uint32_t kVersion = 1;

struct FileHeader {
  uint64_t magic;
  uint32_t version;
  uint32_t reserved;
  uint64_t num_pages;
};
static_assert(sizeof(FileHeader) == 24);

/// RAII wrapper over std::FILE.
class File {
 public:
  File(const char* path, const char* mode) : f_(std::fopen(path, mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

}  // namespace

Status PageFile::CheckId(PageId id) const {
  if (id >= num_pages_) {
    return Status::OutOfRange(
        StrFormat("page %u out of range (file has %zu pages)", id,
                  num_pages_));
  }
  return Status::OK();
}

PageId PageFile::Allocate() {
  bytes_.resize(bytes_.size() + kPageSize, 0);
  return static_cast<PageId>(num_pages_++);
}

Result<PageReader::ReadResult> PageFile::Read(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  ++stats_.physical_reads;
  return ReadResult{bytes_.data() + static_cast<size_t>(id) * kPageSize,
                    /*physical=*/true};
}

Status PageFile::Write(PageId id, const uint8_t* data) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  std::memcpy(bytes_.data() + static_cast<size_t>(id) * kPageSize, data,
              kPageSize);
  ++stats_.physical_writes;
  return Status::OK();
}

Result<PageView> PageFile::WritableView(PageId id) {
  DQMO_RETURN_IF_ERROR(CheckId(id));
  ++stats_.physical_writes;
  return PageView(bytes_.data() + static_cast<size_t>(id) * kPageSize,
                  kPageSize);
}

Status PageFile::SaveTo(const std::string& path) const {
  File f(path.c_str(), "wb");
  if (!f.ok()) return Status::IOError("cannot open " + path + " for write");
  FileHeader header{kMagic, kVersion, 0, num_pages_};
  if (std::fwrite(&header, sizeof(header), 1, f.get()) != 1) {
    return Status::IOError("short header write to " + path);
  }
  if (num_pages_ > 0 &&
      std::fwrite(bytes_.data(), kPageSize, num_pages_, f.get()) !=
          num_pages_) {
    return Status::IOError("short page write to " + path);
  }
  return Status::OK();
}

Status PageFile::LoadFrom(const std::string& path) {
  File f(path.c_str(), "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path + " for read");
  FileHeader header{};
  if (std::fread(&header, sizeof(header), 1, f.get()) != 1) {
    return Status::Corruption("short header read from " + path);
  }
  if (header.magic != kMagic) {
    return Status::Corruption(path + " is not a DQMO page file");
  }
  if (header.version != kVersion) {
    return Status::NotSupported(
        StrFormat("page file version %u unsupported", header.version));
  }
  std::vector<uint8_t> bytes(header.num_pages * kPageSize);
  if (header.num_pages > 0 &&
      std::fread(bytes.data(), kPageSize, header.num_pages, f.get()) !=
          header.num_pages) {
    return Status::Corruption("short page read from " + path);
  }
  bytes_ = std::move(bytes);
  num_pages_ = header.num_pages;
  stats_.Reset();
  return Status::OK();
}

}  // namespace dqmo
