// Prefetcher: speculative page reads driven by the query's own declared
// future — PDQ/kNN peek the next k entries of their priority queues, NPDQ
// its recursion frontier, and hand those page ids here; the Prefetcher
// issues async reads (storage/async_io.h) that land while the traversal
// chews on the current node. By the time the traversal pops the next entry,
// its page is (ideally) already resident: the disk latency was hidden
// behind CPU work instead of serialized after it.
//
// Position in the read chain — at the BOTTOM, directly over the
// DiskPageFile:
//
//   BufferPool -> [breaker -> retry -> hedge -> faulty] -> Prefetcher -> disk
//
// Everything above sees one PageReader and stays byte-identical: the
// FaultyPageReader still draws its synchronous fault stream in consumption
// order (chaos_test determinism), while the Prefetcher's speculative reads
// draw from FaultInjector::NextAsyncRead — a separate seeded stream that
// never shifts the synchronous one.
//
// Accounting (the differential-test contract, tests/disk_backend_test.cc):
//   * Hint charges prefetch_issued at submit.
//   * A consumed landing charges prefetch_hits + the one physical_read the
//     store would have charged synchronously — hits are counted exactly
//     once, and node-level read counts stay identical to the memory
//     backend.
//   * A discarded landing (cancel, shed, quiesce) charges prefetch_wasted +
//     physical_read (the disk really was read).
//   * A failed speculative read charges nothing and the consumer falls
//     through to the synchronous path — same observable behaviour as if
//     the hint had never been issued; the frame is never poisoned.
#ifndef DQMO_STORAGE_PREFETCH_H_
#define DQMO_STORAGE_PREFETCH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/trace.h"
#include "common/types.h"
#include "storage/disk_file.h"
#include "storage/page_store.h"

namespace dqmo {

class FaultInjector;

/// Default speculative depth; overridden by DQMO_PREFETCH_DEPTH.
size_t PrefetchDepthFromEnv();

class Prefetcher : public PageReader {
 public:
  struct Options {
    /// Max speculative reads outstanding (landed + in flight). Also sizes
    /// the async queue.
    size_t depth = 8;
    /// Optional fault plane: speculative reads draw decisions from
    /// injector->NextAsyncRead at submit (deterministic order); kSlow
    /// delays are served at consumption through `sleeper`, so a seeded
    /// slow-read storm delays async completions exactly like sync reads.
    /// May be swapped later via set_injector (under shard exclusion, like
    /// FaultyPageReader::set_injector).
    FaultInjector* injector = nullptr;
    /// Serves injected completion delays (microseconds); null sleeps for
    /// real. Injectable so latency-fault tests stay sleep-free.
    std::function<void(uint64_t delay_us)> sleeper;
  };

  /// `file` is not owned and must outlive the Prefetcher. The async queue
  /// is created from the file's configured backend (uring degrades to the
  /// thread queue automatically).
  Prefetcher(DiskPageFile* file, const Options& options);
  ~Prefetcher() override;

  Prefetcher(const Prefetcher&) = delete;
  Prefetcher& operator=(const Prefetcher&) = delete;

  /// Reads `id`, consuming a landed speculative read when one exists (the
  /// hit path), waiting for it when still in flight, or falling through to
  /// the synchronous store read (miss / failed speculation). Same result
  /// and error surface as DiskPageFile::Read.
  Result<ReadResult> Read(PageId id) override;

  /// Charging hook: called once per speculative read about to be issued;
  /// returning false skips it (and stops this Hint call). The query layer
  /// passes QueryBudget::TryChargePrefetch through this — a function, not
  /// the type, so storage stays below query in the layering.
  using ChargeFn = std::function<bool()>;

  /// Declares the traversal's next page ids (most-imminent first). Issues
  /// speculative reads for ids not already tracked, up to the depth bound,
  /// each charged through `charge` (null: unbudgeted). Dirty-framed,
  /// out-of-range, and duplicate ids are skipped. Best-effort and cheap to
  /// call every pop.
  void Hint(const PageId* ids, size_t n, const ChargeFn& charge = nullptr);
  void Hint(const std::vector<PageId>& ids,
            const ChargeFn& charge = nullptr) {
    Hint(ids.data(), ids.size(), charge);
  }

  /// Discards every tracked speculation (landed ones charge wasted;
  /// in-flight ones are marked canceled and discarded on completion).
  /// Called when a frame is shed or a session canceled. Returns the number
  /// of entries discarded or doomed.
  size_t CancelPending();

  /// Blocks until nothing is in flight, discarding all landings as wasted.
  /// After Quiesce: issued == hits + wasted + failed.
  void Quiesce();

  /// Swaps the async fault plane (null disarms). Requires the same
  /// exclusion as FaultyPageReader::set_injector.
  void set_injector(FaultInjector* injector);
  FaultInjector* injector() const { return options_.injector; }

  size_t depth() const { return options_.depth; }
  /// Entries currently tracked (landed + in flight); test introspection.
  size_t tracked() const;
  /// Speculative reads that failed (I/O error or injected) so far.
  uint64_t failed() const;
  const char* queue_name() const { return queue_->name(); }

 private:
  enum class EntryState : uint8_t { kInflight, kLanded, kFailed };

  struct Entry {
    AlignedPageBuf buf;
    EntryState state = EntryState::kInflight;
    uint64_t tag = 0;
    uint64_t delay_us = 0;  // Injected completion delay, served at consume.
    bool inject_fail = false;  // Decision drawn at submit: fail on landing.
    bool canceled = false;     // Discard (as wasted) when it completes.
    // Causal attribution: the armed frame (if any) whose traversal hinted
    // this page, the shard it was hinted under, and the submit tick. A
    // consumed or discarded speculation reports a kPrefetchRead /
    // kPrefetchWaste span back into that frame's merged tree; if the frame
    // already closed, the span counts as an orphan instead of vanishing.
    Tracer::FrameHandle trace;
    int16_t shard = -1;
    uint64_t submit_ns = 0;
  };

  /// Drains queue completions into the table. mu_ held.
  size_t ReapLocked(bool block);
  /// Charges a wasted discard (physical_read + prefetch_wasted) and reports
  /// the entry's kPrefetchWaste span to its hinting frame. mu_ held.
  void ChargeWasted(const Entry& entry, PageId id);
  /// Removes `it`'s entry. mu_ held.
  void EraseLocked(std::unordered_map<PageId, Entry>::iterator it);
  uint8_t* ThreadScratch();

  DiskPageFile* file_;
  Options options_;
  std::unique_ptr<AsyncReadQueue> queue_;

  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> table_;
  std::unordered_map<uint64_t, PageId> tag_to_page_;
  uint64_t next_tag_ = 1;
  uint64_t failed_ = 0;
  std::vector<AsyncCompletion> reap_scratch_;

  mutable std::mutex scratch_mu_;
  std::unordered_map<std::thread::id, AlignedPageBuf> scratch_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PREFETCH_H_
