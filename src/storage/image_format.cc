#include "storage/image_format.h"

#include <cstring>
#include <vector>

#include "common/string_util.h"

namespace dqmo {
namespace {

/// RAII wrapper over std::FILE for the streaming reader.
class File {
 public:
  File(const char* path, const char* mode) : f_(std::fopen(path, mode)) {}
  ~File() {
    if (f_ != nullptr) std::fclose(f_);
  }
  File(const File&) = delete;
  File& operator=(const File&) = delete;

  bool ok() const { return f_ != nullptr; }
  std::FILE* get() { return f_; }

 private:
  std::FILE* f_;
};

long FileSize(std::FILE* f) {
  if (std::fseek(f, 0, SEEK_END) != 0) return -1;
  const long size = std::ftell(f);
  if (std::fseek(f, 0, SEEK_SET) != 0) return -1;
  return size;
}

}  // namespace

Result<PgfHeader> ReadPgfHeader(std::FILE* f, const std::string& path) {
  const long file_size = FileSize(f);
  if (file_size < 0) return Status::IOError("cannot stat " + path);
  PgfHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    return Status::Corruption("short header read from " + path);
  }
  if (header.magic != kPgfMagic) {
    return Status::Corruption(path + " is not a DQMO page file");
  }
  if (header.version != kPgfVersion && header.version != kPgfVersionLegacy &&
      header.version != kPgfVersionAligned) {
    return Status::NotSupported(
        StrFormat("page file version %u unsupported", header.version));
  }
  // Never size anything from the header before sanity-checking it against
  // reality: a corrupt count must not drive a huge allocation or let a
  // truncated file masquerade as intact.
  if (header.num_pages > kMaxLoadablePages) {
    return Status::Corruption(
        StrFormat("%s: absurd page count %llu in header", path.c_str(),
                  static_cast<unsigned long long>(header.num_pages)));
  }
  const uint64_t expected_size =
      PgfDataOffset(header.version) + header.num_pages * kPageSize;
  if (static_cast<uint64_t>(file_size) != expected_size) {
    return Status::Corruption(StrFormat(
        "%s: header claims %llu pages (%llu bytes) but file is %ld bytes "
        "(%s at offset %ld)",
        path.c_str(), static_cast<unsigned long long>(header.num_pages),
        static_cast<unsigned long long>(expected_size), file_size,
        static_cast<uint64_t>(file_size) < expected_size ? "truncated"
                                                         : "trailing data",
        file_size));
  }
  if (std::fseek(f, static_cast<long>(PgfDataOffset(header.version)),
                 SEEK_SET) != 0) {
    return Status::IOError("cannot seek to page data in " + path);
  }
  return header;
}

Result<StreamPgfResult> StreamPgfPages(const std::string& path,
                                       const StreamPgfOptions& options,
                                       const PgfPageSink& sink) {
  File f(path.c_str(), "rb");
  if (!f.ok()) return Status::IOError("cannot open " + path + " for read");
  auto header_or = ReadPgfHeader(f.get(), path);
  if (!header_or.ok()) return header_or.status();
  StreamPgfResult result;
  result.header = header_or.value();
  if (options.on_header) {
    Status s = options.on_header(result.header);
    if (!s.ok()) return s;
  }
  const bool verify = options.verify_checksums &&
                      result.header.version != kPgfVersionLegacy;
  // One page resident at a time: the whole point. An image far larger than
  // RAM verifies in constant memory.
  std::vector<uint8_t> page(kPageSize);
  for (uint64_t id = 0; id < result.header.num_pages; ++id) {
    if (std::fread(page.data(), kPageSize, 1, f.get()) != 1) {
      return Status::Corruption(
          StrFormat("short page read from %s at page %llu", path.c_str(),
                    static_cast<unsigned long long>(id)));
    }
    if (verify && !PageChecksumOk(page.data())) {
      ++result.corrupt_pages;
      if (!options.continue_on_corruption) {
        return Status::Corruption(StrFormat(
            "%s: page %llu checksum mismatch at file offset %llu "
            "(stored %08x, computed %08x)",
            path.c_str(), static_cast<unsigned long long>(id),
            static_cast<unsigned long long>(
                PgfDataOffset(result.header.version) + id * kPageSize),
            StoredPageChecksum(page.data()),
            ComputePageChecksum(page.data())));
      }
    }
    if (sink) {
      Status s = sink(id, page.data());
      if (!s.ok()) return s;
    }
    ++result.pages_streamed;
  }
  return result;
}

}  // namespace dqmo
