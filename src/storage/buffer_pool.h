// LRU buffer pool over a PageFile.
//
// The paper argues (Sect. 4) that a server-side LRU buffer cannot replace
// dynamic-query processing: per-session buffers shrink server capacity and
// still ship redundant data to clients. We implement the pool anyway so the
// claim can be measured (bench/abl_lru_naive) instead of taken on faith.
#ifndef DQMO_STORAGE_BUFFER_POOL_H_
#define DQMO_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "storage/page_file.h"

namespace dqmo {

/// Fixed-capacity LRU page cache implementing PageReader. Reads served from
/// cache are *not* physical reads; misses fetch from the underlying file
/// (one disk access) and evict the least-recently-used frame if full.
class BufferPool : public PageReader {
 public:
  /// `capacity_pages` must be >= 1. The pool does not own `file`.
  BufferPool(PageFile* file, size_t capacity_pages);

  /// Interposes `source` (not owned; nullptr to remove) between the pool
  /// and the file: misses fetch through it instead of the file directly.
  /// Used to route misses through the fault-tolerance wrappers in
  /// storage/fault.h. Because such a source may hand back bytes the
  /// PageFile never verified (FaultyPageReader corrupts *after* the file's
  /// own check), the pool verifies the checksum of every page fetched
  /// through a source before caching it — a corrupt page must not be
  /// laundered into a "clean" cache hit.
  void set_source(PageReader* source) { source_ = source; }

  Result<ReadResult> Read(PageId id) override;

  /// Drops every cached frame (e.g. between experiment repetitions).
  void Clear();

  /// Invalidates one page (called after an in-place page update so stale
  /// cached bytes are not served).
  void Invalidate(PageId id);

  size_t capacity() const { return capacity_; }
  size_t cached_pages() const { return frames_.size(); }

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> bytes;
  };

  PageFile* file_;
  PageReader* source_ = nullptr;
  size_t capacity_;
  // LRU order: front = most recent. map points into the list.
  std::list<Frame> frames_;
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_BUFFER_POOL_H_
