// LRU buffer pool over a PageFile.
//
// The paper argues (Sect. 4) that a server-side LRU buffer cannot replace
// dynamic-query processing: per-session buffers shrink server capacity and
// still ship redundant data to clients. We implement the pool anyway so the
// claim can be measured (bench/abl_lru_naive) instead of taken on faith —
// and, sharded, it is the shared page cache of the concurrent query engine
// (server/executor.h).
#ifndef DQMO_STORAGE_BUFFER_POOL_H_
#define DQMO_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "storage/page_file.h"

namespace dqmo {

/// Fixed-capacity LRU page cache implementing PageReader. Reads served from
/// cache are *not* physical reads; misses fetch from the underlying file
/// (one disk access) and evict the least-recently-used frame if full.
///
/// Thread safety: the pool is sharded N ways — PageId hashes to a shard,
/// each shard has its own mutex, LRU list and index, and the hit/miss
/// counters are atomic — so concurrent readers contend only when they touch
/// the same shard. With num_shards == 1 (the default) the pool is a single
/// exact LRU, byte-for-byte the paper's Sect. 4 buffer; sharding divides
/// the capacity evenly and makes eviction LRU *per shard*, the standard
/// server trade (global LRU order is given up for lock spreading).
///
/// Read() returns a pointer into a per-thread scratch page: it stays valid
/// until the calling thread's next BufferPool read (on any pool), never
/// invalidated by other threads' evictions. Callers in this codebase
/// deserialize immediately, which is always safe.
class BufferPool : public PageReader {
 public:
  /// `capacity_pages` must be >= 1. The pool does not own `file`.
  /// `num_shards` must be >= 1 and is clamped to `capacity_pages` (each
  /// shard needs at least one frame).
  BufferPool(PageStore* file, size_t capacity_pages, int num_shards = 1);

  /// Interposes `source` (not owned; nullptr to remove) between the pool
  /// and the file: misses fetch through it instead of the file directly.
  /// Used to route misses through the fault-tolerance wrappers in
  /// storage/fault.h. Because such a source may hand back bytes the
  /// PageFile never verified (FaultyPageReader corrupts *after* the file's
  /// own check), the pool verifies the checksum of every page fetched
  /// through a source before caching it — a corrupt page must not be
  /// laundered into a "clean" cache hit. Not thread-safe: set it before
  /// readers start. (The fault wrappers themselves are single-threaded.)
  void set_source(PageReader* source) { source_ = source; }

  Result<ReadResult> Read(PageId id) override;

  /// Drops every cached frame (e.g. between experiment repetitions).
  /// Requires exclusion from concurrent readers.
  void Clear();

  /// Invalidates one page (called after an in-place page update so stale
  /// cached bytes are not served). Call from the writer while readers are
  /// excluded (the TreeGate write section).
  void Invalidate(PageId id);

  size_t capacity() const { return capacity_; }
  int num_shards() const { return num_shards_; }
  size_t cached_pages() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Frame {
    PageId id;
    std::vector<uint8_t> bytes;
  };

  /// One lock domain: an exact LRU over its slice of the capacity.
  struct Shard {
    mutable std::mutex mu;
    // LRU order: front = most recent. map points into the list.
    std::list<Frame> frames;
    std::unordered_map<PageId, std::list<Frame>::iterator> index;
  };

  Shard& ShardFor(PageId id) {
    // Fibonacci multiplicative hash: consecutive page ids (tree nodes laid
    // out in allocation order) spread across shards instead of clustering.
    const uint64_t h = static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL;
    return shards_[(h >> 32) % static_cast<uint64_t>(num_shards_)];
  }

  PageStore* file_;
  PageReader* source_ = nullptr;
  size_t capacity_;
  size_t shard_capacity_;
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_BUFFER_POOL_H_
