// DiskPageFile: the disk-resident PageStore — pages live in a real file and
// reads are real pread(2) calls, so the paper's I/O counts finally have
// milliseconds attached (bench/abl_disk.cc).
//
// File layout (image format v3, storage/image_format.h): a PgfHeader padded
// to one full 4 KiB block, then the pages. Every page therefore sits at a
// 4 KiB-aligned file offset — the alignment O_DIRECT demands and io_uring
// reads prefer. v2 images (24-byte header) open too, for compatibility with
// PageFile::SaveTo checkpoints; their unaligned layout disables O_DIRECT.
//
// Memory model: reads are served from a small per-thread aligned scratch
// buffer (no page cache of its own — the BufferPool above provides caching,
// and DQMO_PAGE_BUDGET_MB sizes pool + store together). Writes land in a
// bounded dirty-frame table; when it overflows its budget the oldest frame
// is sealed and written back (FIFO), and SealAllDirty/Publish/SaveTo flush
// everything. Accounting is deliberately identical to the in-memory
// PageFile: every Read charges one physical read — even when served from a
// dirty frame — and every Write/WritableView one physical write, so
// node-level I/O counts are byte-identical across backends (the
// differential sweep in tests/disk_backend_test.cc holds this line).
//
// Threading: same contract as PageFile (see page_store.h) — concurrent
// Read calls race only on atomic flags and scratch buffers keyed by thread;
// all mutations require the TreeGate's exclusion.
#ifndef DQMO_STORAGE_DISK_FILE_H_
#define DQMO_STORAGE_DISK_FILE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/async_io.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace dqmo {

/// 4 KiB-aligned heap buffer (posix_memalign), the shape O_DIRECT and
/// io_uring transfers require. Move-only.
class AlignedPageBuf {
 public:
  AlignedPageBuf();
  ~AlignedPageBuf();
  AlignedPageBuf(AlignedPageBuf&& other) noexcept : data_(other.data_) {
    other.data_ = nullptr;
  }
  AlignedPageBuf& operator=(AlignedPageBuf&& other) noexcept;
  AlignedPageBuf(const AlignedPageBuf&) = delete;
  AlignedPageBuf& operator=(const AlignedPageBuf&) = delete;

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }

 private:
  uint8_t* data_;
};

class DiskPageFile : public PageStore {
 public:
  struct Options {
    /// Async machinery for this store's prefetch queues (kPread/kUring;
    /// kMemory is treated as kPread — a DiskPageFile is disk by
    /// definition).
    IoBackend backend = IoBackend::kPread;
    /// Open the file O_DIRECT (v3 images only; silently ignored for v2,
    /// whose 24-byte header misaligns every page, and downgraded when the
    /// filesystem refuses the flag).
    bool o_direct = false;
    /// Dirty frames resident before the oldest is written back (FIFO).
    /// This is the store's share of DQMO_PAGE_BUDGET_MB; 0 means a
    /// minimal working set of one frame.
    size_t dirty_frame_budget = 256;
    /// Deterministic slow-device model (bench/abl_disk.cc's cold-cache
    /// knob, not a production setting): every pread costs this much extra,
    /// served in the caller thread on synchronous reads and in the async
    /// queue's workers on speculative reads — so prefetch can genuinely
    /// hide it, exactly like real device latency. Dirty-frame hits are
    /// memory and stay free. 0 disables.
    uint64_t sim_read_delay_us = 0;
  };

  ~DiskPageFile() override;
  DiskPageFile(const DiskPageFile&) = delete;
  DiskPageFile& operator=(const DiskPageFile&) = delete;

  /// Creates a fresh, empty v3 file at `path` (truncating any existing
  /// file) and opens it.
  static Result<std::unique_ptr<DiskPageFile>> Create(
      const std::string& path, const Options& options);

  /// Opens an existing v2/v3 image at `path` read-write. Pages are
  /// stream-verified during open (the shared image_format loader), so a
  /// corrupt image fails here, not mid-query.
  static Result<std::unique_ptr<DiskPageFile>> Open(
      const std::string& path, const Options& options);

  /// Builds a live v3 file at `live_path` from the checkpoint image at
  /// `image_path` (stream-verified, O(1) memory) and opens it. The live
  /// file is a disposable working copy: DurableIndex rebuilds it from the
  /// durable image on every open, so a crash mid-build costs nothing.
  static Result<std::unique_ptr<DiskPageFile>> CreateFromImage(
      const std::string& live_path, const std::string& image_path,
      const Options& options);

  /// Rebuilds this store's file in place from `image_path`, discarding all
  /// current pages and dirty frames. The object's address is stable across
  /// the reload — exactly what DurableIndex::ReloadFromDisk needs, since
  /// tree/pool/gate all hold this pointer. Requires exclusion from
  /// readers.
  Status ReloadFromImage(const std::string& image_path);

  // PageStore interface.
  PageId Allocate() override;
  size_t num_pages() const override { return num_pages_; }
  Result<ReadResult> Read(PageId id) override;
  Status Write(PageId id, const uint8_t* data) override;
  Result<PageView> WritableView(PageId id) override;
  void SealAllDirty() override;
  const std::vector<PageId>& dirty_page_ids() const override {
    return dirty_pages_;
  }
  Status Publish() override;
  Status VerifyPage(PageId id) override;
  size_t VerifyAllPages(std::vector<PageId>* bad) override;
  Status SaveTo(const std::string& path) override;
  Status CorruptPageForTest(PageId id, size_t offset, uint8_t mask) override;
  void set_verify_on_read(bool verify) override { verify_on_read_ = verify; }
  bool verify_on_read() const override { return verify_on_read_; }
  const IoStats& stats() const override { return stats_; }
  IoStats* mutable_stats() override { return &stats_; }
  void ResetStats() override { stats_.Reset(); }

  // Disk-specific surface (the Prefetcher rides on these).

  const std::string& path() const { return path_; }
  int fd() const { return fd_; }
  IoBackend backend() const { return backend_; }
  bool o_direct() const { return o_direct_; }

  /// File offset of page `id`'s first byte.
  uint64_t PageOffset(PageId id) const {
    return data_offset_ + static_cast<uint64_t>(id) * kPageSize;
  }

  /// Builds an AsyncReadQueue over this store's fd for `depth` in-flight
  /// reads, using the store's configured backend (uring degrades to the
  /// thread queue when unavailable) and slow-device model.
  std::unique_ptr<AsyncReadQueue> MakeReadQueue(size_t depth) const {
    return CreateAsyncReadQueue(backend_, fd_, depth, sim_read_delay_us_);
  }

  /// True when `id` currently has an unflushed dirty frame — its on-disk
  /// bytes are stale, so speculative disk reads of it must be skipped.
  bool HasDirtyFrame(PageId id) const;

  /// Verify-once bookkeeping shared with the Prefetcher: prefetched bytes
  /// bypass Read, so the consumer applies the same first-read checksum
  /// policy through these.
  bool PageVerified(PageId id) const;
  void MarkPageVerified(PageId id);

  /// Dirty frames currently resident (test/introspection).
  size_t resident_dirty_frames() const { return frames_.size(); }

 private:
  struct Frame {
    AlignedPageBuf buf;
    bool sealed = false;
  };

  DiskPageFile() = default;

  Status CheckId(PageId id) const;
  /// Writes `header` + current num_pages_ at offset 0 (v3 pads the block).
  Status WriteHeader();
  /// pread of page `id` into `buf`, no verification, no accounting.
  Status RawRead(PageId id, uint8_t* buf) const;
  /// pwrite of page `id` from `buf`, no accounting.
  Status RawWrite(PageId id, const uint8_t* buf) const;
  /// Returns `id`'s frame, creating it (seeded from disk when the page
  /// already exists on disk) if absent. Mutation path only.
  Result<Frame*> EnsureFrame(PageId id, bool load_existing);
  /// Seals + writes back + drops the oldest frames until the budget holds.
  Status EvictFramesOverBudget(PageId keep);
  /// Seals + writes back + drops one specific frame.
  Status FlushFrame(PageId id, Frame* frame);
  /// Per-thread aligned scratch for Read results.
  uint8_t* ThreadScratch();

  std::string path_;
  int fd_ = -1;
  IoBackend backend_ = IoBackend::kPread;
  bool o_direct_ = false;
  uint64_t data_offset_ = 0;
  uint32_t version_ = 0;
  size_t num_pages_ = 0;
  size_t dirty_frame_budget_ = 256;
  uint64_t sim_read_delay_us_ = 0;
  bool verify_on_read_ = true;

  /// Unflushed writes, bounded by dirty_frame_budget_. frame_fifo_ orders
  /// eviction (oldest first; ids may repeat — stale entries are skipped).
  std::unordered_map<PageId, Frame> frames_;
  std::list<PageId> frame_fifo_;
  std::vector<PageId> dirty_pages_;

  /// Per-page verified flags (atomic_ref on the read path), same
  /// verify-once model as PageFile.
  std::vector<uint8_t> verified_;

  /// Per-thread scratch buffers for Read results (guarded by scratch_mu_;
  /// the pointer handed out is stable — the map stores unique buffers).
  mutable std::mutex scratch_mu_;
  mutable std::unordered_map<std::thread::id, AlignedPageBuf> scratch_;

  IoStats stats_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_DISK_FILE_H_
