#include "storage/buffer_pool.h"

#include <cstring>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

BufferPool::BufferPool(PageFile* file, size_t capacity_pages)
    : file_(file), capacity_(capacity_pages) {
  DQMO_CHECK(file != nullptr);
  DQMO_CHECK(capacity_pages >= 1);
}

Result<PageReader::ReadResult> BufferPool::Read(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    // Hit: move to front of LRU order.
    frames_.splice(frames_.begin(), frames_, it->second);
    ++hits_;
    ++file_->mutable_stats()->cache_hits;
    return ReadResult{frames_.front().bytes.data(), /*physical=*/false};
  }
  // Miss: fetch from the file (one disk access) and install.
  PageReader* src = source_ != nullptr ? source_ : static_cast<PageReader*>(file_);
  DQMO_ASSIGN_OR_RETURN(auto read, src->Read(id));
  if (source_ != nullptr && !PageChecksumOk(read.data)) {
    ++file_->mutable_stats()->checksum_failures;
    return Status::Corruption(
        StrFormat("page %u checksum mismatch (stored %08x, computed %08x)",
                  id, StoredPageChecksum(read.data),
                  ComputePageChecksum(read.data)));
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    index_.erase(frames_.back().id);
    frames_.pop_back();
  }
  Frame frame;
  frame.id = id;
  frame.bytes.assign(read.data, read.data + kPageSize);
  frames_.push_front(std::move(frame));
  index_[id] = frames_.begin();
  return ReadResult{frames_.front().bytes.data(), /*physical=*/true};
}

void BufferPool::Clear() {
  frames_.clear();
  index_.clear();
}

void BufferPool::Invalidate(PageId id) {
  auto it = index_.find(id);
  if (it == index_.end()) return;
  frames_.erase(it->second);
  index_.erase(it);
}

}  // namespace dqmo
