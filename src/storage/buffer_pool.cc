#include "storage/buffer_pool.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Process-wide pool metrics (all BufferPool instances aggregate; the
/// per-pool hits()/misses() accessors remain for per-instance deltas).
struct PoolMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Histogram* hit_ns;
  Histogram* miss_ns;

  static PoolMetrics& Get() {
    static PoolMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return PoolMetrics{
          r.GetCounter("dqmo_pool_hits_total",
                       "Buffer-pool reads served from a cached frame"),
          r.GetCounter("dqmo_pool_misses_total",
                       "Buffer-pool reads that fetched from the page store"),
          r.GetCounter("dqmo_pool_evictions_total",
                       "Frames evicted to make room (per-shard LRU)"),
          r.GetHistogram("dqmo_pool_read_hit_ns",
                         "Latency of buffer-pool cache hits"),
          r.GetHistogram("dqmo_pool_read_miss_ns",
                         "Latency of buffer-pool misses (fetch included)"),
      };
    }();
    return m;
  }
};

/// Per-thread scratch page the pool copies frames into before returning.
/// Decouples the returned pointer from the frame's lifetime: another
/// thread's eviction can free the frame without invalidating a read in
/// flight. Shared by all pools on the thread — the documented contract is
/// "valid until this thread's next BufferPool read".
uint8_t* ScratchPage() {
  thread_local std::vector<uint8_t> scratch(kPageSize);
  return scratch.data();
}

}  // namespace

BufferPool::BufferPool(PageStore* file, size_t capacity_pages, int num_shards)
    : file_(file), capacity_(capacity_pages) {
  DQMO_CHECK(file != nullptr);
  DQMO_CHECK(capacity_pages >= 1);
  DQMO_CHECK(num_shards >= 1);
  num_shards_ = static_cast<int>(std::min<size_t>(
      static_cast<size_t>(num_shards), capacity_pages));
  shard_capacity_ = capacity_ / static_cast<size_t>(num_shards_);
  DQMO_CHECK(shard_capacity_ >= 1);
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
}

Result<PageReader::ReadResult> BufferPool::Read(PageId id) {
  const uint64_t tick = TickNs();
  Shard& shard = ShardFor(id);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it != shard.index.end()) {
      // Hit: move to front of the shard's LRU order.
      shard.frames.splice(shard.frames.begin(), shard.frames, it->second);
      hits_.fetch_add(1, std::memory_order_relaxed);
      file_->mutable_stats()->cache_hits.fetch_add(
          1, std::memory_order_relaxed);
      std::memcpy(ScratchPage(), shard.frames.front().bytes.data(),
                  kPageSize);
      PoolMetrics::Get().hits->Add();
      PoolMetrics::Get().hit_ns->RecordSince(tick);
      return ReadResult{ScratchPage(), /*physical=*/false};
    }
  }
  // Miss: fetch from the file (one disk access) outside the shard lock, so
  // a slow fetch does not stall hits on other pages of the shard. Two
  // threads missing the same page both fetch (both are real disk accesses);
  // the second install finds the frame already cached and reuses it.
  PageReader* src =
      source_ != nullptr ? source_ : static_cast<PageReader*>(file_);
  DQMO_ASSIGN_OR_RETURN(auto read, src->Read(id));
  if (source_ != nullptr && !PageChecksumOk(read.data)) {
    file_->mutable_stats()->checksum_failures.fetch_add(
        1, std::memory_order_relaxed);
    return Status::Corruption(
        StrFormat("page %u checksum mismatch (stored %08x, computed %08x)",
                  id, StoredPageChecksum(read.data),
                  ComputePageChecksum(read.data)));
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(ScratchPage(), read.data, kPageSize);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(id);
    if (it == shard.index.end()) {
      if (shard.frames.size() >= shard_capacity_) {
        shard.index.erase(shard.frames.back().id);
        shard.frames.pop_back();
        PoolMetrics::Get().evictions->Add();
      }
      Frame frame;
      frame.id = id;
      frame.bytes.assign(ScratchPage(), ScratchPage() + kPageSize);
      shard.frames.push_front(std::move(frame));
      shard.index[id] = shard.frames.begin();
    } else {
      shard.frames.splice(shard.frames.begin(), shard.frames, it->second);
    }
  }
  PoolMetrics::Get().misses->Add();
  PoolMetrics::Get().miss_ns->RecordSince(tick);
  return ReadResult{ScratchPage(), /*physical=*/true};
}

void BufferPool::Clear() {
  for (int s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    shards_[s].frames.clear();
    shards_[s].index.clear();
  }
}

void BufferPool::Invalidate(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.frames.erase(it->second);
  shard.index.erase(it);
}

size_t BufferPool::cached_pages() const {
  size_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    std::lock_guard<std::mutex> lock(shards_[s].mu);
    total += shards_[s].frames.size();
  }
  return total;
}

}  // namespace dqmo
