// PageFile: the simulated disk. A flat array of 4 KiB pages with physical
// read/write accounting, plus persistence to an OS file so that an index can
// be built once and reused across benchmark binaries.
#ifndef DQMO_STORAGE_PAGE_FILE_H_
#define DQMO_STORAGE_PAGE_FILE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dqmo {

/// Abstract source of pages. Query processors read through this interface;
/// implementations are PageFile (every read is a disk access) and BufferPool
/// (reads may be served from cache).
class PageReader {
 public:
  virtual ~PageReader() = default;

  /// Result of a page read: a pointer to the page's kPageSize bytes (valid
  /// until the next call on the same reader) and whether the read hit the
  /// physical store (i.e. counts as a disk access).
  struct ReadResult {
    const uint8_t* data = nullptr;
    bool physical = false;
  };

  /// Reads page `id`. Fails with NotFound/OutOfRange for unknown ids.
  virtual Result<ReadResult> Read(PageId id) = 0;
};

/// In-memory paged store standing in for the disk of the paper's testbed.
///
/// The substitution (documented in DESIGN.md) preserves the paper's metric:
/// every PageFile read/write is counted as one disk access, exactly what the
/// paper measures; actual seek latency is irrelevant to the reported
/// figures, which plot access *counts*.
class PageFile : public PageReader {
 public:
  PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;

  /// Appends a zeroed page and returns its id.
  PageId Allocate();

  size_t num_pages() const { return num_pages_; }

  /// Reads page `id`, charging one physical read.
  Result<ReadResult> Read(PageId id) override;

  /// Writes the kPageSize bytes at `data` into page `id`, charging one
  /// physical write.
  Status Write(PageId id, const uint8_t* data);

  /// Mutable view of a page for in-place serialization, charging one
  /// physical write (the caller is about to overwrite the page).
  Result<PageView> WritableView(PageId id);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Persists all pages to `path` (overwriting). Format: magic, version,
  /// page count, then raw pages.
  Status SaveTo(const std::string& path) const;

  /// Loads a file written by SaveTo. Replaces current contents.
  Status LoadFrom(const std::string& path);

 private:
  Status CheckId(PageId id) const;

  std::vector<uint8_t> bytes_;
  size_t num_pages_ = 0;
  IoStats stats_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PAGE_FILE_H_
