// PageFile: the simulated disk. A flat array of 4 KiB pages with physical
// read/write accounting, plus persistence to an OS file so that an index can
// be built once and reused across benchmark binaries.
//
// Integrity (page format v2): every page carries a CRC32C trailer over its
// payload (storage/page.h). Pages are sealed when written, verified on load
// and on the first read after entering memory untrusted, then trusted until
// their bytes change (verify-once, the block-cache model), so corruption
// surfaces as Status::Corruption carrying the page id instead of garbage
// geometry.
#ifndef DQMO_STORAGE_PAGE_FILE_H_
#define DQMO_STORAGE_PAGE_FILE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dqmo {

/// Abstract source of pages. Query processors read through this interface;
/// implementations are PageFile (every read is a disk access), BufferPool
/// (reads may be served from cache), and the fault-tolerance wrappers in
/// storage/fault.h (FaultyPageReader, RetryingPageReader).
class PageReader {
 public:
  virtual ~PageReader() = default;

  /// Result of a page read: a pointer to the page's kPageSize bytes (valid
  /// until the next call on the same reader) and whether the read hit the
  /// physical store (i.e. counts as a disk access).
  struct ReadResult {
    const uint8_t* data = nullptr;
    bool physical = false;
  };

  /// Reads page `id`. Fails with NotFound/OutOfRange for unknown ids and
  /// with Corruption (message carries the page id) for checksum mismatches.
  virtual Result<ReadResult> Read(PageId id) = 0;
};

/// In-memory paged store standing in for the disk of the paper's testbed.
///
/// The substitution (documented in DESIGN.md) preserves the paper's metric:
/// every PageFile read/write is counted as one disk access, exactly what the
/// paper measures; actual seek latency is irrelevant to the reported
/// figures, which plot access *counts*.
class PageFile : public PageReader {
 public:
  /// Options for LoadFrom.
  struct LoadOptions {
    /// Verify every page's checksum while loading (v2 files); the first
    /// mismatch fails the load with Corruption carrying the page id and
    /// file offset. Disable only for forensic access (dqmo_tool scrub).
    bool verify_checksums = true;
  };

  PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  PageFile(PageFile&&) = default;
  PageFile& operator=(PageFile&&) = default;

  /// Appends a zeroed page and returns its id.
  PageId Allocate();

  size_t num_pages() const { return num_pages_; }

  /// Reads page `id`, charging one physical read. Verifies the page's
  /// checksum on the first read after the page entered memory untrusted
  /// (a LoadFrom with verify_checksums=false); once verified, a page is
  /// trusted until its bytes change — the block-cache model, so
  /// steady-state reads pay only a flag check. A mismatch returns
  /// Corruption naming the page and increments stats().checksum_failures.
  /// set_verify_on_read(false) disables even the first-read check.
  Result<ReadResult> Read(PageId id) override;

  /// Writes the kPageSize bytes at `data` into page `id` and seals it,
  /// charging one physical write. (The trailer bytes of `data` are
  /// overwritten by the freshly computed checksum.)
  Status Write(PageId id, const uint8_t* data);

  /// Mutable view of a page for in-place serialization, charging one
  /// physical write (the caller is about to overwrite the page). The page
  /// is re-sealed lazily before it is next read, verified, or saved.
  Result<PageView> WritableView(PageId id);

  const IoStats& stats() const { return stats_; }
  IoStats* mutable_stats() { return &stats_; }
  void ResetStats() { stats_.Reset(); }

  /// Toggles checksum verification on Read (default on). Exists so the
  /// fault-tolerance bench can measure verification cost; leave on
  /// otherwise.
  void set_verify_on_read(bool verify) { verify_on_read_ = verify; }
  bool verify_on_read() const { return verify_on_read_; }

  /// True when this file was loaded from a legacy (v1) image; such files
  /// are readable but immutable (Write/WritableView fail with
  /// FailedPrecondition). Allocate still appends fresh pages, and SaveTo
  /// persists the whole file as v2 — the upgrade path.
  bool legacy_read_only() const { return legacy_read_only_; }

  /// Verifies one page's checksum (sealing it first if it has pending
  /// in-place writes). Always recomputes — scrub semantics, no trust
  /// cache. Corruption carries the page id.
  Status VerifyPage(PageId id);

  /// Verifies every page, appending the ids of all corrupt pages to `bad`
  /// (unlike Read/LoadFrom it does not stop at the first). Returns the
  /// number of corrupt pages found. Used by `dqmo_tool scrub`.
  size_t VerifyAllPages(std::vector<PageId>* bad);

  /// Persists all pages to `path` (overwriting). Format: magic, version 2,
  /// page count, then raw sealed pages.
  Status SaveTo(const std::string& path);

  /// Loads a file written by SaveTo, replacing current contents. The byte
  /// count is validated against the header before anything is trusted:
  /// truncated, oversized, or absurdly-sized files fail with Corruption
  /// carrying the offending offset. Version 1 files (no checksums) load
  /// read-only; their pages are sealed in memory so reads verify.
  Status LoadFrom(const std::string& path, const LoadOptions& options);
  Status LoadFrom(const std::string& path) {
    return LoadFrom(path, LoadOptions());
  }

 private:
  Status CheckId(PageId id) const;
  Status CheckWritable() const;

  uint8_t* PageData(PageId id) {
    return bytes_.data() + static_cast<size_t>(id) * kPageSize;
  }

  /// Recomputes the trailer of a page dirtied via WritableView.
  void SealIfDirty(PageId id);

  std::vector<uint8_t> bytes_;
  /// Pages written in place via WritableView whose trailer is stale.
  std::vector<uint8_t> dirty_;
  /// Pages whose checksum has been verified (or freshly computed) since
  /// their bytes last changed; Read trusts these without re-hashing.
  std::vector<uint8_t> verified_;
  size_t num_pages_ = 0;
  bool verify_on_read_ = true;
  bool legacy_read_only_ = false;
  IoStats stats_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PAGE_FILE_H_
