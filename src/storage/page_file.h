// PageFile: the simulated disk. A flat array of 4 KiB pages with physical
// read/write accounting, plus persistence to an OS file so that an index can
// be built once and reused across benchmark binaries.
//
// Integrity (page format v2): every page carries a CRC32C trailer over its
// payload (storage/page.h). Pages are sealed when written, verified on load
// and on the first read after entering memory untrusted, then trusted until
// their bytes change (verify-once, the block-cache model), so corruption
// surfaces as Status::Corruption carrying the page id instead of garbage
// geometry.
//
// Threading model (see DESIGN.md "Threading model"): concurrent Read calls
// are safe with each other — the I/O counters are atomic, the verify-once /
// dirty flags are accessed through std::atomic_ref, and lazy sealing is
// serialized by an internal mutex. All *mutations* (Allocate, Write,
// WritableView, LoadFrom, SaveTo, Clear-like calls) require external
// exclusion from every reader; the query engine provides it with the
// single-writer/multi-reader TreeGate (server/executor.h). Publish() puts a
// file into the steady state concurrent readers want: no dirty pages, every
// page pre-verified, so the read path mutates nothing but atomic counters.
#ifndef DQMO_STORAGE_PAGE_FILE_H_
#define DQMO_STORAGE_PAGE_FILE_H_

#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"
#include "storage/page_store.h"

namespace dqmo {

/// In-memory paged store standing in for the disk of the paper's testbed.
///
/// The substitution (documented in DESIGN.md) preserves the paper's metric:
/// every PageFile read/write is counted as one disk access, exactly what the
/// paper measures; actual seek latency is irrelevant to the reported
/// figures, which plot access *counts*. For real milliseconds, use the
/// disk-resident DiskPageFile backend (storage/disk_file.h) behind the same
/// PageStore interface.
class PageFile : public PageStore {
 public:
  /// Options for LoadFrom.
  struct LoadOptions {
    /// Verify every page's checksum while loading (v2 files); the first
    /// mismatch fails the load with Corruption carrying the page id and
    /// file offset. Disable only for forensic access (dqmo_tool scrub).
    bool verify_checksums = true;
  };

  PageFile() = default;

  PageFile(const PageFile&) = delete;
  PageFile& operator=(const PageFile&) = delete;
  /// Moves are not thread-safe: never move a file another thread can reach.
  PageFile(PageFile&& other) noexcept { MoveFrom(other); }
  PageFile& operator=(PageFile&& other) noexcept {
    if (this != &other) MoveFrom(other);
    return *this;
  }

  /// Appends a zeroed page and returns its id. Requires exclusion from
  /// concurrent readers (page storage may reallocate).
  PageId Allocate() override;

  size_t num_pages() const override { return num_pages_; }

  /// Reads page `id`, charging one physical read. Verifies the page's
  /// checksum on the first read after the page entered memory untrusted
  /// (a LoadFrom with verify_checksums=false); once verified, a page is
  /// trusted until its bytes change — the block-cache model, so
  /// steady-state reads pay only a flag check. A mismatch returns
  /// Corruption naming the page and increments stats().checksum_failures.
  /// set_verify_on_read(false) disables even the first-read check.
  /// Safe to call from concurrent readers.
  Result<ReadResult> Read(PageId id) override;

  /// Writes the kPageSize bytes at `data` into page `id` and seals it,
  /// charging one physical write. (The trailer bytes of `data` are
  /// overwritten by the freshly computed checksum.)
  Status Write(PageId id, const uint8_t* data) override;

  /// Mutable view of a page for in-place serialization, charging one
  /// physical write (the caller is about to overwrite the page). The page
  /// is re-sealed lazily before it is next read, verified, or saved.
  Result<PageView> WritableView(PageId id) override;

  /// Seals every page dirtied via WritableView right now, instead of
  /// lazily on the next read. A writer that shares the file with
  /// concurrent readers must call this before readers resume (the
  /// TreeGate write guard does), so no two readers race to seal the same
  /// page; cost is proportional to the number of dirtied pages.
  void SealAllDirty() override;

  /// Pages dirtied via WritableView/Allocate since the last SealAllDirty.
  /// May contain duplicates of already-resealed ids. The TreeGate write
  /// guard walks this to invalidate stale BufferPool frames before
  /// sealing. Requires exclusion from writers.
  const std::vector<PageId>& dirty_page_ids() const override {
    return dirty_pages_;
  }

  /// Prepares the file for concurrent readers: seals every dirty page and
  /// verifies every page's checksum up front, so the steady-state Read
  /// path mutates nothing but atomic counters. Fails with Corruption on
  /// the first bad page. Idempotent.
  Status Publish() override;

  const IoStats& stats() const override { return stats_; }
  IoStats* mutable_stats() override { return &stats_; }
  void ResetStats() override { stats_.Reset(); }

  /// Toggles checksum verification on Read (default on). Exists so the
  /// fault-tolerance bench can measure verification cost; leave on
  /// otherwise.
  void set_verify_on_read(bool verify) override { verify_on_read_ = verify; }
  bool verify_on_read() const override { return verify_on_read_; }

  /// True when this file was loaded from a legacy (v1) image; such files
  /// are readable but immutable (Write/WritableView fail with
  /// FailedPrecondition). Allocate still appends fresh pages, and SaveTo
  /// persists the whole file as v2 — the upgrade path.
  bool legacy_read_only() const { return legacy_read_only_; }

  /// Verifies one page's checksum (sealing it first if it has pending
  /// in-place writes). Always recomputes — scrub semantics, no trust
  /// cache. Corruption carries the page id.
  Status VerifyPage(PageId id) override;

  /// Test hook: flips `mask` into byte `offset` of page `id` *at rest* —
  /// storage itself is damaged (not just a delivered copy, which is
  /// FaultInjector territory), the trailer is left stale, and the page's
  /// verified flag is cleared so the next Read re-hashes and fails with
  /// Corruption. This is what VerifyAllPages/scrub detect and what
  /// DurableIndex::ReloadFromDisk repairs. Requires exclusion from
  /// concurrent readers, like any mutation.
  Status CorruptPageForTest(PageId id, size_t offset, uint8_t mask) override;

  /// Verifies every page, appending the ids of all corrupt pages to `bad`
  /// (unlike Read/LoadFrom it does not stop at the first). Returns the
  /// number of corrupt pages found. Used by `dqmo_tool scrub`.
  size_t VerifyAllPages(std::vector<PageId>* bad) override;

  /// Persists all pages atomically: writes `<path>.tmp`, fflush+fsync,
  /// then rename(2) over `path` — a crash mid-save (including at the
  /// kSaveBeforeRename crash point) leaves the previous file at `path`
  /// intact and loadable. Format: magic, version 2, page count, then raw
  /// sealed pages.
  Status SaveTo(const std::string& path) override;

  /// Loads a file written by SaveTo, replacing current contents. The byte
  /// count is validated against the header before anything is trusted:
  /// truncated, oversized, or absurdly-sized files fail with Corruption
  /// carrying the offending offset. Version 1 files (no checksums) load
  /// read-only; their pages are sealed in memory so reads verify.
  Status LoadFrom(const std::string& path, const LoadOptions& options);
  Status LoadFrom(const std::string& path) {
    return LoadFrom(path, LoadOptions());
  }

 private:
  Status CheckId(PageId id) const;
  Status CheckWritable() const;

  uint8_t* PageData(PageId id) {
    return bytes_.data() + static_cast<size_t>(id) * kPageSize;
  }

  /// Recomputes the trailer of a page dirtied via WritableView. Safe under
  /// concurrent readers: the dirty flag is read atomically and sealing is
  /// serialized by seal_mu_.
  void SealIfDirty(PageId id);

  void MoveFrom(PageFile& other);

  std::vector<uint8_t> bytes_;
  /// Per-page flags, accessed through std::atomic_ref on the read path.
  /// dirty_: page written in place via WritableView, trailer stale.
  /// verified_: checksum verified (or freshly computed) since the bytes
  /// last changed; Read trusts these without re-hashing.
  std::vector<uint8_t> dirty_;
  std::vector<uint8_t> verified_;
  /// Ids dirtied via WritableView since the last SealAllDirty (may hold
  /// already-resealed ids; SealIfDirty is a no-op for them).
  std::vector<PageId> dirty_pages_;
  /// Serializes lazy sealing when concurrent readers hit a dirty page.
  std::mutex seal_mu_;
  size_t num_pages_ = 0;
  bool verify_on_read_ = true;
  bool legacy_read_only_ = false;
  IoStats stats_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PAGE_FILE_H_
