// Fixed-size pages and typed little-endian accessors for on-page data.
#ifndef DQMO_STORAGE_PAGE_H_
#define DQMO_STORAGE_PAGE_H_

#include <cstdint>
#include <cstring>
#include <type_traits>

#include "common/check.h"

namespace dqmo {

/// Page size in bytes. The paper's experiments use 4 KB pages; node fanout
/// (145 internal / 127 leaf) follows from this size and the entry layouts in
/// rtree/node.h.
inline constexpr size_t kPageSize = 4096;

/// Page format v2: the last 4 bytes of every page hold a CRC32C of the
/// preceding kPagePayloadSize bytes ("sealing"), verified on every physical
/// read so a flipped bit in a page body surfaces as Status::Corruption
/// instead of being deserialized into garbage geometry. The trailer lives
/// in space the node layouts never used (rtree/layout.h derives fanouts
/// from kPagePayloadSize), so v2 keeps the paper's 113/127 fanout, and v1
/// pages — whose trailer bytes were zeroed slack — remain readable.
inline constexpr size_t kPageTrailerSize = 4;
inline constexpr size_t kPagePayloadSize = kPageSize - kPageTrailerSize;
inline constexpr size_t kPageChecksumOffset = kPagePayloadSize;

/// CRC32C over a page's payload (everything except the trailer).
uint32_t ComputePageChecksum(const uint8_t* page);

/// Writes the payload checksum into the page's trailer.
void SealPage(uint8_t* page);

/// True iff the trailer matches the payload.
bool PageChecksumOk(const uint8_t* page);

/// Checksum currently stored in a page's trailer.
uint32_t StoredPageChecksum(const uint8_t* page);

/// View over one page's bytes with bounds-checked typed reads/writes.
///
/// All on-page values are stored in native byte order; the page file is a
/// single-host format (matching the single-machine testbed of the paper).
class PageView {
 public:
  PageView(uint8_t* data, size_t size) : data_(data), size_(size) {}

  template <typename T>
  T Read(size_t offset) const {
    static_assert(std::is_trivially_copyable_v<T>);
    DQMO_DCHECK(offset + sizeof(T) <= size_);
    T value;
    std::memcpy(&value, data_ + offset, sizeof(T));
    return value;
  }

  template <typename T>
  void Write(size_t offset, const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    DQMO_DCHECK(offset + sizeof(T) <= size_);
    std::memcpy(data_ + offset, &value, sizeof(T));
  }

  uint8_t* data() { return data_; }
  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

 private:
  uint8_t* data_;
  size_t size_;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PAGE_H_
