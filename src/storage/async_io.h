// Asynchronous page-read queues for the disk-resident backend.
//
// PDQ's time-ordered priority queue is a declared future-access list: the
// next k entries name the pages the traversal will read next. AsyncReadQueue
// is the mechanism that turns that declaration into overlapped I/O — the
// Prefetcher (storage/prefetch.h) submits speculative reads here and the
// traversal consumes completions instead of blocking on pread.
//
// Two implementations behind one interface:
//   * ThreadReadQueue — a small worker pool issuing pread(2); works
//     everywhere, still overlaps I/O with traversal CPU.
//   * UringReadQueue — io_uring via raw syscalls (no liburing dependency),
//     compiled only when <linux/io_uring.h> exists and selected only when a
//     runtime probe (UringAvailable) confirms the kernel cooperates —
//     containers often deny io_uring via seccomp, so probing, not version
//     sniffing, is the gate.
//
// Backend selection is the DQMO_IO_BACKEND={memory,pread,uring} knob
// (IoBackendFromEnv); `uring` silently degrades to the thread queue when
// the probe fails, so one config works across hosts.
#ifndef DQMO_STORAGE_ASYNC_IO_H_
#define DQMO_STORAGE_ASYNC_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dqmo {

/// Which physical I/O machinery backs the engine's page store.
enum class IoBackend : uint8_t {
  kMemory,  // In-memory PageFile (the seed backend; I/O is a counter).
  kPread,   // DiskPageFile, sync pread/pwrite + ThreadReadQueue prefetch.
  kUring,   // DiskPageFile with io_uring prefetch (falls back to kPread's
            // thread queue when the kernel denies io_uring).
};

const char* IoBackendName(IoBackend backend);

/// Parses DQMO_IO_BACKEND (memory|pread|uring, default memory). Unknown
/// values fall back to memory — a misspelled knob must not flip a server
/// onto an unintended disk path.
IoBackend IoBackendFromEnv();

/// True when io_uring_setup(2) actually works here (cached probe). False on
/// old kernels, seccomp-filtered containers, or !__has_include builds.
bool UringAvailable();

/// One speculative read: `len` bytes at file offset `offset` into caller-
/// owned memory at `buf` (which must stay valid until the completion for
/// `tag` is reaped). Tags are caller-chosen and opaque to the queue.
struct AsyncRead {
  uint64_t tag = 0;
  uint64_t offset = 0;
  uint8_t* buf = nullptr;
  uint32_t len = 0;
};

/// Completion of one AsyncRead: `result` is bytes read (>= 0) or a negated
/// errno, mirroring io_uring's CQE convention.
struct AsyncCompletion {
  uint64_t tag = 0;
  int32_t result = 0;
};

/// A queue of in-flight reads against one file descriptor. Thread-safe:
/// Submit and Reap may race (the Prefetcher serializes them anyway). Every
/// submitted read is eventually reaped exactly once; the destructor drains
/// outstanding completions so buffers are never written after free.
class AsyncReadQueue {
 public:
  virtual ~AsyncReadQueue() = default;

  /// Queues one read. Fails (ResourceExhausted) when the queue is full;
  /// the caller simply skips that prefetch — speculation is best-effort.
  virtual Status Submit(const AsyncRead& read) = 0;

  /// Appends finished completions to `out` and returns how many arrived.
  /// With block=true, waits until at least one completion is available
  /// (returns 0 only when nothing is in flight).
  virtual size_t Reap(std::vector<AsyncCompletion>* out, bool block) = 0;

  /// Reads submitted but not yet reaped.
  virtual size_t inflight() const = 0;

  virtual const char* name() const = 0;
};

/// Builds the queue for `backend` over `fd` with room for `depth` in-flight
/// reads. kUring degrades to the thread queue when the probe fails; kMemory
/// is invalid here (the memory backend has no fd and never prefetches).
///
/// `sim_read_delay_us` > 0 models a slow device deterministically: each
/// worker serves the delay between the pread and its completion, so the
/// latency is hidable by overlap exactly like a real device's. The model
/// needs a thread to sleep in, so a non-zero delay forces the thread queue
/// even under kUring (the kernel cannot simulate a slow disk). This is the
/// cold-cache knob of bench/abl_disk.cc, not a production setting.
std::unique_ptr<AsyncReadQueue> CreateAsyncReadQueue(
    IoBackend backend, int fd, size_t depth, uint64_t sim_read_delay_us = 0);

}  // namespace dqmo

#endif  // DQMO_STORAGE_ASYNC_IO_H_
