// PageStore: the abstract page-granular storage contract behind the engine.
//
// Until PR 9 the only store was the in-memory PageFile, and every layer —
// RTree, BufferPool, TreeGate, DurableIndex, ShardedEngine — held a
// concrete PageFile*. This interface lifts exactly the surface those layers
// use, so a disk-resident backend (storage/disk_file.h: pread/pwrite or
// io_uring over a 4 KiB-aligned file) can slot in underneath all of them
// without changing query or server code.
//
// Contract (inherited verbatim from PageFile; see its header for the full
// story on each method):
//
//  * Every Read is one physical disk access — the paper's I/O metric — and
//    is safe from concurrent readers. The returned pointer follows the
//    PageReader rule: valid until the calling thread's next read on the
//    same store.
//  * All mutations (Allocate, Write, WritableView, SealAllDirty, Publish,
//    SaveTo, CorruptPageForTest) require external exclusion from every
//    reader; the engine provides it with the TreeGate.
//  * Pages carry CRC32C trailers (storage/page.h). Write/SealAllDirty seal;
//    Read verifies per the store's verify-once policy; VerifyPage /
//    VerifyAllPages always recompute (scrub semantics).
//  * dirty_page_ids() lists pages dirtied via WritableView/Allocate since
//    the last SealAllDirty, so the TreeGate write guard can invalidate
//    stale BufferPool frames before sealing.
#ifndef DQMO_STORAGE_PAGE_STORE_H_
#define DQMO_STORAGE_PAGE_STORE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace dqmo {

/// Abstract source of pages. Query processors read through this interface;
/// implementations are PageFile (every read is a disk access), DiskPageFile
/// (every read is a real pread), BufferPool (reads may be served from
/// cache), the fault-tolerance wrappers in storage/fault.h, and the
/// prefetch landing table (storage/prefetch.h).
class PageReader {
 public:
  virtual ~PageReader() = default;

  /// Result of a page read: a pointer to the page's kPageSize bytes (valid
  /// until the next call on the same reader — for BufferPool, until the
  /// calling thread's next read on any pool) and whether the read hit the
  /// physical store (i.e. counts as a disk access).
  struct ReadResult {
    const uint8_t* data = nullptr;
    bool physical = false;
  };

  /// Reads page `id`. Fails with NotFound/OutOfRange for unknown ids and
  /// with Corruption (message carries the page id) for checksum mismatches.
  virtual Result<ReadResult> Read(PageId id) = 0;
};

/// Abstract page store: PageReader plus the mutation/maintenance surface
/// the tree and server layers require. Implementations: PageFile (the
/// in-memory simulated disk) and DiskPageFile (a real file).
class PageStore : public PageReader {
 public:
  /// Appends a zeroed page and returns its id. Requires exclusion from
  /// concurrent readers.
  virtual PageId Allocate() = 0;

  virtual size_t num_pages() const = 0;

  /// Writes kPageSize bytes into page `id` and seals it (one physical
  /// write; the trailer bytes of `data` are recomputed).
  virtual Status Write(PageId id, const uint8_t* data) = 0;

  /// Mutable view for in-place serialization (one physical write). The
  /// page is re-sealed lazily before it is next read, verified, or saved.
  /// The pointer stays valid until the store's next mutation of that page.
  virtual Result<PageView> WritableView(PageId id) = 0;

  /// Seals (and, for disk stores, writes back) every dirty page now.
  virtual void SealAllDirty() = 0;

  /// Pages dirtied since the last SealAllDirty (may contain already-
  /// resealed duplicates). Requires exclusion from writers.
  virtual const std::vector<PageId>& dirty_page_ids() const = 0;

  /// Prepares for concurrent readers: seals dirt, verifies every page up
  /// front. Idempotent; fails with Corruption on the first bad page.
  virtual Status Publish() = 0;

  /// Scrub-semantics verification (always recomputes the checksum).
  virtual Status VerifyPage(PageId id) = 0;
  virtual size_t VerifyAllPages(std::vector<PageId>* bad) = 0;

  /// Persists all pages atomically to `path` (temp + fsync + rename; the
  /// kSaveBeforeRename crash point sits between the two). A disk store
  /// whose own file is `path` flushes and fsyncs in place instead.
  virtual Status SaveTo(const std::string& path) = 0;

  /// Test hook: damages stored bytes at rest (trailer left stale).
  virtual Status CorruptPageForTest(PageId id, size_t offset,
                                    uint8_t mask) = 0;

  virtual void set_verify_on_read(bool verify) = 0;
  virtual bool verify_on_read() const = 0;

  virtual const IoStats& stats() const = 0;
  virtual IoStats* mutable_stats() = 0;
  virtual void ResetStats() = 0;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_PAGE_STORE_H_
