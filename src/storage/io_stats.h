// I/O accounting: the paper's primary performance measure is the number of
// disk accesses per query, split into leaf-level and higher-level accesses
// (Figs. 6, 8, 10, 12).
#ifndef DQMO_STORAGE_IO_STATS_H_
#define DQMO_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace dqmo {

/// Counters for page-level I/O. Physical reads are charged by the PageFile;
/// cache hits (when a BufferPool is interposed) are not disk accesses.
struct IoStats {
  uint64_t physical_reads = 0;
  uint64_t physical_writes = 0;
  uint64_t cache_hits = 0;
  /// Page reads whose CRC32C trailer did not match the payload (storage
  /// corruption detected and surfaced as Status::Corruption).
  uint64_t checksum_failures = 0;
  /// Reads re-issued by RetryingPageReader after a transient failure. Does
  /// not count the first attempt.
  uint64_t retries = 0;

  void Reset() { *this = IoStats{}; }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.physical_reads = physical_reads - other.physical_reads;
    d.physical_writes = physical_writes - other.physical_writes;
    d.cache_hits = cache_hits - other.cache_hits;
    d.checksum_failures = checksum_failures - other.checksum_failures;
    d.retries = retries - other.retries;
    return d;
  }

  std::string ToString() const;
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_IO_STATS_H_
