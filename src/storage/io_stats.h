// I/O accounting: the paper's primary performance measure is the number of
// disk accesses per query, split into leaf-level and higher-level accesses
// (Figs. 6, 8, 10, 12).
#ifndef DQMO_STORAGE_IO_STATS_H_
#define DQMO_STORAGE_IO_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dqmo {

/// Counters for page-level I/O. Physical reads are charged by the PageFile;
/// cache hits (when a BufferPool is interposed) are not disk accesses.
///
/// The counters are atomic so that one PageFile / BufferPool can be shared
/// by concurrent query sessions without under-counting (plain uint64_t
/// increments silently lose updates the moment two threads share a pool).
/// Increments use relaxed ordering: the counters are statistics, never a
/// synchronization mechanism. Copies and differences snapshot each counter
/// individually; take them while the storage layer is quiescent when a
/// cross-counter-consistent view matters.
struct IoStats {
  std::atomic<uint64_t> physical_reads{0};
  std::atomic<uint64_t> physical_writes{0};
  std::atomic<uint64_t> cache_hits{0};
  /// Page reads whose CRC32C trailer did not match the payload (storage
  /// corruption detected and surfaced as Status::Corruption).
  std::atomic<uint64_t> checksum_failures{0};
  /// Reads re-issued by RetryingPageReader after a transient failure. Does
  /// not count the first attempt.
  std::atomic<uint64_t> retries{0};
  /// WAL records buffered by WalWriter::Append* and batches made durable by
  /// WalWriter::Sync. Counted separately from physical page I/O so the
  /// paper's disk-access metric (and the A13/A14 ablation numbers) stay
  /// comparable whether or not durability is enabled.
  std::atomic<uint64_t> wal_appends{0};
  std::atomic<uint64_t> wal_syncs{0};
  /// Speculative reads issued by the Prefetcher (storage/prefetch.h).
  /// Accounting invariant (after Quiesce): issued == hits + wasted +
  /// failed-in-flight. A *hit* is charged exactly once, at consumption —
  /// the consuming Read also charges the one physical_read the store
  /// would have charged synchronously, so physical_reads stays
  /// byte-identical to the memory backend plus `prefetch_wasted` (wasted
  /// speculative reads did touch the disk; hits replaced a sync read 1:1).
  std::atomic<uint64_t> prefetch_issued{0};
  std::atomic<uint64_t> prefetch_hits{0};
  std::atomic<uint64_t> prefetch_wasted{0};

  IoStats() = default;
  IoStats(const IoStats& other) { CopyFrom(other); }
  IoStats& operator=(const IoStats& other) {
    CopyFrom(other);
    return *this;
  }

  void Reset() { CopyFrom(IoStats{}); }

  /// Accumulates another account into this one — the sharded engine sums
  /// its per-shard PageFile stats this way. Sound only because shards own
  /// disjoint storage: each physical read/write/hit is charged to exactly
  /// one shard's counters, so the sum never double counts.
  IoStats& operator+=(const IoStats& other) {
    auto add = [](std::atomic<uint64_t>* a, const std::atomic<uint64_t>& b) {
      a->store(a->load(std::memory_order_relaxed) +
                   b.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    };
    add(&physical_reads, other.physical_reads);
    add(&physical_writes, other.physical_writes);
    add(&cache_hits, other.cache_hits);
    add(&checksum_failures, other.checksum_failures);
    add(&retries, other.retries);
    add(&wal_appends, other.wal_appends);
    add(&wal_syncs, other.wal_syncs);
    add(&prefetch_issued, other.prefetch_issued);
    add(&prefetch_hits, other.prefetch_hits);
    add(&prefetch_wasted, other.prefetch_wasted);
    return *this;
  }

  IoStats operator-(const IoStats& other) const {
    IoStats d;
    d.physical_reads = physical_reads.load(std::memory_order_relaxed) -
                       other.physical_reads.load(std::memory_order_relaxed);
    d.physical_writes = physical_writes.load(std::memory_order_relaxed) -
                        other.physical_writes.load(std::memory_order_relaxed);
    d.cache_hits = cache_hits.load(std::memory_order_relaxed) -
                   other.cache_hits.load(std::memory_order_relaxed);
    d.checksum_failures =
        checksum_failures.load(std::memory_order_relaxed) -
        other.checksum_failures.load(std::memory_order_relaxed);
    d.retries = retries.load(std::memory_order_relaxed) -
                other.retries.load(std::memory_order_relaxed);
    d.wal_appends = wal_appends.load(std::memory_order_relaxed) -
                    other.wal_appends.load(std::memory_order_relaxed);
    d.wal_syncs = wal_syncs.load(std::memory_order_relaxed) -
                  other.wal_syncs.load(std::memory_order_relaxed);
    d.prefetch_issued =
        prefetch_issued.load(std::memory_order_relaxed) -
        other.prefetch_issued.load(std::memory_order_relaxed);
    d.prefetch_hits = prefetch_hits.load(std::memory_order_relaxed) -
                      other.prefetch_hits.load(std::memory_order_relaxed);
    d.prefetch_wasted =
        prefetch_wasted.load(std::memory_order_relaxed) -
        other.prefetch_wasted.load(std::memory_order_relaxed);
    return d;
  }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.physical_reads == b.physical_reads &&
           a.physical_writes == b.physical_writes &&
           a.cache_hits == b.cache_hits &&
           a.checksum_failures == b.checksum_failures &&
           a.retries == b.retries && a.wal_appends == b.wal_appends &&
           a.wal_syncs == b.wal_syncs &&
           a.prefetch_issued == b.prefetch_issued &&
           a.prefetch_hits == b.prefetch_hits &&
           a.prefetch_wasted == b.prefetch_wasted;
  }

  std::string ToString() const;

  /// Takes a snapshot of `live` and certifies its cross-counter
  /// consistency. The header comment above requires quiescence for a
  /// consistent view (copies snapshot each counter individually); this
  /// helper makes that requirement checkable: it reads the counters twice,
  /// up to `attempts` times, and succeeds only when two consecutive reads
  /// agree — which proves no increment landed between them, so the counters
  /// in `*snapshot` belong to one moment. Returns false (leaving the last
  /// attempt in `*snapshot`) when the storage layer never went quiescent.
  static bool SnapshotConsistent(const IoStats& live, IoStats* snapshot,
                                 int attempts = 3);

 private:
  void CopyFrom(const IoStats& other) {
    physical_reads.store(
        other.physical_reads.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    physical_writes.store(
        other.physical_writes.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    cache_hits.store(other.cache_hits.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    checksum_failures.store(
        other.checksum_failures.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    retries.store(other.retries.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
    wal_appends.store(other.wal_appends.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    wal_syncs.store(other.wal_syncs.load(std::memory_order_relaxed),
                    std::memory_order_relaxed);
    prefetch_issued.store(
        other.prefetch_issued.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    prefetch_hits.store(other.prefetch_hits.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    prefetch_wasted.store(
        other.prefetch_wasted.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
  }
};

}  // namespace dqmo

#endif  // DQMO_STORAGE_IO_STATS_H_
