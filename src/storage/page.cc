#include "storage/page.h"

#include "common/crc32c.h"

namespace dqmo {

uint32_t ComputePageChecksum(const uint8_t* page) {
  return Crc32c(page, kPagePayloadSize);
}

void SealPage(uint8_t* page) {
  const uint32_t crc = ComputePageChecksum(page);
  std::memcpy(page + kPageChecksumOffset, &crc, sizeof(crc));
}

uint32_t StoredPageChecksum(const uint8_t* page) {
  uint32_t crc;
  std::memcpy(&crc, page + kPageChecksumOffset, sizeof(crc));
  return crc;
}

bool PageChecksumOk(const uint8_t* page) {
  return StoredPageChecksum(page) == ComputePageChecksum(page);
}

}  // namespace dqmo
