#include "storage/prefetch.h"

#include <chrono>
#include <cstring>
#include <thread>

#include "common/env.h"
#include "common/metrics.h"
#include "common/recorder.h"
#include "common/string_util.h"
#include "storage/fault.h"

namespace dqmo {
namespace {

struct PrefetchMetrics {
  Counter* issued;
  Counter* hits;
  Counter* wasted;
  Counter* failed;
  Gauge* inflight;
  Histogram* wait_ns;

  static PrefetchMetrics& Get() {
    static PrefetchMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return PrefetchMetrics{
          r.GetCounter("dqmo_prefetch_issued_total",
                       "Speculative page reads submitted"),
          r.GetCounter("dqmo_prefetch_hits_total",
                       "Speculative reads consumed by the traversal"),
          r.GetCounter("dqmo_prefetch_wasted_total",
                       "Speculative reads discarded unconsumed"),
          r.GetCounter("dqmo_prefetch_failed_total",
                       "Speculative reads that failed (I/O or injected)"),
          r.GetGauge("dqmo_prefetch_inflight",
                     "Speculative reads currently tracked"),
          r.GetHistogram("dqmo_prefetch_wait_ns",
                         "Time a consuming read waited for its in-flight "
                         "speculation to land"),
      };
    }();
    return m;
  }
};

}  // namespace

size_t PrefetchDepthFromEnv() {
  const int64_t v = GetEnvInt("DQMO_PREFETCH_DEPTH", 8);
  if (v <= 0) return 0;
  if (v > 256) return 256;
  return static_cast<size_t>(v);
}

Prefetcher::Prefetcher(DiskPageFile* file, const Options& options)
    : file_(file),
      options_(options),
      queue_(file->MakeReadQueue(options.depth == 0 ? 1 : options.depth)) {
  if (!options_.sleeper) {
    options_.sleeper = [](uint64_t delay_us) {
      std::this_thread::sleep_for(std::chrono::microseconds(delay_us));
    };
  }
}

Prefetcher::~Prefetcher() { Quiesce(); }

void Prefetcher::set_injector(FaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  options_.injector = injector;
}

uint8_t* Prefetcher::ThreadScratch() {
  std::lock_guard<std::mutex> lock(scratch_mu_);
  return scratch_[std::this_thread::get_id()].data();
}

size_t Prefetcher::tracked() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.size();
}

uint64_t Prefetcher::failed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failed_;
}

void Prefetcher::ChargeWasted(const Entry& entry, PageId id) {
  // The disk really was read; the memory backend never would have — this
  // is exactly the physical_reads delta the differential test predicts:
  // disk == memory + prefetch_wasted.
  file_->mutable_stats()->physical_reads.fetch_add(1,
                                                   std::memory_order_relaxed);
  file_->mutable_stats()->prefetch_wasted.fetch_add(
      1, std::memory_order_relaxed);
  PrefetchMetrics::Get().wasted->Add();
  if (entry.trace != nullptr) {
    const uint64_t now = NowNs();
    Tracer::RecordRemote(entry.trace, SpanKind::kPrefetchWaste,
                         SpanOrigin::kPrefetchWorker, entry.shard,
                         entry.submit_ns, now - entry.submit_ns, id);
  }
}

void Prefetcher::EraseLocked(
    std::unordered_map<PageId, Entry>::iterator it) {
  tag_to_page_.erase(it->second.tag);
  table_.erase(it);
  PrefetchMetrics::Get().inflight->Set(static_cast<int64_t>(table_.size()));
}

size_t Prefetcher::ReapLocked(bool block) {
  reap_scratch_.clear();
  const size_t n = queue_->Reap(&reap_scratch_, block);
  for (const AsyncCompletion& done : reap_scratch_) {
    auto tag_it = tag_to_page_.find(done.tag);
    if (tag_it == tag_to_page_.end()) continue;  // Already force-erased.
    auto it = table_.find(tag_it->second);
    if (it == table_.end() || it->second.tag != done.tag) continue;
    Entry& entry = it->second;
    const bool io_ok = done.result == static_cast<int32_t>(kPageSize);
    if (entry.canceled) {
      // Doomed while in flight: the buffer is safe to free now; the read
      // happened, so it is wasted, not failed.
      if (io_ok) {
        ChargeWasted(entry, tag_it->second);
      } else {
        ++failed_;
        PrefetchMetrics::Get().failed->Add();
      }
      EraseLocked(it);
      continue;
    }
    if (!io_ok || entry.inject_fail) {
      entry.state = EntryState::kFailed;
      ++failed_;
      PrefetchMetrics::Get().failed->Add();
    } else {
      entry.state = EntryState::kLanded;
    }
  }
  return n;
}

void Prefetcher::Hint(const PageId* ids, size_t n, const ChargeFn& charge) {
  if (options_.depth == 0 || n == 0) return;
  // Causal capture happens here, on the frame thread, before the lock: the
  // active-frame handle and shard tag are thread-local and meaningless on
  // the completion side. One out-of-line call per Hint, zero when unarmed.
  Tracer::FrameHandle frame_trace;
  int16_t hint_shard = -1;
  uint64_t submit_ns = 0;
  if (internal::ThreadFrameArmed()) {
    frame_trace = Tracer::ActiveFrame();
    hint_shard = internal::ThreadCurrentShard();
    submit_ns = NowNs();
  }
  std::lock_guard<std::mutex> lock(mu_);
  // Free completed slots first so a steady traversal keeps the pipe full.
  ReapLocked(/*block=*/false);
  for (size_t i = 0; i < n && table_.size() < options_.depth; ++i) {
    const PageId id = ids[i];
    if (id >= file_->num_pages()) continue;
    if (table_.count(id) != 0) continue;
    // A dirty frame means the on-disk bytes are stale; the sync path
    // serves those from the frame table.
    if (file_->HasDirtyFrame(id)) continue;
    if (charge && !charge()) break;
    Entry entry;
    entry.tag = next_tag_++;
    entry.trace = frame_trace;
    entry.shard = hint_shard;
    entry.submit_ns = submit_ns;
    if (options_.injector != nullptr) {
      // Decision drawn at submit: submission order is deterministic (it
      // follows the traversal's hint order), so the async schedule
      // replays even though kernel completion order does not.
      const FaultInjector::Decision d =
          options_.injector->NextAsyncRead(id);
      using Kind = FaultInjector::Decision::Kind;
      if (d.kind == Kind::kTransientFail ||
          d.kind == Kind::kPermanentFail) {
        entry.inject_fail = true;
      } else if (d.kind == Kind::kSlow) {
        entry.delay_us = d.delay_us;
      }
    }
    auto [it, inserted] = table_.emplace(id, std::move(entry));
    AsyncRead read;
    read.tag = it->second.tag;
    read.offset = file_->PageOffset(id);
    read.buf = it->second.buf.data();
    read.len = kPageSize;
    if (!queue_->Submit(read).ok()) {
      table_.erase(it);  // Queue full: drop the speculation silently.
      break;
    }
    tag_to_page_[read.tag] = id;
    file_->mutable_stats()->prefetch_issued.fetch_add(
        1, std::memory_order_relaxed);
    PrefetchMetrics::Get().issued->Add();
    PrefetchMetrics::Get().inflight->Set(
        static_cast<int64_t>(table_.size()));
  }
}

Result<PageReader::ReadResult> Prefetcher::Read(PageId id) {
  uint64_t delay_us = 0;
  uint8_t* scratch = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = table_.find(id);
    if (it != table_.end() && it->second.state == EntryState::kInflight) {
      const uint64_t tick = TickNs();
      while (it->second.state == EntryState::kInflight) {
        if (ReapLocked(/*block=*/true) == 0) break;  // Queue drained.
        it = table_.find(id);
        if (it == table_.end()) break;
      }
      PrefetchMetrics::Get().wait_ns->RecordSince(tick);
      it = table_.find(id);
    }
    if (it != table_.end()) {
      Entry& entry = it->second;
      if (entry.state == EntryState::kFailed) {
        // Degrade to the synchronous path below. Nothing is charged: the
        // observable account matches a hint never issued, and the frame
        // the traversal fills from the sync read was never touched by the
        // failed speculation.
        EraseLocked(it);
      } else if (entry.state == EntryState::kLanded &&
                 !file_->HasDirtyFrame(id)) {
        // The hit path. Verify-once exactly like DiskPageFile::Read.
        if (file_->verify_on_read() && !file_->PageVerified(id)) {
          if (!PageChecksumOk(entry.buf.data())) {
            file_->mutable_stats()->checksum_failures.fetch_add(
                1, std::memory_order_relaxed);
            EraseLocked(it);
            return Status::Corruption(StrFormat(
                "page %u checksum mismatch (stored %08x, computed %08x)",
                id, StoredPageChecksum(entry.buf.data()),
                ComputePageChecksum(entry.buf.data())));
          }
          file_->MarkPageVerified(id);
        }
        scratch = ThreadScratch();
        std::memcpy(scratch, entry.buf.data(), kPageSize);
        delay_us = entry.delay_us;
        file_->mutable_stats()->physical_reads.fetch_add(
            1, std::memory_order_relaxed);
        file_->mutable_stats()->prefetch_hits.fetch_add(
            1, std::memory_order_relaxed);
        PrefetchMetrics::Get().hits->Add();
        if (entry.trace != nullptr) {
          const uint64_t now = NowNs();
          Tracer::RecordRemote(entry.trace, SpanKind::kPrefetchRead,
                               SpanOrigin::kPrefetchWorker, entry.shard,
                               entry.submit_ns, now - entry.submit_ns, id);
        }
        EraseLocked(it);
      } else if (entry.state == EntryState::kLanded) {
        // Landed but the page has since been dirtied: the speculation is
        // stale. Discard as wasted and read synchronously.
        ChargeWasted(entry, id);
        EraseLocked(it);
      }
    }
  }
  if (scratch != nullptr) {
    // Injected completion latency (the async arm of a slow-read storm) is
    // served at consumption, outside the lock — latency, not loss.
    if (delay_us != 0) options_.sleeper(delay_us);
    return ReadResult{scratch, /*physical=*/true};
  }
  return file_->Read(id);
}

size_t Prefetcher::CancelPending() {
  std::lock_guard<std::mutex> lock(mu_);
  ReapLocked(/*block=*/false);
  size_t affected = 0;
  for (auto it = table_.begin(); it != table_.end();) {
    Entry& entry = it->second;
    if (entry.state == EntryState::kInflight) {
      entry.canceled = true;  // Discarded on completion.
      ++affected;
      ++it;
      continue;
    }
    if (entry.state == EntryState::kLanded) {
      ChargeWasted(entry, it->first);
    } else {
      ++failed_;
      PrefetchMetrics::Get().failed->Add();
    }
    ++affected;
    tag_to_page_.erase(entry.tag);
    it = table_.erase(it);
  }
  PrefetchMetrics::Get().inflight->Set(static_cast<int64_t>(table_.size()));
  if (affected != 0) {
    FlightRecorder::Record(FlightEventKind::kPrefetchCancel, -1, affected);
  }
  return affected;
}

void Prefetcher::Quiesce() {
  std::lock_guard<std::mutex> lock(mu_);
  while (queue_->inflight() > 0) {
    if (ReapLocked(/*block=*/true) == 0) break;
  }
  for (auto it = table_.begin(); it != table_.end();) {
    if (it->second.state == EntryState::kLanded) {
      ChargeWasted(it->second, it->first);
    } else if (it->second.state == EntryState::kInflight) {
      // Unreachable after the drain above, but never leak silently.
      ChargeWasted(it->second, it->first);
    }
    tag_to_page_.erase(it->second.tag);
    it = table_.erase(it);
  }
  PrefetchMetrics::Get().inflight->Set(0);
}

}  // namespace dqmo
