// On-disk page-image format shared by PageFile (SaveTo/LoadFrom), the
// disk-resident DiskPageFile, and the streaming verifiers behind
// `dqmo_tool scrub --backend=pread`.
//
// Three versions share one magic:
//   v1  24-byte header, pages carry no checksums (legacy, read-only);
//   v2  24-byte header, CRC32C trailer per page (PageFile::SaveTo);
//   v3  header padded to one full 4 KiB block, CRC32C per page — every
//       page sits at a 4 KiB-aligned file offset, the layout O_DIRECT and
//       io_uring reads want (DiskPageFile's native format).
//
// The streaming loader reads and verifies ONE page at a time, so callers
// can verify arbitrarily large images with constant memory — the fix for
// the old LoadFrom, which required the whole image resident before the
// first checksum was checked.
#ifndef DQMO_STORAGE_IMAGE_FORMAT_H_
#define DQMO_STORAGE_IMAGE_FORMAT_H_

#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>

#include "common/result.h"
#include "common/status.h"
#include "storage/page.h"

namespace dqmo {

inline constexpr uint64_t kPgfMagic = 0x4451'4d4f'5047'4631ULL;  // DQMOPGF1
inline constexpr uint32_t kPgfVersionLegacy = 1;   // No page checksums.
inline constexpr uint32_t kPgfVersion = 2;         // CRC32C trailer/page.
inline constexpr uint32_t kPgfVersionAligned = 3;  // v2 + 4 KiB header pad.

/// Upper bound on a plausible page count (256 GiB of pages). Headers
/// claiming more are rejected as corrupt before any allocation is sized
/// from them.
inline constexpr uint64_t kMaxLoadablePages = 1ULL << 26;

struct PgfHeader {
  uint64_t magic = kPgfMagic;
  uint32_t version = kPgfVersion;
  uint32_t reserved = 0;
  uint64_t num_pages = 0;
};
static_assert(sizeof(PgfHeader) == 24);

/// Byte offset of page 0 for a given format version (24 for v1/v2, one
/// full page for the aligned v3 layout).
inline uint64_t PgfDataOffset(uint32_t version) {
  return version == kPgfVersionAligned ? static_cast<uint64_t>(kPageSize)
                                       : sizeof(PgfHeader);
}

/// Reads and sanity-checks an image header against the file's actual size:
/// unknown magic/version, absurd page counts, truncation, and trailing
/// garbage all fail with a typed Status before anything is sized from the
/// header. Leaves `f` positioned at page 0.
Result<PgfHeader> ReadPgfHeader(std::FILE* f, const std::string& path);

/// Per-page sink for StreamPgfPages. `page` holds the raw kPageSize bytes
/// of page `id` and is only valid during the call.
using PgfPageSink =
    std::function<Status(uint64_t id, const uint8_t* page)>;

struct StreamPgfOptions {
  /// Verify each page's CRC32C trailer before handing it to the sink
  /// (ignored for v1 images, which carry no checksums); the first mismatch
  /// aborts the stream with Corruption carrying the page id and offset.
  bool verify_checksums = true;
  /// Keep streaming past corrupt pages instead of aborting; each bad page
  /// is counted (and still delivered to the sink) — scrub semantics.
  bool continue_on_corruption = false;
  /// Called once with the validated header before the first page, so sinks
  /// can pre-size their destination (PageFile::LoadFrom) or open their
  /// output file (DiskPageFile::CreateFromImage). A non-OK return aborts.
  std::function<Status(const PgfHeader&)> on_header;
};

struct StreamPgfResult {
  PgfHeader header;
  uint64_t pages_streamed = 0;
  uint64_t corrupt_pages = 0;
};

/// Streams every page of the image at `path` through `sink` with O(1)
/// memory (one page buffer), verifying checksums page-at-a-time per
/// `options`. This is the shared loader behind PageFile::LoadFrom,
/// DiskPageFile::Open/CreateFromImage, and the tool's pread-backend scrub.
Result<StreamPgfResult> StreamPgfPages(const std::string& path,
                                       const StreamPgfOptions& options,
                                       const PgfPageSink& sink);

}  // namespace dqmo

#endif  // DQMO_STORAGE_IMAGE_FORMAT_H_
