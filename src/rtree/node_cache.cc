#include "rtree/node_cache.h"

#include <algorithm>

#include "common/check.h"

namespace dqmo {

DecodedNodeCache::DecodedNodeCache(size_t capacity_nodes, int num_shards) {
  DQMO_CHECK(capacity_nodes >= 1);
  DQMO_CHECK(num_shards >= 1);
  capacity_ = capacity_nodes;
  num_shards_ = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_shards), capacity_nodes));
  shard_capacity_ =
      (capacity_ + static_cast<size_t>(num_shards_) - 1) /
      static_cast<size_t>(num_shards_);
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
}

std::shared_ptr<const SoaNode> DecodedNodeCache::Lookup(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
  return it->second->node;
}

void DecodedNodeCache::Insert(PageId id,
                              std::shared_ptr<const SoaNode> node) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->node = std::move(node);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return;
  }
  if (shard.entries.size() >= shard_capacity_) {
    shard.index.erase(shard.entries.back().id);
    shard.entries.pop_back();
  }
  shard.entries.push_front(Entry{id, std::move(node)});
  shard.index[id] = shard.entries.begin();
}

void DecodedNodeCache::Invalidate(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.entries.erase(it->second);
  shard.index.erase(it);
}

void DecodedNodeCache::Clear() {
  for (int s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.index.clear();
  }
}

size_t DecodedNodeCache::cached_nodes() const {
  size_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace dqmo
