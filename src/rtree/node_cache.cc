#include "rtree/node_cache.h"

#include <algorithm>

#include "common/check.h"
#include "common/metrics.h"

namespace dqmo {
namespace {

/// Process-wide decoded-node-cache metrics (every cache aggregates; the
/// per-cache hits()/misses() accessors remain for per-instance deltas).
struct NodeCacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;
  Counter* invalidations;

  static NodeCacheMetrics& Get() {
    static NodeCacheMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return NodeCacheMetrics{
          r.GetCounter("dqmo_node_cache_hits_total",
                       "Decoded-node cache lookups served without a decode"),
          r.GetCounter("dqmo_node_cache_misses_total",
                       "Decoded-node cache lookups that fell through"),
          r.GetCounter("dqmo_node_cache_evictions_total",
                       "Decoded nodes evicted by the per-shard LRU"),
          r.GetCounter("dqmo_node_cache_invalidations_total",
                       "Decoded nodes dropped because their page changed"),
      };
    }();
    return m;
  }
};

}  // namespace

DecodedNodeCache::DecodedNodeCache(size_t capacity_nodes, int num_shards) {
  DQMO_CHECK(capacity_nodes >= 1);
  DQMO_CHECK(num_shards >= 1);
  capacity_ = capacity_nodes;
  num_shards_ = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(num_shards), capacity_nodes));
  shard_capacity_ =
      (capacity_ + static_cast<size_t>(num_shards_) - 1) /
      static_cast<size_t>(num_shards_);
  shards_ = std::make_unique<Shard[]>(static_cast<size_t>(num_shards_));
}

std::shared_ptr<const SoaNode> DecodedNodeCache::Lookup(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    NodeCacheMetrics::Get().misses->Add();
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  NodeCacheMetrics::Get().hits->Add();
  shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
  return it->second->node;
}

void DecodedNodeCache::Insert(PageId id,
                              std::shared_ptr<const SoaNode> node) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it != shard.index.end()) {
    it->second->node = std::move(node);
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return;
  }
  if (shard.entries.size() >= shard_capacity_) {
    shard.index.erase(shard.entries.back().id);
    shard.entries.pop_back();
    NodeCacheMetrics::Get().evictions->Add();
  }
  shard.entries.push_front(Entry{id, std::move(node)});
  shard.index[id] = shard.entries.begin();
}

void DecodedNodeCache::Invalidate(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(id);
  if (it == shard.index.end()) return;
  shard.entries.erase(it->second);
  shard.index.erase(it);
  NodeCacheMetrics::Get().invalidations->Add();
}

void DecodedNodeCache::Clear() {
  for (int s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.entries.clear();
    shard.index.clear();
  }
}

size_t DecodedNodeCache::cached_nodes() const {
  size_t total = 0;
  for (int s = 0; s < num_shards_; ++s) {
    Shard& shard = shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.entries.size();
  }
  return total;
}

}  // namespace dqmo
