#include "rtree/bulk_load.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {
namespace {

/// Center of a segment's bounds along sort dimension `dim`, where dim 0 is
/// time and dim k (k >= 1) is spatial coordinate k-1.
double SortKey(const MotionSegment& m, int dim) {
  if (dim == 0) return m.seg.time.mid();
  return 0.5 * (m.seg.p0[dim - 1] + m.seg.p1[dim - 1]);
}

/// Recursively sort-tile `items[begin, end)` over sort dimensions
/// `dim..last`, appending groups of at most `group_size` items, in tile
/// order, to `groups` (as [begin, end) index pairs).
void Tile(std::vector<MotionSegment>* items, size_t begin, size_t end,
          int dim, int num_dims, size_t group_size,
          std::vector<std::pair<size_t, size_t>>* groups) {
  const size_t n = end - begin;
  if (n == 0) return;
  if (n <= group_size) {
    groups->emplace_back(begin, end);
    return;
  }
  std::sort(items->begin() + static_cast<ptrdiff_t>(begin),
            items->begin() + static_cast<ptrdiff_t>(end),
            [dim](const MotionSegment& a, const MotionSegment& b) {
              return SortKey(a, dim) < SortKey(b, dim);
            });
  if (dim == num_dims - 1) {
    // Last dimension: emit consecutive runs of group_size.
    for (size_t i = begin; i < end; i += group_size) {
      groups->emplace_back(i, std::min(i + group_size, end));
    }
    return;
  }
  // Number of leaf-groups this range will produce, and slab count per STR:
  // S = ceil(P^(1/remaining_dims)) slabs along this dimension.
  const double p = std::ceil(static_cast<double>(n) /
                             static_cast<double>(group_size));
  const int remaining = num_dims - dim;
  const auto slabs = static_cast<size_t>(std::max(
      1.0, std::ceil(std::pow(p, 1.0 / static_cast<double>(remaining)))));
  const size_t per_slab_raw = (n + slabs - 1) / slabs;
  const size_t per_slab =
      (per_slab_raw + group_size - 1) / group_size * group_size;
  for (size_t i = begin; i < end; i += per_slab) {
    Tile(items, i, std::min(i + per_slab, end), dim + 1, num_dims,
         group_size, groups);
  }
}

}  // namespace

Result<std::unique_ptr<RTree>> BulkLoad(PageStore* file,
                                        std::vector<MotionSegment> segments,
                                        const BulkLoadOptions& options) {
  if (options.pack_fraction <= 0.0 || options.pack_fraction > 1.0) {
    return Status::InvalidArgument("pack fraction must be in (0, 1]");
  }
  DQMO_ASSIGN_OR_RETURN(std::unique_ptr<RTree> tree,
                        RTree::Create(file, options.tree));
  if (segments.empty()) return tree;

  const int dims = options.tree.dims;
  for (MotionSegment& m : segments) {
    if (m.seg.dims() != dims) {
      return Status::InvalidArgument("segment dims mismatch in bulk load");
    }
    if (m.seg.time.empty()) {
      return Status::InvalidArgument("motion segment has empty valid time");
    }
    m.seg = QuantizeStored(m.seg);
    tree->max_speed_ = std::max(tree->max_speed_, m.seg.Speed());
  }

  const auto leaf_group = static_cast<size_t>(std::max(
      1, static_cast<int>(tree->leaf_capacity() * options.pack_fraction)));
  const auto internal_group = static_cast<size_t>(std::max(
      2,
      static_cast<int>(tree->internal_capacity() * options.pack_fraction)));

  std::vector<std::pair<size_t, size_t>> groups;
  Tile(&segments, 0, segments.size(), 0, dims + 1, leaf_group, &groups);

  // Build leaves. Create() made page 1 an empty root leaf; reuse it as the
  // first leaf.
  std::vector<ChildEntry> level_entries;
  level_entries.reserve(groups.size());
  bool first = true;
  for (const auto& [begin, end] : groups) {
    Node leaf;
    leaf.self = first ? tree->root_ : file->Allocate();
    if (!first) ++tree->num_nodes_;
    first = false;
    leaf.level = 0;
    leaf.dims = dims;
    leaf.segments.assign(
        segments.begin() + static_cast<ptrdiff_t>(begin),
        segments.begin() + static_cast<ptrdiff_t>(end));
    if (leaf.count() > leaf.capacity()) {
      return Status::Internal("bulk load produced an overfull leaf");
    }
    DQMO_RETURN_IF_ERROR(tree->StoreNode(&leaf));
    level_entries.push_back(leaf.ComputeEntry());
  }

  // Pack upward until a single node remains.
  int level = 1;
  while (level_entries.size() > 1) {
    std::vector<ChildEntry> next;
    for (size_t i = 0; i < level_entries.size(); i += internal_group) {
      Node node;
      node.self = file->Allocate();
      ++tree->num_nodes_;
      node.level = static_cast<uint16_t>(level);
      node.dims = dims;
      const size_t end = std::min(i + internal_group, level_entries.size());
      node.children.assign(
          level_entries.begin() + static_cast<ptrdiff_t>(i),
          level_entries.begin() + static_cast<ptrdiff_t>(end));
      DQMO_RETURN_IF_ERROR(tree->StoreNode(&node));
      next.push_back(node.ComputeEntry());
    }
    level_entries = std::move(next);
    ++level;
  }
  tree->root_ = level_entries.front().child;
  tree->height_ = level;
  tree->num_segments_ = segments.size();
  DQMO_RETURN_IF_ERROR(tree->Flush());
  return tree;
}

}  // namespace dqmo
