// Sort-Tile-Recursive (STR) bulk loading of the NSI R-tree.
//
// The paper builds its index by repeated insertion; bulk loading is provided
// (a) as the build-cost/query-cost ablation `bench/abl_bulk_load` and (b) to
// make large experiment indexes cheap to rebuild. Query algorithms are
// agnostic to how the tree was built.
#ifndef DQMO_RTREE_BULK_LOAD_H_
#define DQMO_RTREE_BULK_LOAD_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "motion/motion_segment.h"
#include "rtree/rtree.h"

namespace dqmo {

struct BulkLoadOptions {
  RTree::Options tree;
  /// Fraction of node capacity filled by packing. Defaults to the paper's
  /// 0.5 so bulk-loaded trees have page counts comparable to insert-built
  /// ones (insertion with min-fill 0.5 averages ~50-70% occupancy).
  double pack_fraction = 0.5;
};

/// Builds an R-tree over `segments` into the empty `file` using STR
/// packing: items are sorted into tiles by time, then by each spatial
/// coordinate, and nodes are packed bottom-up.
Result<std::unique_ptr<RTree>> BulkLoad(PageStore* file,
                                        std::vector<MotionSegment> segments,
                                        const BulkLoadOptions& options);

}  // namespace dqmo

#endif  // DQMO_RTREE_BULK_LOAD_H_
