// Degraded-result semantics: what a query does when a page of the tree
// cannot be read (I/O failure or checksum mismatch that survived the
// retry policy of storage/fault.h).
//
// The paper's dynamic queries run continuously against a server-resident
// index; aborting a long-running monitoring session because one page went
// bad is usually worse than answering from the readable remainder. The
// contract (DESIGN.md, "Fault model & integrity"):
//
//   kFailFast     — the traversal aborts; the caller sees the typed Status
//                   (Corruption / IOError naming the page). Nothing partial
//                   is returned. This is the default everywhere.
//   kSkipSubtree  — an unreadable node is *skipped*: the traversal records
//                   the page id and the space-time region whose answers may
//                   be lost (the parent entry's bounds), then continues.
//                   The query completes, flagged ResultIntegrity::kPartial.
//
// Under kSkipSubtree, range-style results are a subset of the fault-free
// answer (skipping only removes results, never fabricates them); kNN keeps
// every returned distance correct but may omit true neighbors (the k-th
// returned object can be farther than the true k-th). Callers must check
// integrity() before treating a degraded answer as exact.
#ifndef DQMO_RTREE_FAULT_POLICY_H_
#define DQMO_RTREE_FAULT_POLICY_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "geom/box.h"

namespace dqmo {

/// What a traversal does with an unreadable subtree.
enum class FaultPolicy : uint8_t {
  kFailFast = 0,
  kSkipSubtree = 1,
};

/// Whether an answer is exact or may be missing objects.
enum class ResultIntegrity : uint8_t {
  kComplete = 0,
  kPartial = 1,
};

inline const char* ToString(ResultIntegrity integrity) {
  return integrity == ResultIntegrity::kComplete ? "complete" : "partial";
}

/// Record of the subtrees a degraded traversal could not read: which pages,
/// why, and a cover of the space-time region whose answers may be missing.
class SkipReport {
 public:
  /// Records one unreadable subtree. `bounds` is the parent entry's
  /// space-time box (pass an empty StBox when unknown, e.g. for the root);
  /// `cause` is the final status that made the subtree unreadable.
  void RecordSkip(PageId page, const StBox& bounds, const Status& cause) {
    skipped_pages_.push_back(page);
    lost_region_ = lost_region_.Cover(bounds);
    if (last_cause_.ok()) last_cause_ = cause;
  }

  /// Folds another report into this one (e.g. per-frame into per-session).
  void Merge(const SkipReport& other) { MergeTail(other, 0); }

  /// Folds only other's skips from index `from_index` on — for
  /// incrementally draining a report that keeps accumulating (the session
  /// controller tracks a cursor into its live PDQ's report). The lost
  /// region is covered wholesale, which is safe: it grows monotonically.
  void MergeTail(const SkipReport& other, size_t from_index) {
    skipped_pages_.insert(
        skipped_pages_.end(),
        other.skipped_pages_.begin() +
            static_cast<ptrdiff_t>(
                std::min(from_index, other.skipped_pages_.size())),
        other.skipped_pages_.end());
    lost_region_ = lost_region_.Cover(other.lost_region_);
    if (last_cause_.ok()) last_cause_ = other.last_cause_;
  }

  void Reset() { *this = SkipReport(); }

  /// Number of subtree-root pages skipped. (Descendants of a skipped
  /// subtree were never visited and are not counted — the traversal cannot
  /// know how many there were.)
  uint64_t pages_skipped() const { return skipped_pages_.size(); }
  const std::vector<PageId>& skipped_pages() const { return skipped_pages_; }

  /// Cover of the parent-entry bounds of every skipped subtree: any object
  /// this traversal missed lies inside this space-time box. Empty when
  /// nothing was skipped (or only the root was, whose bounds are unknown).
  const StBox& lost_region() const { return lost_region_; }

  /// First error that caused a skip (OK when nothing was skipped).
  const Status& last_cause() const { return last_cause_; }

  ResultIntegrity integrity() const {
    return skipped_pages_.empty() ? ResultIntegrity::kComplete
                                  : ResultIntegrity::kPartial;
  }

 private:
  std::vector<PageId> skipped_pages_;
  StBox lost_region_;  // Starts empty; Cover() grows it per skip.
  Status last_cause_;
};

}  // namespace dqmo

#endif  // DQMO_RTREE_FAULT_POLICY_H_
