#include "rtree/rtree.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"
#include "common/metrics.h"
#include "common/string_util.h"
#include "common/trace.h"
#include "rtree/split.h"

namespace dqmo {
namespace {

/// The registry side of NodeAccounting (rtree/stats.h): every load charges
/// `loads` plus exactly one of {decoded, physical, pooled}, always from the
/// same callsite, so the sum invariant holds at any quiescent point.
struct NodeLoadMetrics {
  Counter* loads;
  Counter* decoded;
  Counter* physical;
  Counter* pooled;

  static NodeLoadMetrics& Get() {
    static NodeLoadMetrics m = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return NodeLoadMetrics{
          r.GetCounter("dqmo_rtree_node_loads_total",
                       "R-tree node loads requested by queries"),
          r.GetCounter("dqmo_rtree_decoded_hits_total",
                       "Node loads served by the decoded-node cache"),
          r.GetCounter("dqmo_rtree_reads_physical_total",
                       "Node loads that hit the physical page store"),
          r.GetCounter("dqmo_rtree_reads_pooled_total",
                       "Node loads served from a buffer-pool frame"),
      };
    }();
    return m;
  }
};

constexpr uint64_t kTreeMagic = 0x4451'4d4f'5254'5231ULL;  // "DQMORTR1"
constexpr uint32_t kTreeVersion = 2;

struct MetaPage {
  uint64_t magic;
  uint32_t version;
  uint32_t dims;
  PageId root;
  uint32_t height;
  uint64_t num_segments;
  uint64_t num_nodes;
  uint64_t stamp;
  double fill_factor;
  double max_speed;
  uint32_t split_policy;
  uint32_t reserved;
  /// Highest WAL LSN whose insert this image contains (0: none / pre-WAL
  /// image). Appended within the zeroed meta page, so version 2 files
  /// written before durability existed read back as wal_lsn = 0 — "replay
  /// everything" — which is exactly right for them.
  uint64_t wal_lsn;
};

}  // namespace

std::string QueryStats::ToString() const {
  return StrFormat(
      "stats{reads=%llu (leaf %llu), dist=%llu, results=%llu, "
      "pushes=%llu, pops=%llu, dups=%llu, discarded=%llu, skipped=%llu, "
      "decoded=%llu}",
      static_cast<unsigned long long>(node_reads),
      static_cast<unsigned long long>(leaf_reads),
      static_cast<unsigned long long>(distance_computations),
      static_cast<unsigned long long>(objects_returned),
      static_cast<unsigned long long>(queue_pushes),
      static_cast<unsigned long long>(queue_pops),
      static_cast<unsigned long long>(duplicates_skipped),
      static_cast<unsigned long long>(nodes_discarded),
      static_cast<unsigned long long>(pages_skipped),
      static_cast<unsigned long long>(decoded_hits));
}

std::string NodeAccounting::ToString() const {
  return StrFormat(
      "node_accounting{loads=%llu, decoded=%llu, physical=%llu, pooled=%llu}",
      static_cast<unsigned long long>(loads),
      static_cast<unsigned long long>(decoded_hits),
      static_cast<unsigned long long>(physical_reads),
      static_cast<unsigned long long>(pooled_reads));
}

NodeAccounting ReadNodeAccounting() {
  NodeLoadMetrics& nm = NodeLoadMetrics::Get();
  NodeAccounting a;
  a.loads = nm.loads->value();
  a.decoded_hits = nm.decoded->value();
  a.physical_reads = nm.physical->value();
  a.pooled_reads = nm.pooled->value();
  return a;
}

NodeAccounting CheckNodeAccounting() {
  const NodeAccounting a = ReadNodeAccounting();
  if (!a.Consistent()) {
    std::fprintf(stderr, "node-load accounting violated: %s\n",
                 a.ToString().c_str());
  }
  DQMO_CHECK(a.Consistent());
  return a;
}

Result<std::unique_ptr<RTree>> RTree::Create(PageStore* file,
                                             const Options& options) {
  if (file == nullptr) return Status::InvalidArgument("null page file");
  if (file->num_pages() != 0) {
    return Status::FailedPrecondition("Create requires an empty page file");
  }
  if (options.dims < 1 || options.dims > kMaxSpatialDims) {
    return Status::InvalidArgument(
        StrFormat("spatial dims %d out of range", options.dims));
  }
  if (options.fill_factor <= 0.0 || options.fill_factor > 0.5) {
    return Status::InvalidArgument(
        "fill factor must be in (0, 0.5] (minimum fill on split)");
  }
  auto tree = std::unique_ptr<RTree>(new RTree(file, options));
  tree->meta_page_ = file->Allocate();
  DQMO_CHECK(tree->meta_page_ == 0);
  // Empty root leaf.
  tree->root_ = file->Allocate();
  Node root;
  root.self = tree->root_;
  root.level = 0;
  root.dims = options.dims;
  root.stamp = 0;
  DQMO_RETURN_IF_ERROR(tree->StoreNode(&root));
  tree->height_ = 1;
  tree->num_nodes_ = 1;
  DQMO_RETURN_IF_ERROR(tree->WriteMeta());
  return tree;
}

Result<std::unique_ptr<RTree>> RTree::Open(PageStore* file) {
  if (file == nullptr) return Status::InvalidArgument("null page file");
  if (file->num_pages() == 0) {
    return Status::FailedPrecondition("page file is empty");
  }
  DQMO_ASSIGN_OR_RETURN(auto read, file->Read(0));
  MetaPage meta;
  std::memcpy(&meta, read.data, sizeof(meta));
  if (meta.magic != kTreeMagic) {
    return Status::Corruption("page 0 is not a DQMO R-tree meta page");
  }
  if (meta.version != kTreeVersion) {
    return Status::NotSupported(
        StrFormat("tree version %u unsupported", meta.version));
  }
  Options options;
  options.dims = static_cast<int>(meta.dims);
  options.fill_factor = meta.fill_factor;
  options.split_policy = static_cast<SplitPolicy>(meta.split_policy);
  auto tree = std::unique_ptr<RTree>(new RTree(file, options));
  tree->root_ = meta.root;
  tree->height_ = static_cast<int>(meta.height);
  tree->num_segments_ = meta.num_segments;
  tree->num_nodes_ = meta.num_nodes;
  tree->stamp_ = meta.stamp;
  tree->max_speed_ = meta.max_speed;
  tree->applied_lsn_ = meta.wal_lsn;
  return tree;
}

Status RTree::Reopen() {
  if (file_->num_pages() == 0) {
    return Status::FailedPrecondition("page file is empty");
  }
  DQMO_ASSIGN_OR_RETURN(auto read, file_->Read(0));
  MetaPage meta;
  std::memcpy(&meta, read.data, sizeof(meta));
  if (meta.magic != kTreeMagic) {
    return Status::Corruption("page 0 is not a DQMO R-tree meta page");
  }
  if (meta.version != kTreeVersion) {
    return Status::NotSupported(
        StrFormat("tree version %u unsupported", meta.version));
  }
  if (static_cast<int>(meta.dims) != options_.dims) {
    return Status::Corruption(
        StrFormat("reopened tree dims %u != live tree dims %d", meta.dims,
                  options_.dims));
  }
  root_ = meta.root;
  height_ = static_cast<int>(meta.height);
  num_segments_ = meta.num_segments;
  num_nodes_ = meta.num_nodes;
  max_speed_ = meta.max_speed;
  applied_lsn_ = meta.wal_lsn;
  // Strictly newer than every stamp any cache has seen from this tree, on
  // either side of the reload.
  stamp_ = std::max(stamp_, meta.stamp) + 1;
  pending_ = PendingNotice{};
  return Status::OK();
}

Status RTree::WriteMeta() {
  DQMO_ASSIGN_OR_RETURN(auto view, file_->WritableView(meta_page_));
  std::memset(view.data(), 0, view.size());
  MetaPage meta{};
  meta.magic = kTreeMagic;
  meta.version = kTreeVersion;
  meta.dims = static_cast<uint32_t>(options_.dims);
  meta.root = root_;
  meta.height = static_cast<uint32_t>(height_);
  meta.num_segments = num_segments_;
  meta.num_nodes = num_nodes_;
  meta.stamp = stamp_;
  meta.fill_factor = options_.fill_factor;
  meta.max_speed = max_speed_;
  meta.split_policy = static_cast<uint32_t>(options_.split_policy);
  meta.reserved = 0;
  meta.wal_lsn = applied_lsn_;
  view.Write(0, meta);
  return Status::OK();
}

Status RTree::Flush() { return WriteMeta(); }

Result<Node> RTree::LoadForWrite(PageId pid) const {
  DQMO_ASSIGN_OR_RETURN(auto read, file_->Read(pid));
  return Node::DeserializeFrom(read.data, pid);
}

Status RTree::StoreNode(Node* node) const {
  DQMO_ASSIGN_OR_RETURN(auto view, file_->WritableView(node->self));
  // The page is about to change: any cached decode of it is now stale.
  // Writers run either single-threaded or under the exclusive side of the
  // TreeGate, so no reader can observe the window between write and
  // invalidation.
  if (node_cache_ != nullptr) node_cache_->Invalidate(node->self);
  return node->SerializeTo(view);
}

Result<Node> RTree::LoadNode(PageId id, QueryStats* stats,
                             PageReader* reader) const {
  PageReader* src = reader != nullptr ? reader : file_;
  Tracer::SpanScope fetch_span(SpanKind::kNodeFetch, id);
  DQMO_ASSIGN_OR_RETURN(auto read, src->Read(id));
  NodeLoadMetrics& nm = NodeLoadMetrics::Get();
  nm.loads->Add();
  (read.physical ? nm.physical : nm.pooled)->Add();
  DQMO_ASSIGN_OR_RETURN(Node node, Node::DeserializeFrom(read.data, id));
  if (stats != nullptr && read.physical) {
    ++stats->node_reads;
    if (node.is_leaf()) ++stats->leaf_reads;
  }
  return node;
}

Result<std::optional<Node>> RTree::LoadNodeOrSkip(
    PageId id, const StBox& entry_bounds, FaultPolicy policy,
    SkipReport* report, QueryStats* stats, PageReader* reader) const {
  Result<Node> node = LoadNode(id, stats, reader);
  if (node.ok()) return std::optional<Node>(std::move(node).value());
  const Status& s = node.status();
  // Only *read* failures are skippable; a malformed request (OutOfRange id)
  // indicates a caller bug and propagates under either policy.
  const bool skippable = s.IsIOError() || s.IsCorruption();
  if (policy != FaultPolicy::kSkipSubtree || !skippable) return s;
  if (report != nullptr) report->RecordSkip(id, entry_bounds, s);
  if (stats != nullptr) ++stats->pages_skipped;
  return std::optional<Node>(std::nullopt);
}

Result<std::shared_ptr<const SoaNode>> RTree::LoadNodeSoa(
    PageId id, QueryStats* stats, PageReader* reader) const {
  if (node_cache_ != nullptr) {
    std::shared_ptr<const SoaNode> cached = node_cache_->Lookup(id);
    if (cached != nullptr) {
      if (stats != nullptr) {
        stats->decoded_hits.fetch_add(1, std::memory_order_relaxed);
      }
      NodeLoadMetrics& nm = NodeLoadMetrics::Get();
      nm.loads->Add();
      nm.decoded->Add();
      return cached;
    }
  }
  PageReader* src = reader != nullptr ? reader : file_;
  Tracer::SpanScope fetch_span(SpanKind::kNodeFetch, id);
  DQMO_ASSIGN_OR_RETURN(auto read, src->Read(id));
  {
    NodeLoadMetrics& nm = NodeLoadMetrics::Get();
    nm.loads->Add();
    (read.physical ? nm.physical : nm.pooled)->Add();
  }
  auto node = std::make_shared<SoaNode>();
  {
    Tracer::SpanScope decode_span(SpanKind::kSoaDecode, id);
    DQMO_RETURN_IF_ERROR(node->DecodeFrom(read.data, id));
  }
  if (stats != nullptr && read.physical) {
    stats->node_reads.fetch_add(1, std::memory_order_relaxed);
    if (node->is_leaf()) {
      stats->leaf_reads.fetch_add(1, std::memory_order_relaxed);
    }
  }
  std::shared_ptr<const SoaNode> result = std::move(node);
  if (node_cache_ != nullptr) node_cache_->Insert(id, result);
  return result;
}

Result<std::shared_ptr<const SoaNode>> RTree::LoadNodeSoaOrSkip(
    PageId id, const StBox& entry_bounds, FaultPolicy policy,
    SkipReport* report, QueryStats* stats, PageReader* reader) const {
  Result<std::shared_ptr<const SoaNode>> node =
      LoadNodeSoa(id, stats, reader);
  if (node.ok()) return node;
  const Status& s = node.status();
  // Same skippability rule as LoadNodeOrSkip: only read failures are
  // absorbable; malformed requests propagate under either policy.
  const bool skippable = s.IsIOError() || s.IsCorruption();
  if (policy != FaultPolicy::kSkipSubtree || !skippable) return s;
  if (report != nullptr) report->RecordSkip(id, entry_bounds, s);
  if (stats != nullptr) {
    stats->pages_skipped.fetch_add(1, std::memory_order_relaxed);
  }
  return std::shared_ptr<const SoaNode>(nullptr);
}

Result<StBox> RTree::RootBounds() const {
  DQMO_ASSIGN_OR_RETURN(Node root, LoadNode(root_, nullptr));
  return root.ComputeBounds();
}

void RTree::AddListener(UpdateListener* listener) {
  DQMO_CHECK(listener != nullptr);
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.push_back(listener);
}

void RTree::RemoveListener(UpdateListener* listener) {
  std::lock_guard<std::mutex> lock(listeners_mu_);
  listeners_.erase(
      std::remove(listeners_.begin(), listeners_.end(), listener),
      listeners_.end());
}

PageId RTree::AllocatePage() {
  if (!free_pages_.empty()) {
    const PageId id = free_pages_.back();
    free_pages_.pop_back();
    return id;
  }
  return file_->Allocate();
}

void RTree::FreePage(PageId id) {
  if (node_cache_ != nullptr) node_cache_->Invalidate(id);
  free_pages_.push_back(id);
}

int RTree::MinFill(bool leaf) const {
  const int capacity = leaf ? leaf_capacity() : internal_capacity();
  return std::max(1, static_cast<int>(capacity * options_.fill_factor));
}

Result<ChildEntry> RTree::SplitNode(Node* node, int forced_index) {
  std::vector<StBox> boxes;
  const int n = node->count();
  boxes.reserve(static_cast<size_t>(n));
  if (node->is_leaf()) {
    for (const MotionSegment& m : node->segments) {
      boxes.push_back(QuantizeOutward(m.Bounds()));
    }
  } else {
    for (const ChildEntry& e : node->children) boxes.push_back(e.bounds);
  }
  const int min_fill = std::max(
      1, static_cast<int>(node->capacity() * options_.fill_factor));
  const SplitPlan plan =
      SplitEntries(options_.split_policy, boxes, min_fill, forced_index);

  Node sibling;
  sibling.self = AllocatePage();
  sibling.level = node->level;
  sibling.dims = node->dims;
  sibling.stamp = stamp_;
  ++num_nodes_;

  Node kept;
  kept.self = node->self;
  kept.level = node->level;
  kept.dims = node->dims;
  kept.stamp = stamp_;
  if (node->is_leaf()) {
    for (int idx : plan.keep) {
      kept.segments.push_back(node->segments[static_cast<size_t>(idx)]);
    }
    for (int idx : plan.move) {
      sibling.segments.push_back(node->segments[static_cast<size_t>(idx)]);
    }
  } else {
    for (int idx : plan.keep) {
      kept.children.push_back(node->children[static_cast<size_t>(idx)]);
    }
    for (int idx : plan.move) {
      sibling.children.push_back(node->children[static_cast<size_t>(idx)]);
    }
  }
  *node = std::move(kept);
  DQMO_RETURN_IF_ERROR(StoreNode(node));
  DQMO_RETURN_IF_ERROR(StoreNode(&sibling));

  ChildEntry entry = sibling.ComputeEntry();
  // Record the topmost new node: splits unwind bottom-up, so the last call
  // during one Insert holds the highest new node, which (by same-path
  // forcing) covers every earlier one plus the inserted segment.
  pending_.any_split = true;
  pending_.topmost = entry;
  pending_.topmost_level = sibling.level;
  return entry;
}

Result<RTree::InsertOutcome> RTree::InsertInto(PageId pid, int node_level,
                                               const MotionSegment& m) {
  DQMO_ASSIGN_OR_RETURN(Node node, LoadForWrite(pid));
  DQMO_CHECK(node.level == node_level);
  node.stamp = stamp_;  // NPDQ update management: stamp the insertion path.
  const StBox mbounds = QuantizeOutward(m.Bounds());

  if (node.is_leaf()) {
    node.segments.push_back(m);
    if (node.count() <= node.capacity()) {
      DQMO_RETURN_IF_ERROR(StoreNode(&node));
      return InsertOutcome{node.ComputeEntry(), std::nullopt};
    }
    DQMO_ASSIGN_OR_RETURN(
        ChildEntry sibling, SplitNode(&node, node.count() - 1));
    return InsertOutcome{node.ComputeEntry(), sibling};
  }

  // ChooseSubtree: least enlargement, ties by smaller measure.
  int best = -1;
  double best_enl = kInf;
  double best_measure = kInf;
  for (int i = 0; i < node.count(); ++i) {
    const StBox& b = node.children[static_cast<size_t>(i)].bounds;
    const double enl = Enlargement(b, mbounds);
    const double measure = SplitMeasure(b);
    if (enl < best_enl || (enl == best_enl && measure < best_measure)) {
      best = i;
      best_enl = enl;
      best_measure = measure;
    }
  }
  DQMO_CHECK(best >= 0);

  ChildEntry& slot = node.children[static_cast<size_t>(best)];
  const PageId chosen_child = slot.child;
  DQMO_ASSIGN_OR_RETURN(InsertOutcome child_outcome,
                        InsertInto(chosen_child, node_level - 1, m));
  slot = child_outcome.updated_entry;
  slot.child = chosen_child;

  if (child_outcome.new_sibling.has_value()) {
    node.children.push_back(*child_outcome.new_sibling);
    if (node.count() > node.capacity()) {
      DQMO_ASSIGN_OR_RETURN(
          ChildEntry sibling, SplitNode(&node, node.count() - 1));
      return InsertOutcome{node.ComputeEntry(), sibling};
    }
  }
  DQMO_RETURN_IF_ERROR(StoreNode(&node));
  return InsertOutcome{node.ComputeEntry(), std::nullopt};
}

Status RTree::Insert(const MotionSegment& m) {
  if (m.seg.dims() != options_.dims) {
    return Status::InvalidArgument(
        StrFormat("segment dims %d != tree dims %d", m.seg.dims(),
                  options_.dims));
  }
  if (m.seg.time.empty()) {
    return Status::InvalidArgument("motion segment has empty valid time");
  }
  MotionSegment stored = m;
  stored.seg = QuantizeStored(m.seg);
  max_speed_ = std::max(max_speed_, stored.seg.Speed());

  ++stamp_;
  pending_ = PendingNotice{};
  DQMO_ASSIGN_OR_RETURN(InsertOutcome outcome,
                        InsertInto(root_, height_ - 1, stored));
  if (outcome.new_sibling.has_value()) {
    // Root split: grow the tree by one level.
    Node new_root;
    new_root.self = AllocatePage();
    new_root.level = static_cast<uint16_t>(height_);
    new_root.dims = options_.dims;
    new_root.stamp = stamp_;
    ChildEntry old_root_entry = outcome.updated_entry;
    old_root_entry.child = root_;
    new_root.children.push_back(old_root_entry);
    new_root.children.push_back(*outcome.new_sibling);
    DQMO_RETURN_IF_ERROR(StoreNode(&new_root));
    root_ = new_root.self;
    ++height_;
    ++num_nodes_;
    pending_.root_split = true;
  }
  ++num_segments_;

  // Durable-insert hook: buffer a redo record for the stored (quantized)
  // segment — replaying it through Insert reproduces the index bit-for-bit
  // because quantization is idempotent. Not durable (and therefore not
  // acknowledgeable) until the owner calls WalWriter::Sync; the concurrent
  // engine does so in the TreeGate write guard before readers resume.
  if (wal_ != nullptr) {
    DQMO_ASSIGN_OR_RETURN(applied_lsn_, wal_->AppendInsert(stored));
  }

  // Fire exactly one notification, mirroring Sect. 4.1's update protocol.
  // Held across the callbacks: Insert runs under the exclusive TreeGate in
  // concurrent mode, so no session is mid-frame, and the callbacks only
  // push queue items (no I/O, no other locks) — the lock order is always
  // gate, then listeners_mu_.
  std::lock_guard<std::mutex> listeners_lock(listeners_mu_);
  for (UpdateListener* l : listeners_) {
    if (pending_.root_split) {
      l->OnRootSplit(root_);
    } else if (pending_.any_split) {
      l->OnSubtreeCreated(pending_.topmost, pending_.topmost_level);
    } else {
      l->OnObjectInserted(stored);
    }
  }
  return Status::OK();
}

Status RTree::DissolveSubtree(PageId pid,
                              std::vector<MotionSegment>* orphans) {
  DQMO_ASSIGN_OR_RETURN(Node node, LoadForWrite(pid));
  if (node.is_leaf()) {
    orphans->insert(orphans->end(), node.segments.begin(),
                    node.segments.end());
  } else {
    for (const ChildEntry& e : node.children) {
      DQMO_RETURN_IF_ERROR(DissolveSubtree(e.child, orphans));
    }
  }
  FreePage(pid);
  --num_nodes_;
  return Status::OK();
}

Result<RTree::RemoveOutcome> RTree::RemoveFrom(
    PageId pid, int node_level, const MotionSegment::Key& key,
    const StBox& guide, std::vector<MotionSegment>* orphans) {
  DQMO_ASSIGN_OR_RETURN(Node node, LoadForWrite(pid));
  DQMO_CHECK(node.level == node_level);
  const bool is_root = pid == root_;

  RemoveOutcome outcome;
  if (node.is_leaf()) {
    auto it = std::find_if(
        node.segments.begin(), node.segments.end(),
        [&](const MotionSegment& m) { return m.key() == key; });
    if (it == node.segments.end()) return outcome;  // Not here.
    node.segments.erase(it);
    outcome.removed = true;
    node.stamp = stamp_;
    if (!is_root && node.count() < MinFill(/*leaf=*/true)) {
      orphans->insert(orphans->end(), node.segments.begin(),
                      node.segments.end());
      FreePage(pid);
      --num_nodes_;
      outcome.node_dissolved = true;
      return outcome;
    }
    DQMO_RETURN_IF_ERROR(StoreNode(&node));
    outcome.updated_entry = node.ComputeEntry();
    return outcome;
  }

  for (size_t i = 0; i < node.children.size(); ++i) {
    if (!node.children[i].bounds.Overlaps(guide)) continue;
    DQMO_ASSIGN_OR_RETURN(
        RemoveOutcome child_outcome,
        RemoveFrom(node.children[i].child, node_level - 1, key, guide,
                   orphans));
    if (!child_outcome.removed) continue;
    outcome.removed = true;
    node.stamp = stamp_;
    if (child_outcome.node_dissolved) {
      node.children.erase(node.children.begin() +
                          static_cast<ptrdiff_t>(i));
    } else {
      const PageId child_id = node.children[i].child;
      node.children[i] = child_outcome.updated_entry;
      node.children[i].child = child_id;
    }
    if (!is_root && node.count() < MinFill(/*leaf=*/false)) {
      // Condense: dissolve this whole node; survivors get reinserted.
      for (const ChildEntry& e : node.children) {
        DQMO_RETURN_IF_ERROR(DissolveSubtree(e.child, orphans));
      }
      FreePage(pid);
      --num_nodes_;
      outcome.node_dissolved = true;
      return outcome;
    }
    DQMO_RETURN_IF_ERROR(StoreNode(&node));
    outcome.updated_entry = node.ComputeEntry();
    return outcome;
  }
  return outcome;  // Not found along any overlapping branch.
}

Status RTree::Remove(const MotionSegment& m) {
  if (m.seg.dims() != options_.dims) {
    return Status::InvalidArgument("segment dims mismatch");
  }
  MotionSegment stored = m;
  stored.seg = QuantizeStored(m.seg);
  const StBox guide = QuantizeOutward(stored.Bounds());

  ++stamp_;
  std::vector<MotionSegment> orphans;
  DQMO_ASSIGN_OR_RETURN(
      RemoveOutcome outcome,
      RemoveFrom(root_, height_ - 1, stored.key(), guide, &orphans));
  if (!outcome.removed) {
    return Status::NotFound(
        StrFormat("no motion segment with oid %u starting at %g", m.oid,
                  m.seg.time.lo));
  }
  --num_segments_;

  // Collapse a degenerate root chain: an internal root with one child.
  for (;;) {
    QueryStats scratch;
    DQMO_ASSIGN_OR_RETURN(Node root, LoadNode(root_, &scratch));
    if (root.is_leaf() || root.count() != 1) break;
    const PageId only_child = root.children.front().child;
    FreePage(root_);
    --num_nodes_;
    root_ = only_child;
    --height_;
  }

  // Reinsert survivors of condensed nodes. Insert() counts and stamps, so
  // pre-deduct them from the segment count.
  num_segments_ -= orphans.size();
  for (const MotionSegment& orphan : orphans) {
    DQMO_RETURN_IF_ERROR(Insert(orphan));
  }
  return Status::OK();
}

namespace {

/// Shared DFS for the two range-search variants.
struct RangeSearchDriver {
  const RTree* tree;
  const StBox* query;
  QueryStats* stats;
  PageReader* reader;
  bool exact_leaf_test;
  std::vector<MotionSegment>* out;
  FaultPolicy fault_policy = FaultPolicy::kFailFast;
  SkipReport* skip_report = nullptr;

  Status Visit(PageId pid, const StBox& entry_bounds) {
    DQMO_ASSIGN_OR_RETURN(
        std::optional<Node> maybe_node,
        tree->LoadNodeOrSkip(pid, entry_bounds, fault_policy, skip_report,
                             stats, reader));
    if (!maybe_node.has_value()) return Status::OK();  // Subtree skipped.
    const Node& node = *maybe_node;
    if (node.is_leaf()) {
      for (const MotionSegment& m : node.segments) {
        ++stats->distance_computations;
        const bool hit = exact_leaf_test
                             ? m.seg.Intersects(*query)
                             : QuantizeOutward(m.Bounds()).Overlaps(*query);
        if (hit) {
          out->push_back(m);
          ++stats->objects_returned;
        }
      }
      return Status::OK();
    }
    for (const ChildEntry& e : node.children) {
      ++stats->distance_computations;
      if (e.bounds.Overlaps(*query)) {
        DQMO_RETURN_IF_ERROR(Visit(e.child, e.bounds));
      }
    }
    return Status::OK();
  }
};

}  // namespace

Result<std::vector<MotionSegment>> RTree::RangeSearch(
    const StBox& q, QueryStats* stats, PageReader* reader) const {
  SearchOptions opts;
  opts.reader = reader;
  return RangeSearch(q, stats, opts);
}

Result<std::vector<MotionSegment>> RTree::RangeSearch(
    const StBox& q, QueryStats* stats, const SearchOptions& opts) const {
  if (q.spatial.dims != options_.dims) {
    return Status::InvalidArgument("query dims mismatch");
  }
  DQMO_CHECK(stats != nullptr);
  std::vector<MotionSegment> out;
  if (q.empty()) return out;
  RangeSearchDriver driver{this,
                           &q,
                           stats,
                           opts.reader,
                           /*exact_leaf_test=*/true,
                           &out,
                           opts.fault_policy,
                           opts.skip_report};
  DQMO_RETURN_IF_ERROR(driver.Visit(root_, StBox()));
  return out;
}

Result<std::vector<MotionSegment>> RTree::RangeSearchBbOnly(
    const StBox& q, QueryStats* stats, PageReader* reader) const {
  if (q.spatial.dims != options_.dims) {
    return Status::InvalidArgument("query dims mismatch");
  }
  DQMO_CHECK(stats != nullptr);
  std::vector<MotionSegment> out;
  if (q.empty()) return out;
  RangeSearchDriver driver{this, &q,   stats, reader, /*exact_leaf_test=*/false,
                           &out};
  DQMO_RETURN_IF_ERROR(driver.Visit(root_, StBox()));
  return out;
}

namespace {

Status CheckSubtree(const RTree& tree, PageId pid, int expected_level,
                    const ChildEntry* parent_entry, int min_fill_internal,
                    int min_fill_leaf, bool is_root, UpdateStamp tree_stamp,
                    bool check_min_fill, uint64_t* segment_count,
                    size_t* node_count) {
  QueryStats scratch;
  DQMO_ASSIGN_OR_RETURN(Node node, tree.LoadNode(pid, &scratch));
  ++*node_count;
  if (node.level != expected_level) {
    return Status::Corruption(
        StrFormat("node %u: level %u, expected %d", pid, node.level,
                  expected_level));
  }
  if (node.stamp > tree_stamp) {
    return Status::Corruption(
        StrFormat("node %u: stamp %llu newer than tree stamp %llu", pid,
                  static_cast<unsigned long long>(node.stamp),
                  static_cast<unsigned long long>(tree_stamp)));
  }
  const ChildEntry tight = node.ComputeEntry();
  if (parent_entry != nullptr) {
    if (!parent_entry->bounds.Contains(tight.bounds) ||
        !parent_entry->start_times.Contains(tight.start_times) ||
        !parent_entry->end_times.Contains(tight.end_times)) {
      return Status::Corruption(
          StrFormat("node %u: geometry not contained in parent entry", pid));
    }
  }
  if (!node.is_leaf()) {
    for (const ChildEntry& e : node.children) {
      if (e.bounds.time.lo != e.start_times.lo ||
          e.bounds.time.hi != e.end_times.hi) {
        return Status::Corruption(StrFormat(
            "node %u: combined time interval inconsistent with start/end "
            "extents",
            pid));
      }
    }
  }
  const int min_fill = node.is_leaf() ? min_fill_leaf : min_fill_internal;
  if (check_min_fill && !is_root && node.count() < min_fill) {
    return Status::Corruption(
        StrFormat("node %u: underfull (%d < %d)", pid, node.count(),
                  min_fill));
  }
  if (is_root && !node.is_leaf() && node.count() < 2) {
    return Status::Corruption("internal root has fewer than 2 children");
  }
  if (node.is_leaf()) {
    *segment_count += static_cast<uint64_t>(node.count());
    return Status::OK();
  }
  for (const ChildEntry& e : node.children) {
    DQMO_RETURN_IF_ERROR(
        CheckSubtree(tree, e.child, expected_level - 1, &e,
                     min_fill_internal, min_fill_leaf, /*is_root=*/false,
                     tree_stamp, check_min_fill, segment_count, node_count));
  }
  return Status::OK();
}

}  // namespace

Status RTree::CheckInvariants(bool check_min_fill) const {
  uint64_t segment_count = 0;
  size_t node_count = 0;
  const int min_internal = std::max(
      1, static_cast<int>(internal_capacity() * options_.fill_factor));
  const int min_leaf =
      std::max(1, static_cast<int>(leaf_capacity() * options_.fill_factor));
  DQMO_RETURN_IF_ERROR(CheckSubtree(
      *this, root_, height_ - 1, nullptr, min_internal, min_leaf,
      /*is_root=*/true, stamp_, check_min_fill, &segment_count, &node_count));
  if (segment_count != num_segments_) {
    return Status::Corruption(
        StrFormat("segment count mismatch: tree says %llu, scan found %llu",
                  static_cast<unsigned long long>(num_segments_),
                  static_cast<unsigned long long>(segment_count)));
  }
  if (node_count != num_nodes_) {
    return Status::Corruption(
        StrFormat("node count mismatch: tree says %zu, scan found %zu",
                  num_nodes_, node_count));
  }
  return Status::OK();
}

}  // namespace dqmo
