// Guttman's quadratic node split, with optional "forced entry" placement.
//
// The forced entry supports the paper's update-management requirement
// (Sect. 4.1): when an insertion causes a cascade of splits, all newly
// created nodes must lie on one root-to-leaf path, so that a single
// lowest-common-ancestor entry covers them. We achieve this by forcing the
// entry that caused the overflow into the *new* node of every split on the
// way up — the paper notes this "incurs no extra cost nor conflict with the
// original splitting policy" (which group keeps the original page is
// arbitrary in Guttman's algorithm).
#ifndef DQMO_RTREE_SPLIT_H_
#define DQMO_RTREE_SPLIT_H_

#include <vector>

#include "geom/box.h"

namespace dqmo {

/// Outcome of a split: indices of entries that stay on the original page
/// and indices that move to the newly allocated page.
struct SplitPlan {
  std::vector<int> keep;
  std::vector<int> move;
};

/// Measure used for split/choose-subtree decisions: the space-time volume
/// with a small additive epsilon per dimension, so degenerate (zero-extent)
/// rectangles still order sensibly.
double SplitMeasure(const StBox& box);

/// Enlargement of `base`'s measure needed to also cover `extra`.
double Enlargement(const StBox& base, const StBox& extra);

/// Quadratic split of `boxes` (size >= 2) into two groups with at least
/// `min_fill` entries each. If `forced_index` >= 0, that entry is guaranteed
/// to land in the `move` group.
SplitPlan QuadraticSplit(const std::vector<StBox>& boxes, int min_fill,
                         int forced_index = -1);

/// R*-style split (Beckmann et al., the paper's reference [2], without
/// forced reinsertion): choose the split axis by minimum margin sum over
/// the sorted distributions, then the distribution with minimum group
/// overlap (ties by combined measure). O(n log n) per axis vs the
/// quadratic algorithm's O(n^2). Same forced-entry guarantee.
SplitPlan RstarSplit(const std::vector<StBox>& boxes, int min_fill,
                     int forced_index = -1);

/// Split algorithm selector (RTree::Options::split_policy).
enum class SplitPolicy {
  kQuadratic,  // Guttman's quadratic split (the paper's setup).
  kRstar,      // R*-style topological split.
};

/// Dispatches on `policy`.
SplitPlan SplitEntries(SplitPolicy policy, const std::vector<StBox>& boxes,
                       int min_fill, int forced_index = -1);

}  // namespace dqmo

#endif  // DQMO_RTREE_SPLIT_H_
