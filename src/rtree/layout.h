// On-page layout of R-tree nodes.
//
// One node per 4 KiB page. Coordinates are stored as float32 with outward
// rounding for bounds. With d = 2 spatial dimensions a leaf entry is 32
// bytes, giving the paper's leaf fanout of 127 (Sect. 5).
//
// Internal entries carry *two* temporal extents — the range of motion
// start-times and the range of motion end-times beneath the child — rather
// than the single [min-start, max-end] interval of classic NSI. The paper's
// NPDQ algorithm adopts "double temporal axes" (Fig. 5(b)) precisely so the
// discardability test (Q ∩ R) ⊆ P is not vacuous for temporally-disjoint
// consecutive snapshots; that test needs the max start-time of a subtree,
// which a single combined interval cannot provide. The cost is a 36-byte
// internal entry and fanout 113 at d = 2 (vs the 28-byte / 145 figure the
// paper reports for its plain-interval layout); DESIGN.md discusses this
// deviation.
#ifndef DQMO_RTREE_LAYOUT_H_
#define DQMO_RTREE_LAYOUT_H_

#include <cstdint>

#include "common/types.h"
#include "geom/box.h"
#include "geom/segment.h"
#include "storage/page.h"

namespace dqmo {

/// Node header at offset 0 of every node page.
struct NodeHeader {
  uint16_t level;     // 0 = leaf.
  uint16_t count;     // Number of entries.
  uint16_t dims;      // Spatial dimensionality d.
  uint16_t reserved;  // Padding.
  uint64_t stamp;     // NPDQ update timestamp (Sect. 4.2).
  uint64_t unused;    // Room for future per-node metadata.
};
static_assert(sizeof(NodeHeader) == 24);

inline constexpr size_t kNodeHeaderSize = sizeof(NodeHeader);

/// Bytes per internal entry: d spatial extents + start-time extent +
/// end-time extent (2 float32 each) + one PageId child pointer.
constexpr size_t InternalEntrySize(int dims) {
  return static_cast<size_t>(dims + 2) * 2 * sizeof(float) + sizeof(PageId);
}

/// Bytes per leaf entry: ObjectId + [t_l, t_h] + start point + end point,
/// rounded up to 8-byte alignment (this padding is what yields the paper's
/// leaf fanout of 127 at d = 2).
constexpr size_t LeafEntrySize(int dims) {
  const size_t raw = sizeof(ObjectId) + 2 * sizeof(float) +
                     2 * static_cast<size_t>(dims) * sizeof(float);
  return (raw + 7) / 8 * 8;
}

/// Maximum entries per internal node (fanout). 113 for d = 2 (see the
/// double-temporal-axes note above). Entries fill the page payload; the
/// last kPageTrailerSize bytes are the page-format-v2 checksum trailer
/// (storage/page.h), which happens to fit in the slack the entry layouts
/// left unused, so v2 fanouts equal the v1 fanouts at every d.
constexpr int InternalCapacity(int dims) {
  return static_cast<int>((kPagePayloadSize - kNodeHeaderSize) /
                          InternalEntrySize(dims));
}

/// Maximum entries per leaf node. 127 for d = 2.
constexpr int LeafCapacity(int dims) {
  return static_cast<int>((kPagePayloadSize - kNodeHeaderSize) /
                          LeafEntrySize(dims));
}

static_assert(InternalEntrySize(2) == 36);
static_assert(InternalCapacity(2) == 113,
              "internal fanout for the double-temporal-axes layout");
static_assert(LeafCapacity(2) == 127,
              "leaf fanout must match the paper's setup");

/// Converts a double lower bound to float32, rounding toward -inf so the
/// stored bound never excludes covered space.
float FloatLowerBound(double v);

/// Converts a double upper bound to float32, rounding toward +inf.
float FloatUpperBound(double v);

/// Quantizes an interval outward to float32 precision.
Interval QuantizeOutward(const Interval& iv);

/// Quantizes a space-time box outward to float32 precision (bounds remain
/// conservative: the quantized box contains the original).
StBox QuantizeOutward(const StBox& box);

/// Quantizes a motion segment to the precision actually stored on a leaf
/// page (plain float32 rounding of endpoints and times — these are data
/// values, not bounds). Inserting a segment stores exactly this form; use it
/// to predict what queries will see.
StSegment QuantizeStored(const StSegment& seg);

}  // namespace dqmo

#endif  // DQMO_RTREE_LAYOUT_H_
