#include "rtree/split.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/string_util.h"
#include "rtree/stats.h"

namespace dqmo {
namespace {

// Additive padding per dimension so degenerate rectangles (points, purely
// spatial or purely temporal extents) still produce a meaningful ordering.
constexpr double kMeasureEps = 1e-6;

}  // namespace

double SplitMeasure(const StBox& box) {
  if (box.empty()) return 0.0;
  double m = box.time.length() + kMeasureEps;
  for (int i = 0; i < box.spatial.dims; ++i) {
    m *= box.spatial.extent(i).length() + kMeasureEps;
  }
  return m;
}

double Enlargement(const StBox& base, const StBox& extra) {
  if (base.empty()) return SplitMeasure(extra);
  return SplitMeasure(base.Cover(extra)) - SplitMeasure(base);
}

SplitPlan QuadraticSplit(const std::vector<StBox>& boxes, int min_fill,
                         int forced_index) {
  const int n = static_cast<int>(boxes.size());
  DQMO_CHECK(n >= 2);
  DQMO_CHECK(min_fill >= 1 && 2 * min_fill <= n);
  DQMO_CHECK(forced_index < n);

  // PickSeeds: the pair wasting the most area if grouped together.
  int seed_a = 0;
  int seed_b = 1;
  double worst = -kInf;
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double waste = SplitMeasure(boxes[static_cast<size_t>(i)].Cover(
                               boxes[static_cast<size_t>(j)])) -
                           SplitMeasure(boxes[static_cast<size_t>(i)]) -
                           SplitMeasure(boxes[static_cast<size_t>(j)]);
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  std::vector<int> group_a{seed_a};
  std::vector<int> group_b{seed_b};
  StBox cover_a = boxes[static_cast<size_t>(seed_a)];
  StBox cover_b = boxes[static_cast<size_t>(seed_b)];

  std::vector<bool> assigned(static_cast<size_t>(n), false);
  assigned[static_cast<size_t>(seed_a)] = true;
  assigned[static_cast<size_t>(seed_b)] = true;
  int remaining = n - 2;

  auto add_to = [&](std::vector<int>* group, StBox* cover, int idx) {
    group->push_back(idx);
    *cover = cover->Cover(boxes[static_cast<size_t>(idx)]);
    assigned[static_cast<size_t>(idx)] = true;
    --remaining;
  };

  while (remaining > 0) {
    // If one group must take all remaining entries to reach min_fill,
    // assign them wholesale (Guttman's termination rule).
    if (static_cast<int>(group_a.size()) + remaining == min_fill) {
      for (int i = 0; i < n; ++i) {
        if (!assigned[static_cast<size_t>(i)]) add_to(&group_a, &cover_a, i);
      }
      break;
    }
    if (static_cast<int>(group_b.size()) + remaining == min_fill) {
      for (int i = 0; i < n; ++i) {
        if (!assigned[static_cast<size_t>(i)]) add_to(&group_b, &cover_b, i);
      }
      break;
    }

    // PickNext: entry with maximum preference for one group.
    int best = -1;
    double best_diff = -kInf;
    double best_da = 0.0;
    double best_db = 0.0;
    for (int i = 0; i < n; ++i) {
      if (assigned[static_cast<size_t>(i)]) continue;
      const double da = Enlargement(cover_a, boxes[static_cast<size_t>(i)]);
      const double db = Enlargement(cover_b, boxes[static_cast<size_t>(i)]);
      const double diff = std::abs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        best = i;
        best_da = da;
        best_db = db;
      }
    }
    DQMO_CHECK(best >= 0);
    // Resolve: smaller enlargement, then smaller measure, then fewer entries.
    bool to_a;
    if (best_da != best_db) {
      to_a = best_da < best_db;
    } else if (SplitMeasure(cover_a) != SplitMeasure(cover_b)) {
      to_a = SplitMeasure(cover_a) < SplitMeasure(cover_b);
    } else {
      to_a = group_a.size() <= group_b.size();
    }
    if (to_a) {
      add_to(&group_a, &cover_a, best);
    } else {
      add_to(&group_b, &cover_b, best);
    }
  }

  SplitPlan plan;
  plan.keep = std::move(group_a);
  plan.move = std::move(group_b);
  // Same-path forcing: which group stays on the original page is arbitrary
  // for split quality, so put the forced entry's group on the new page.
  if (forced_index >= 0) {
    const bool forced_in_keep =
        std::find(plan.keep.begin(), plan.keep.end(), forced_index) !=
        plan.keep.end();
    if (forced_in_keep) std::swap(plan.keep, plan.move);
  }
  std::sort(plan.keep.begin(), plan.keep.end());
  std::sort(plan.move.begin(), plan.move.end());
  return plan;
}

namespace {

/// Margin (perimeter analogue): sum of extent lengths over all axes.
double Margin(const StBox& box) {
  if (box.empty()) return 0.0;
  double m = box.time.length();
  for (int i = 0; i < box.spatial.dims; ++i) {
    m += box.spatial.extent(i).length();
  }
  return m;
}

/// Measure of the overlap region of two boxes.
double OverlapMeasure(const StBox& a, const StBox& b) {
  const StBox inter = a.Intersect(b);
  return inter.empty() ? 0.0 : SplitMeasure(inter);
}

/// Extent of `box` along sort axis `axis` (0 = time, then spatial dims).
const Interval& AxisExtent(const StBox& box, int axis) {
  return axis == 0 ? box.time : box.spatial.extent(axis - 1);
}

}  // namespace

SplitPlan RstarSplit(const std::vector<StBox>& boxes, int min_fill,
                     int forced_index) {
  const int n = static_cast<int>(boxes.size());
  DQMO_CHECK(n >= 2);
  DQMO_CHECK(min_fill >= 1 && 2 * min_fill <= n);
  DQMO_CHECK(forced_index < n);
  const int axes = 1 + boxes.front().spatial.dims;

  // Prefix/suffix covers for one sorted order let every distribution's
  // group boxes be computed in O(n).
  auto evaluate_order = [&](const std::vector<int>& order,
                            double* margin_sum,
                            std::pair<int, double>* best) {
    std::vector<StBox> prefix(static_cast<size_t>(n));
    std::vector<StBox> suffix(static_cast<size_t>(n));
    prefix[0] = boxes[static_cast<size_t>(order[0])];
    for (int i = 1; i < n; ++i) {
      prefix[static_cast<size_t>(i)] =
          prefix[static_cast<size_t>(i) - 1].Cover(
              boxes[static_cast<size_t>(order[static_cast<size_t>(i)])]);
    }
    suffix[static_cast<size_t>(n) - 1] =
        boxes[static_cast<size_t>(order[static_cast<size_t>(n) - 1])];
    for (int i = n - 2; i >= 0; --i) {
      suffix[static_cast<size_t>(i)] =
          suffix[static_cast<size_t>(i) + 1].Cover(
              boxes[static_cast<size_t>(order[static_cast<size_t>(i)])]);
    }
    for (int k = min_fill; k <= n - min_fill; ++k) {
      const StBox& left = prefix[static_cast<size_t>(k) - 1];
      const StBox& right = suffix[static_cast<size_t>(k)];
      *margin_sum += Margin(left) + Margin(right);
      const double overlap = OverlapMeasure(left, right);
      const double measure = SplitMeasure(left) + SplitMeasure(right);
      // Lexicographic score: overlap first, then combined measure.
      const double score = overlap * 1e9 + measure;
      if (best->first < 0 || score < best->second) {
        *best = {k, score};
      }
    }
  };

  double best_axis_margin = kInf;
  std::vector<int> best_order;
  int best_split = -1;
  for (int axis = 0; axis < axes; ++axis) {
    for (int by_hi = 0; by_hi < 2; ++by_hi) {
      std::vector<int> order(static_cast<size_t>(n));
      for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        const Interval& ia = AxisExtent(boxes[static_cast<size_t>(a)], axis);
        const Interval& ib = AxisExtent(boxes[static_cast<size_t>(b)], axis);
        return by_hi ? ia.hi < ib.hi : ia.lo < ib.lo;
      });
      double margin_sum = 0.0;
      std::pair<int, double> best{-1, 0.0};
      evaluate_order(order, &margin_sum, &best);
      if (margin_sum < best_axis_margin) {
        best_axis_margin = margin_sum;
        best_order = std::move(order);
        best_split = best.first;
      }
    }
  }
  DQMO_CHECK(best_split >= min_fill);

  SplitPlan plan;
  plan.keep.assign(best_order.begin(),
                   best_order.begin() + best_split);
  plan.move.assign(best_order.begin() + best_split, best_order.end());
  if (forced_index >= 0) {
    const bool forced_in_keep =
        std::find(plan.keep.begin(), plan.keep.end(), forced_index) !=
        plan.keep.end();
    if (forced_in_keep) std::swap(plan.keep, plan.move);
  }
  std::sort(plan.keep.begin(), plan.keep.end());
  std::sort(plan.move.begin(), plan.move.end());
  return plan;
}

SplitPlan SplitEntries(SplitPolicy policy, const std::vector<StBox>& boxes,
                       int min_fill, int forced_index) {
  switch (policy) {
    case SplitPolicy::kQuadratic:
      return QuadraticSplit(boxes, min_fill, forced_index);
    case SplitPolicy::kRstar:
      return RstarSplit(boxes, min_fill, forced_index);
  }
  return QuadraticSplit(boxes, min_fill, forced_index);
}

}  // namespace dqmo
