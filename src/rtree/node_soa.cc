#include "rtree/node_soa.h"

#include "common/string_util.h"
#include "rtree/layout.h"
#include "storage/page.h"

namespace dqmo {

Status SoaNode::DecodeFrom(const uint8_t* data, PageId self_id) {
  PageView page(const_cast<uint8_t*>(data), kPageSize);
  const NodeHeader header = page.Read<NodeHeader>(0);
  if (header.dims < 1 || header.dims > kMaxSpatialDims) {
    return Status::Corruption(
        StrFormat("page %u: bad dims %u", self_id, header.dims));
  }
  self = self_id;
  level = header.level;
  dims = header.dims;
  stamp = header.stamp;
  const int n = header.count;
  const int cap = is_leaf() ? LeafCapacity(dims) : InternalCapacity(dims);
  if (n > cap) {
    return Status::Corruption(
        StrFormat("page %u: count %d exceeds capacity %d", self_id, n, cap));
  }
  count = n;

  start_lo.clear();
  start_hi.clear();
  end_lo.clear();
  end_hi.clear();
  child.clear();
  t_lo.clear();
  t_hi.clear();
  oid.clear();
  for (int i = 0; i < kMaxSpatialDims; ++i) {
    sp_lo[i].clear();
    sp_hi[i].clear();
    p0[i].clear();
    p1[i].clear();
  }

  size_t off = kNodeHeaderSize;
  if (is_leaf()) {
    const size_t entry_size = LeafEntrySize(dims);
    oid.reserve(static_cast<size_t>(n));
    t_lo.reserve(static_cast<size_t>(n));
    t_hi.reserve(static_cast<size_t>(n));
    for (int i = 0; i < dims; ++i) {
      p0[i].reserve(static_cast<size_t>(n));
      p1[i].reserve(static_cast<size_t>(n));
    }
    for (int k = 0; k < n; ++k) {
      size_t p = off;
      oid.push_back(page.Read<uint32_t>(p));
      p += sizeof(uint32_t);
      t_lo.push_back(page.Read<float>(p));
      p += sizeof(float);
      t_hi.push_back(page.Read<float>(p));
      p += sizeof(float);
      for (int i = 0; i < dims; ++i) {
        p0[i].push_back(page.Read<float>(p));
        p += sizeof(float);
      }
      for (int i = 0; i < dims; ++i) {
        p1[i].push_back(page.Read<float>(p));
        p += sizeof(float);
      }
      off += entry_size;
    }
  } else {
    const size_t entry_size = InternalEntrySize(dims);
    start_lo.reserve(static_cast<size_t>(n));
    start_hi.reserve(static_cast<size_t>(n));
    end_lo.reserve(static_cast<size_t>(n));
    end_hi.reserve(static_cast<size_t>(n));
    child.reserve(static_cast<size_t>(n));
    for (int i = 0; i < dims; ++i) {
      sp_lo[i].reserve(static_cast<size_t>(n));
      sp_hi[i].reserve(static_cast<size_t>(n));
    }
    for (int k = 0; k < n; ++k) {
      size_t p = off;
      start_lo.push_back(page.Read<float>(p));
      p += sizeof(float);
      start_hi.push_back(page.Read<float>(p));
      p += sizeof(float);
      end_lo.push_back(page.Read<float>(p));
      p += sizeof(float);
      end_hi.push_back(page.Read<float>(p));
      p += sizeof(float);
      for (int i = 0; i < dims; ++i) {
        sp_lo[i].push_back(page.Read<float>(p));
        p += sizeof(float);
        sp_hi[i].push_back(page.Read<float>(p));
        p += sizeof(float);
      }
      child.push_back(page.Read<PageId>(p));
      off += entry_size;
    }
  }
  return Status::OK();
}

ChildEntry SoaNode::ChildEntryAt(int k) const {
  ChildEntry e;
  e.start_times = Interval(start_lo[k], start_hi[k]);
  e.end_times = Interval(end_lo[k], end_hi[k]);
  e.bounds.time = Interval(start_lo[k], end_hi[k]);
  e.bounds.spatial = Box(dims);
  for (int i = 0; i < dims; ++i) {
    e.bounds.spatial.extent(i) = Interval(sp_lo[i][k], sp_hi[i][k]);
  }
  e.child = child[k];
  return e;
}

StBox SoaNode::EntryBoundsAt(int k) const {
  StBox b;
  b.time = Interval(start_lo[k], end_hi[k]);
  b.spatial = Box(dims);
  for (int i = 0; i < dims; ++i) {
    b.spatial.extent(i) = Interval(sp_lo[i][k], sp_hi[i][k]);
  }
  return b;
}

MotionSegment SoaNode::SegmentAt(int k) const {
  MotionSegment m;
  m.oid = oid[k];
  m.seg.time = Interval(t_lo[k], t_hi[k]);
  m.seg.p0 = Vec(dims);
  m.seg.p1 = Vec(dims);
  for (int i = 0; i < dims; ++i) {
    m.seg.p0[i] = p0[i][k];
    m.seg.p1[i] = p1[i][k];
  }
  return m;
}

}  // namespace dqmo
