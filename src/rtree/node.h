// In-memory R-tree node and its page (de)serialization.
#ifndef DQMO_RTREE_NODE_H_
#define DQMO_RTREE_NODE_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "geom/box.h"
#include "motion/motion_segment.h"
#include "rtree/layout.h"
#include "storage/page.h"

namespace dqmo {

/// Entry of an internal node: a child pointer, the space-time bounding
/// rectangle of everything beneath it, and the double-temporal-axes extents
/// (range of motion start-times and of motion end-times in the subtree)
/// that power NPDQ discardability (Sect. 4.2, Fig. 5(b)).
///
/// Invariants: bounds.time.lo == start_times.lo and
/// bounds.time.hi == end_times.hi.
struct ChildEntry {
  StBox bounds;
  Interval start_times;
  Interval end_times;
  PageId child = kInvalidPageId;

  ChildEntry() = default;

  ChildEntry(StBox b, Interval ts, Interval te, PageId c)
      : bounds(std::move(b)), start_times(ts), end_times(te), child(c) {}

  /// Entry whose subtree is a single motion segment: degenerate start/end
  /// time extents.
  static ChildEntry ForBox(StBox b, PageId c) {
    ChildEntry e;
    e.start_times = Interval::Point(b.time.lo);
    e.end_times = Interval::Point(b.time.hi);
    e.bounds = std::move(b);
    e.child = c;
    return e;
  }

  /// Merges another entry's geometry into this one (coverage).
  void CoverWith(const ChildEntry& other) {
    bounds = bounds.Cover(other.bounds);
    start_times = start_times.Cover(other.start_times);
    end_times = end_times.Cover(other.end_times);
  }
};

/// One R-tree node. Leaves (level 0) hold exact motion segments (the NSI
/// leaf optimization of Sect. 3.2); internal nodes hold ChildEntry records.
struct Node {
  PageId self = kInvalidPageId;
  uint16_t level = 0;
  int dims = 2;
  UpdateStamp stamp = 0;  // Bumped on every mutation along an insert path.
  std::vector<ChildEntry> children;    // level > 0
  std::vector<MotionSegment> segments;  // level == 0

  bool is_leaf() const { return level == 0; }

  int count() const {
    return static_cast<int>(is_leaf() ? segments.size() : children.size());
  }

  /// Maximum entries this node may hold.
  int capacity() const {
    return is_leaf() ? LeafCapacity(dims) : InternalCapacity(dims);
  }

  /// Tight space-time bounding rectangle over all entries.
  StBox ComputeBounds() const;

  /// The full parent entry for this node: tight bounds plus start/end-time
  /// extents, pointing at `self`.
  ChildEntry ComputeEntry() const;

  /// Serializes into a kPageSize page. Fails if count exceeds capacity.
  Status SerializeTo(PageView page) const;

  /// Deserializes a node from page bytes. `self` is taken from the caller
  /// (pages do not store their own id).
  static Result<Node> DeserializeFrom(const uint8_t* data, PageId self);

  std::string ToString() const;
};

}  // namespace dqmo

#endif  // DQMO_RTREE_NODE_H_
