// The NSI R-tree (Sect. 3.2): a paged Guttman R-tree over space-time whose
// leaves store exact motion segments, with the update-management hooks the
// dynamic-query algorithms of Sect. 4 rely on.
#ifndef DQMO_RTREE_RTREE_H_
#define DQMO_RTREE_RTREE_H_

#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/types.h"
#include "geom/box.h"
#include "motion/motion_segment.h"
#include "rtree/fault_policy.h"
#include "rtree/node.h"
#include "rtree/node_cache.h"
#include "rtree/node_soa.h"
#include "rtree/split.h"
#include "rtree/stats.h"
#include "storage/page_file.h"
#include "storage/wal.h"

namespace dqmo {

/// Receives notifications about concurrent index mutations so that running
/// dynamic queries stay complete (Sect. 4.1 "Update Management").
class UpdateListener {
 public:
  virtual ~UpdateListener() = default;

  /// A new motion segment was inserted without creating any new node.
  virtual void OnObjectInserted(const MotionSegment& m) = 0;

  /// An insertion caused one or more splits; `subtree` is the entry of the
  /// topmost newly created node (the single entry covering every new node
  /// and the inserted data, thanks to same-path splitting). `level` is that
  /// node's level (0 = leaf).
  virtual void OnSubtreeCreated(const ChildEntry& subtree, int level) = 0;

  /// The root itself split; the tree grew by one level. Queries should
  /// rebuild their state from the new root.
  virtual void OnRootSplit(PageId new_root) = 0;
};

/// Paged R-tree over (space x time) storing motion segments.
///
/// Page 0 of the backing PageFile holds tree metadata; every other page is
/// one node. All reads go through a PageReader (the PageFile itself, or a
/// BufferPool), and every physical node read is charged to the QueryStats
/// passed by the caller — the paper's disk-access metric.
class RTree {
 public:
  struct Options {
    int dims = 2;              // Spatial dimensionality.
    double fill_factor = 0.5;  // Minimum node fill on split (paper: 0.5).
    /// Node split algorithm; the paper's experiments use Guttman's
    /// quadratic split, the R*-style split is the bench/abl_split_policy
    /// alternative.
    SplitPolicy split_policy = SplitPolicy::kQuadratic;
  };

  /// Creates a fresh tree (meta page + empty root leaf) in `file`, which
  /// must be empty. The tree does not own the file.
  static Result<std::unique_ptr<RTree>> Create(PageStore* file,
                                               const Options& options);

  /// Opens a tree previously persisted in `file` (via Flush + SaveTo).
  static Result<std::unique_ptr<RTree>> Open(PageStore* file);

  /// Re-reads the meta page from the (already re-loaded) backing file into
  /// *this* object, in place. This is the repair path: the scrubber reloads
  /// a quarantined shard's PageFile from its checkpoint image and then
  /// Reopen()s the tree so every pointer the router captured at session
  /// build (tree, reader, gate) stays valid. Must be called with the
  /// shard's exclusive gate held — no traversal may be in flight. The
  /// update stamp is forced strictly past both the in-memory and persisted
  /// stamps so stamp-keyed caches (router BoundsCache, NPDQ discard prune)
  /// can never mistake post-repair state for pre-repair state.
  Status Reopen();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  int dims() const { return options_.dims; }
  PageId root() const { return root_; }
  /// Number of levels; 1 = the root is a leaf. (The paper's setup yields
  /// height 3 over ~0.5M segments.)
  int height() const { return height_; }
  uint64_t num_segments() const { return num_segments_; }
  size_t num_nodes() const { return num_nodes_; }
  /// Current update timestamp (bumped once per Insert).
  UpdateStamp stamp() const { return stamp_; }
  double fill_factor() const { return options_.fill_factor; }
  /// Maximum speed (length units / time unit) over all stored motion
  /// segments; used by the moving-kNN fence (query/knn.h).
  double max_speed() const { return max_speed_; }

  /// Inserts one motion segment. The stored form is float32-quantized (see
  /// rtree/layout.h); use QuantizeStored() to predict the stored geometry.
  /// Fires exactly one UpdateListener notification per call.
  Status Insert(const MotionSegment& m);

  /// Removes the motion segment identified by `m`'s key (object id + start
  /// time); `m`'s geometry guides the descent, so pass the stored segment
  /// (e.g. a query result, or the original update — geometry is quantized
  /// internally). Underfull nodes are condensed Guttman-style: their
  /// remaining segments are collected and reinserted, and the root is
  /// collapsed when it degenerates to a single child. Freed pages are
  /// recycled by subsequent inserts. Returns NotFound if no such segment
  /// exists. Dynamic queries running concurrently may still deliver a
  /// motion removed after they started — removal is not retroactive.
  Status Remove(const MotionSegment& m);

  /// Traversal options shared by the search entry points.
  struct SearchOptions {
    /// Reads go through this reader when set (BufferPool / fault wrappers),
    /// else the backing file.
    PageReader* reader = nullptr;
    /// What to do when a node cannot be read (rtree/fault_policy.h).
    FaultPolicy fault_policy = FaultPolicy::kFailFast;
    /// Receives the skipped subtrees under kSkipSubtree (may be null; the
    /// count still lands in QueryStats::pages_skipped).
    SkipReport* skip_report = nullptr;
  };

  /// Snapshot range query (Definition 3): all motion segments whose exact
  /// space-time line intersects `q`. This is the paper's "naive" building
  /// block: a standard R-tree range search with the exact leaf segment test
  /// of Sect. 3.2. Reads via `reader` if given, else the backing file.
  Result<std::vector<MotionSegment>> RangeSearch(
      const StBox& q, QueryStats* stats, PageReader* reader = nullptr) const;

  /// RangeSearch with full traversal options (degraded-result support).
  /// Under FaultPolicy::kSkipSubtree the returned set is a subset of the
  /// fault-free answer; consult opts.skip_report (or stats->pages_skipped)
  /// for whether anything was lost.
  Result<std::vector<MotionSegment>> RangeSearch(
      const StBox& q, QueryStats* stats, const SearchOptions& opts) const;

  /// Ablation variant (Sect. 3.2 optimization *disabled*): leaf entries are
  /// accepted whenever their bounding boxes intersect `q`, as if the leaves
  /// stored BBs instead of segment endpoints. May return false admissions.
  Result<std::vector<MotionSegment>> RangeSearchBbOnly(
      const StBox& q, QueryStats* stats, PageReader* reader = nullptr) const;

  /// Loads and deserializes node `id` through `reader` (or the backing
  /// file), charging `stats` if the read was physical.
  Result<Node> LoadNode(PageId id, QueryStats* stats,
                        PageReader* reader = nullptr) const;

  /// LoadNode with degraded-result handling: under kSkipSubtree a read
  /// failure (IOError / Corruption / truncated node) is absorbed — the skip
  /// is recorded in `report` (if non-null) and stats->pages_skipped, and
  /// std::nullopt is returned so the caller prunes the subtree.
  /// `entry_bounds` is the parent entry's box (empty when unknown, e.g. the
  /// root). Malformed *requests* (OutOfRange ids) and kFailFast errors
  /// propagate unchanged.
  Result<std::optional<Node>> LoadNodeOrSkip(PageId id,
                                             const StBox& entry_bounds,
                                             FaultPolicy policy,
                                             SkipReport* report,
                                             QueryStats* stats,
                                             PageReader* reader) const;

  /// Zero-copy variant of LoadNode: returns the decoded SoA form of node
  /// `id`. When a decoded-node cache is attached, a cache hit skips the
  /// page store entirely (charged to stats->decoded_hits, not node_reads);
  /// a miss reads through `reader` (or the backing file), decodes once, and
  /// populates the cache. The returned node is immutable and pinned by the
  /// shared_ptr — safe across concurrent eviction and invalidation.
  Result<std::shared_ptr<const SoaNode>> LoadNodeSoa(
      PageId id, QueryStats* stats, PageReader* reader = nullptr) const;

  /// LoadNodeSoa with the degraded-result handling of LoadNodeOrSkip:
  /// under kSkipSubtree an unreadable node yields nullptr (skip recorded in
  /// `report` / stats->pages_skipped) so the caller prunes the subtree.
  Result<std::shared_ptr<const SoaNode>> LoadNodeSoaOrSkip(
      PageId id, const StBox& entry_bounds, FaultPolicy policy,
      SkipReport* report, QueryStats* stats, PageReader* reader) const;

  /// Decoded-node cache hook (not owned; pass nullptr to detach). Every
  /// page write or free invalidates the attached cache's entry, so cached
  /// decodes never go stale; see rtree/node_cache.h for the full protocol.
  void AttachNodeCache(DecodedNodeCache* cache) { node_cache_ = cache; }
  DecodedNodeCache* node_cache() const { return node_cache_; }

  /// Bounding rectangle of the entire tree (loads the root; uncharged).
  Result<StBox> RootBounds() const;

  /// Writes the metadata page. Call before PageFile::SaveTo.
  Status Flush();

  /// Durable-insert hook: once attached (not owned; pass nullptr to
  /// detach), every successful Insert buffers a redo record of the stored
  /// segment into `wal` and advances applied_lsn(). The insert is durable
  /// only after WalWriter::Sync — callers must not acknowledge it before
  /// then. Recovery (server/durability.h) replays with the WAL detached so
  /// replayed inserts are not re-logged.
  void AttachWal(WalWriter* wal) { wal_ = wal; }
  WalWriter* wal() const { return wal_; }

  /// Highest WAL LSN whose insert this tree contains; persisted in the
  /// meta page by Flush so a checkpoint image can tell recovery which log
  /// records it already holds. 0 = none (fresh tree or pre-WAL image).
  uint64_t applied_lsn() const { return applied_lsn_; }
  /// Recovery sets this after replaying a record with the WAL detached.
  void set_applied_lsn(uint64_t lsn) { applied_lsn_ = lsn; }

  /// Registers a listener for concurrent-update notifications. The caller
  /// keeps ownership and must RemoveListener before destroying it.
  /// Add/Remove are safe to call from concurrent query sessions (an
  /// internal mutex guards the registry); the notifications themselves fire
  /// from Insert, which the concurrent engine runs under the exclusive side
  /// of the TreeGate (server/executor.h), so a listener is never notified
  /// while its owning session is mid-frame.
  void AddListener(UpdateListener* listener);
  void RemoveListener(UpdateListener* listener);

  /// Validates structural invariants (entry containment, fill, levels,
  /// stamps monotone vs tree stamp); used by tests. Expensive: full scan.
  /// `check_min_fill` should be false for bulk-loaded trees, whose trailing
  /// tiles may legally be underfull.
  Status CheckInvariants(bool check_min_fill = true) const;

  /// Internal-node and leaf capacities for this tree's dimensionality.
  int internal_capacity() const { return InternalCapacity(options_.dims); }
  int leaf_capacity() const { return LeafCapacity(options_.dims); }

 private:
  friend Result<std::unique_ptr<RTree>> BulkLoad(
      PageStore* file, std::vector<MotionSegment> segments,
      const struct BulkLoadOptions& options);

  RTree(PageStore* file, Options options)
      : file_(file), options_(options) {}

  struct InsertOutcome {
    ChildEntry updated_entry;                // New geometry of visited node.
    std::optional<ChildEntry> new_sibling;   // Set when the node split.
  };

  Result<InsertOutcome> InsertInto(PageId pid, int node_level,
                                   const MotionSegment& m);

  struct RemoveOutcome {
    bool removed = false;        // Target found beneath this node.
    bool node_dissolved = false; // Node went underfull and was freed.
    ChildEntry updated_entry;    // Valid when !node_dissolved.
  };

  Result<RemoveOutcome> RemoveFrom(PageId pid, int node_level,
                                   const MotionSegment::Key& key,
                                   const StBox& guide,
                                   std::vector<MotionSegment>* orphans);

  /// Collects every motion segment stored beneath `pid`, freeing all pages
  /// of the subtree (used when an internal node underflows).
  Status DissolveSubtree(PageId pid, std::vector<MotionSegment>* orphans);

  PageId AllocatePage();
  void FreePage(PageId id);
  int MinFill(bool leaf) const;

  Result<Node> LoadForWrite(PageId pid) const;
  Status StoreNode(Node* node) const;

  Status WriteMeta();
  static Result<Options> ReadMeta(PageStore* file, PageId* root, int* height,
                                  uint64_t* num_segments, size_t* num_nodes,
                                  UpdateStamp* stamp);

  // Split `node` (which overflows by one entry); the entry at
  // `forced_index` is placed in the new node. Returns the new node's entry.
  Result<ChildEntry> SplitNode(Node* node, int forced_index);

  // State for listener notification of the current Insert.
  struct PendingNotice {
    bool any_split = false;
    bool root_split = false;
    ChildEntry topmost;
    int topmost_level = 0;
  };

  PageStore* file_;
  Options options_;
  PageId meta_page_ = 0;
  PageId root_ = kInvalidPageId;
  int height_ = 1;
  uint64_t num_segments_ = 0;
  size_t num_nodes_ = 0;
  UpdateStamp stamp_ = 0;
  double max_speed_ = 0.0;
  WalWriter* wal_ = nullptr;     // Durable-insert hook; see AttachWal.
  DecodedNodeCache* node_cache_ = nullptr;  // See AttachNodeCache.
  uint64_t applied_lsn_ = 0;
  PendingNotice pending_;
  /// Guards listeners_: sessions running under the shared side of the
  /// TreeGate register/unregister their PDQs concurrently.
  mutable std::mutex listeners_mu_;
  std::vector<UpdateListener*> listeners_;
  std::vector<PageId> free_pages_;  // Recycled by AllocatePage().
};

}  // namespace dqmo

#endif  // DQMO_RTREE_RTREE_H_
