// Per-query cost counters matching the paper's two performance measures:
// disk accesses (split leaf vs higher levels) and "distance computations"
// (geometric tests against child entries; Sect. 5: "for each node loaded,
// all its children are examined").
#ifndef DQMO_RTREE_STATS_H_
#define DQMO_RTREE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

namespace dqmo {

/// Counters are atomic with relaxed ordering (the IoStats pattern): one
/// stats block can be read by a monitor while a query runs, and hot-loop
/// bumps never serialize the scan — they are statistics, not a
/// synchronization mechanism. Batch kernels charge whole-node counts with a
/// single fetch_add. Copies and differences snapshot each counter
/// individually.
struct QueryStats {
  /// Disk accesses: R-tree node loads that hit the physical store.
  std::atomic<uint64_t> node_reads{0};
  /// Subset of node_reads that read leaf pages.
  std::atomic<uint64_t> leaf_reads{0};
  /// Geometric tests against child entries / motion segments.
  std::atomic<uint64_t> distance_computations{0};
  /// Motion segments reported to the caller.
  std::atomic<uint64_t> objects_returned{0};
  /// PDQ bookkeeping.
  std::atomic<uint64_t> queue_pushes{0};
  std::atomic<uint64_t> queue_pops{0};
  std::atomic<uint64_t> duplicates_skipped{0};
  /// NPDQ bookkeeping: subtrees pruned by the discardability test.
  std::atomic<uint64_t> nodes_discarded{0};
  /// Subtree roots skipped as unreadable under FaultPolicy::kSkipSubtree
  /// (rtree/fault_policy.h). Non-zero implies the answer was partial.
  std::atomic<uint64_t> pages_skipped{0};
  /// Node loads served from the decoded-node cache (rtree/node_cache.h).
  /// Such loads bypass the page store entirely, so they are charged here
  /// and *not* to node_reads — the paper's disk-access metric stays honest.
  std::atomic<uint64_t> decoded_hits{0};

  QueryStats() = default;
  QueryStats(const QueryStats& other) { CopyFrom(other); }
  QueryStats& operator=(const QueryStats& other) {
    CopyFrom(other);
    return *this;
  }

  uint64_t internal_reads() const { return node_reads - leaf_reads; }

  void Reset() { CopyFrom(QueryStats{}); }

  QueryStats operator-(const QueryStats& o) const {
    QueryStats d;
    d.node_reads = node_reads - o.node_reads;
    d.leaf_reads = leaf_reads - o.leaf_reads;
    d.distance_computations = distance_computations - o.distance_computations;
    d.objects_returned = objects_returned - o.objects_returned;
    d.queue_pushes = queue_pushes - o.queue_pushes;
    d.queue_pops = queue_pops - o.queue_pops;
    d.duplicates_skipped = duplicates_skipped - o.duplicates_skipped;
    d.nodes_discarded = nodes_discarded - o.nodes_discarded;
    d.pages_skipped = pages_skipped - o.pages_skipped;
    d.decoded_hits = decoded_hits - o.decoded_hits;
    return d;
  }

  QueryStats& operator+=(const QueryStats& o) {
    node_reads += o.node_reads;
    leaf_reads += o.leaf_reads;
    distance_computations += o.distance_computations;
    objects_returned += o.objects_returned;
    queue_pushes += o.queue_pushes;
    queue_pops += o.queue_pops;
    duplicates_skipped += o.duplicates_skipped;
    nodes_discarded += o.nodes_discarded;
    pages_skipped += o.pages_skipped;
    decoded_hits += o.decoded_hits;
    return *this;
  }

  std::string ToString() const;

 private:
  void CopyFrom(const QueryStats& other) {
    node_reads.store(other.node_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    leaf_reads.store(other.leaf_reads.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    distance_computations.store(
        other.distance_computations.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    objects_returned.store(
        other.objects_returned.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    queue_pushes.store(other.queue_pushes.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
    queue_pops.store(other.queue_pops.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
    duplicates_skipped.store(
        other.duplicates_skipped.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    nodes_discarded.store(
        other.nodes_discarded.load(std::memory_order_relaxed),
        std::memory_order_relaxed);
    pages_skipped.store(other.pages_skipped.load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    decoded_hits.store(other.decoded_hits.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
};

/// Process-wide node-load account mirrored into the metrics registry by
/// RTree::LoadNode / LoadNodeSoa. Every node load is served by exactly one
/// of three sources: a decoded-node cache hit (no page read at all), a
/// physical page read (a disk access), or a buffer-pool frame (a page read
/// whose ReadResult reports physical == false). The PR4 exact-accounting
/// invariant — cached-run node_reads + decoded_hits == uncached-run
/// node_reads — is a corollary; this is where it is asserted in one place.
struct NodeAccounting {
  uint64_t loads = 0;
  uint64_t decoded_hits = 0;
  uint64_t physical_reads = 0;
  uint64_t pooled_reads = 0;

  bool Consistent() const {
    return loads == decoded_hits + physical_reads + pooled_reads;
  }

  NodeAccounting operator-(const NodeAccounting& o) const {
    return NodeAccounting{loads - o.loads, decoded_hits - o.decoded_hits,
                          physical_reads - o.physical_reads,
                          pooled_reads - o.pooled_reads};
  }

  std::string ToString() const;
};

/// Reads the registry-backed node-load counters (all zero when metrics are
/// disabled — trivially consistent).
NodeAccounting ReadNodeAccounting();

/// Reads the counters and DQMO_CHECK-asserts Consistent(). Call from a
/// quiescent point (no query in flight); returns the counts read.
NodeAccounting CheckNodeAccounting();

}  // namespace dqmo

#endif  // DQMO_RTREE_STATS_H_
