// Per-query cost counters matching the paper's two performance measures:
// disk accesses (split leaf vs higher levels) and "distance computations"
// (geometric tests against child entries; Sect. 5: "for each node loaded,
// all its children are examined").
#ifndef DQMO_RTREE_STATS_H_
#define DQMO_RTREE_STATS_H_

#include <cstdint>
#include <string>

namespace dqmo {

struct QueryStats {
  /// Disk accesses: R-tree node loads that hit the physical store.
  uint64_t node_reads = 0;
  /// Subset of node_reads that read leaf pages.
  uint64_t leaf_reads = 0;
  /// Geometric tests against child entries / motion segments.
  uint64_t distance_computations = 0;
  /// Motion segments reported to the caller.
  uint64_t objects_returned = 0;
  /// PDQ bookkeeping.
  uint64_t queue_pushes = 0;
  uint64_t queue_pops = 0;
  uint64_t duplicates_skipped = 0;
  /// NPDQ bookkeeping: subtrees pruned by the discardability test.
  uint64_t nodes_discarded = 0;
  /// Subtree roots skipped as unreadable under FaultPolicy::kSkipSubtree
  /// (rtree/fault_policy.h). Non-zero implies the answer was partial.
  uint64_t pages_skipped = 0;

  uint64_t internal_reads() const { return node_reads - leaf_reads; }

  void Reset() { *this = QueryStats{}; }

  QueryStats operator-(const QueryStats& o) const {
    QueryStats d;
    d.node_reads = node_reads - o.node_reads;
    d.leaf_reads = leaf_reads - o.leaf_reads;
    d.distance_computations = distance_computations - o.distance_computations;
    d.objects_returned = objects_returned - o.objects_returned;
    d.queue_pushes = queue_pushes - o.queue_pushes;
    d.queue_pops = queue_pops - o.queue_pops;
    d.duplicates_skipped = duplicates_skipped - o.duplicates_skipped;
    d.nodes_discarded = nodes_discarded - o.nodes_discarded;
    d.pages_skipped = pages_skipped - o.pages_skipped;
    return d;
  }

  QueryStats& operator+=(const QueryStats& o) {
    node_reads += o.node_reads;
    leaf_reads += o.leaf_reads;
    distance_computations += o.distance_computations;
    objects_returned += o.objects_returned;
    queue_pushes += o.queue_pushes;
    queue_pops += o.queue_pops;
    duplicates_skipped += o.duplicates_skipped;
    nodes_discarded += o.nodes_discarded;
    pages_skipped += o.pages_skipped;
    return *this;
  }

  std::string ToString() const;
};

}  // namespace dqmo

#endif  // DQMO_RTREE_STATS_H_
