// Sharded cache of decoded SoA nodes.
//
// The buffer pool (storage/buffer_pool.h) caches raw page *bytes*; every
// hit still pays a full Node::DeserializeFrom — header parse, per-entry
// float widening, and two vector allocations. The decoded-node cache sits
// one level up: it caches the already-decoded SoaNode, so a hit costs one
// hash probe and zero parsing or allocation. Entries are handed out as
// shared_ptr<const SoaNode>; a traversal holding one is immune to
// concurrent eviction (refcount pinning), exactly like a pinned pool frame.
//
// Invalidation protocol (mirrors the PR2 frame-invalidation protocol):
//  * RTree::StoreNode / RTree::FreePage invalidate the attached cache
//    directly on every page write/free — this covers single-threaded use
//    where no TreeGate exists.
//  * Under the concurrent engine, the TreeGate write guard additionally
//    invalidates every dirtied page id before readers resume
//    (server/executor.cc), symmetric with how it invalidates BufferPool
//    frames — belt and braces for writers that bypass RTree helpers.
// Readers never observe a stale decode: invalidation happens while writers
// hold the tree exclusively, before any reader can run.
#ifndef DQMO_RTREE_NODE_CACHE_H_
#define DQMO_RTREE_NODE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "common/types.h"
#include "rtree/node_soa.h"

namespace dqmo {

/// Fixed-capacity sharded LRU over decoded nodes, keyed by PageId.
///
/// Thread safety: same scheme as BufferPool — PageId hashes to a shard,
/// each shard has its own mutex + LRU list + index; hit/miss counters are
/// atomic. Returned shared_ptrs stay valid across eviction.
class DecodedNodeCache {
 public:
  /// `capacity_nodes` must be >= 1. `num_shards` must be >= 1 and is
  /// clamped to `capacity_nodes`.
  explicit DecodedNodeCache(size_t capacity_nodes, int num_shards = 8);

  /// Returns the cached decode of `id`, or nullptr on miss. Bumps the
  /// hit/miss counters.
  std::shared_ptr<const SoaNode> Lookup(PageId id);

  /// Caches a freshly decoded node, evicting the shard's LRU entry if the
  /// shard is full. Replaces any existing entry for the same id.
  void Insert(PageId id, std::shared_ptr<const SoaNode> node);

  /// Drops the cached decode of one page (after a page write or free).
  void Invalidate(PageId id);

  /// Drops every cached node.
  void Clear();

  size_t capacity() const { return capacity_; }
  int num_shards() const { return num_shards_; }
  size_t cached_nodes() const;

  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    PageId id;
    std::shared_ptr<const SoaNode> node;
  };

  struct Shard {
    mutable std::mutex mu;
    // LRU order: front = most recent. map points into the list.
    std::list<Entry> entries;
    std::unordered_map<PageId, std::list<Entry>::iterator> index;
  };

  Shard& ShardFor(PageId id) {
    // Fibonacci multiplicative hash, as in BufferPool::ShardFor.
    const uint64_t h = static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL;
    return shards_[(h >> 32) % static_cast<uint64_t>(num_shards_)];
  }

  size_t capacity_;
  size_t shard_capacity_;
  int num_shards_;
  std::unique_ptr<Shard[]> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace dqmo

#endif  // DQMO_RTREE_NODE_CACHE_H_
