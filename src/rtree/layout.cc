#include "rtree/layout.h"

#include <cmath>

namespace dqmo {
namespace {

// Wrong-code workaround: GCC 12.2 at -O2 performs dead-store elimination
// that treats a double -> float -> double rounding store as redundant when
// it overwrites bytes just copied from the unrounded source (whole-struct
// copy followed by member overwrite), silently skipping the quantization.
// Keeping the rounding behind a noinline call boundary forces it to
// materialize. Covered by node_test's QuantizeStoredActuallyRounds.
__attribute__((noinline)) double ForceFloatRounding(double v) {
  return static_cast<double>(static_cast<float>(v));
}

}  // namespace

__attribute__((noinline)) float FloatLowerBound(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) > v) {
    f = std::nextafterf(f, -std::numeric_limits<float>::infinity());
  }
  return f;
}

__attribute__((noinline)) float FloatUpperBound(double v) {
  float f = static_cast<float>(v);
  if (static_cast<double>(f) < v) {
    f = std::nextafterf(f, std::numeric_limits<float>::infinity());
  }
  return f;
}

Interval QuantizeOutward(const Interval& iv) {
  if (iv.empty()) return iv;
  return Interval(FloatLowerBound(iv.lo), FloatUpperBound(iv.hi));
}

StBox QuantizeOutward(const StBox& box) {
  StBox out = box;
  out.time = QuantizeOutward(box.time);
  for (int i = 0; i < box.spatial.dims; ++i) {
    out.spatial.extent(i) = QuantizeOutward(box.spatial.extent(i));
  }
  return out;
}

StSegment QuantizeStored(const StSegment& seg) {
  StSegment out = seg;
  out.time = Interval(ForceFloatRounding(seg.time.lo),
                      ForceFloatRounding(seg.time.hi));
  for (int i = 0; i < seg.dims(); ++i) {
    out.p0[i] = ForceFloatRounding(seg.p0[i]);
    out.p1[i] = ForceFloatRounding(seg.p1[i]);
  }
  return out;
}

}  // namespace dqmo
