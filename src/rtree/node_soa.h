// Structure-of-arrays view of a decoded R-tree node — the zero-copy query
// hot path.
//
// Node::DeserializeFrom materializes an AoS Node (vector<ChildEntry> /
// vector<MotionSegment>) on every load; the per-entry prune loops of
// PDQ/NPDQ/kNN then walk those structs one entry at a time. SoaNode decodes
// the same page bytes once into contiguous per-column arrays (spatial lo/hi
// per dimension, start/end-time extents, child ids — and, for leaves, the
// segment endpoints), so batch-prune kernels (query/kernels.h) can sweep a
// whole node with stride-1 loads and the decoded form can be cached across
// visits (rtree/node_cache.h) without re-parsing the page.
//
// Bit-compatibility contract: DecodeFrom reads exactly the bytes
// Node::DeserializeFrom reads, widening the same float32 values to double,
// and the materializers (ChildEntryAt / EntryBoundsAt / SegmentAt)
// reconstruct values identical to the AoS decode — including the combined
// time interval bounds.time = [ts_lo, te_hi]. Queries running over the SoA
// path therefore deliver byte-identical results to the legacy AoS path.
#ifndef DQMO_RTREE_NODE_SOA_H_
#define DQMO_RTREE_NODE_SOA_H_

#include <array>
#include <vector>

#include "common/result.h"
#include "common/types.h"
#include "motion/motion_segment.h"
#include "rtree/node.h"

namespace dqmo {

/// Which decoded-node representation a query traversal uses.
enum class HotPath {
  /// Structure-of-arrays decode + batch-prune kernels (the default).
  kSoa,
  /// The pre-existing per-entry AoS path (Node::DeserializeFrom); kept for
  /// the abl_hot_path ablation and as the kernel-equivalence reference.
  kLegacyAos,
};

/// One decoded node in structure-of-arrays form. Internal nodes populate
/// the entry columns; leaves populate the segment columns. All float32 page
/// values are widened to double exactly once, at decode time.
struct SoaNode {
  PageId self = kInvalidPageId;
  uint16_t level = 0;
  int dims = 2;
  UpdateStamp stamp = 0;
  int count = 0;

  // Internal-node columns (size == count when !is_leaf()).
  std::vector<double> start_lo, start_hi;  // start_times extent.
  std::vector<double> end_lo, end_hi;      // end_times extent.
  std::array<std::vector<double>, kMaxSpatialDims> sp_lo, sp_hi;
  std::vector<PageId> child;

  // Leaf columns (size == count when is_leaf()).
  std::vector<double> t_lo, t_hi;  // Segment valid time.
  std::array<std::vector<double>, kMaxSpatialDims> p0, p1;
  std::vector<ObjectId> oid;

  bool is_leaf() const { return level == 0; }

  /// Decodes a node page, replacing this node's contents. Reuses existing
  /// column capacity. Performs the same corruption checks (dims range,
  /// count vs capacity) as Node::DeserializeFrom.
  Status DecodeFrom(const uint8_t* data, PageId self_id);

  /// Materializes internal entry k, identical to the AoS decode's
  /// children[k] (bounds.time == [start_lo, end_hi]).
  ChildEntry ChildEntryAt(int k) const;

  /// The space-time box of internal entry k (== ChildEntryAt(k).bounds).
  StBox EntryBoundsAt(int k) const;

  /// Materializes leaf entry k, identical to the AoS decode's segments[k].
  MotionSegment SegmentAt(int k) const;
};

}  // namespace dqmo

#endif  // DQMO_RTREE_NODE_SOA_H_
