#include "rtree/node.h"

#include <cstring>

#include "common/check.h"
#include "common/string_util.h"

namespace dqmo {

StBox Node::ComputeBounds() const { return ComputeEntry().bounds; }

ChildEntry Node::ComputeEntry() const {
  ChildEntry entry;
  entry.child = self;
  if (is_leaf()) {
    for (const MotionSegment& m : segments) {
      ChildEntry e = ChildEntry::ForBox(QuantizeOutward(m.Bounds()), self);
      entry.CoverWith(e);
    }
  } else {
    for (const ChildEntry& e : children) entry.CoverWith(e);
  }
  if (entry.bounds.empty()) {
    // Normalize the empty node's bounds to an empty box of the right dims.
    entry.bounds.spatial = Box(dims);
  }
  return entry;
}

Status Node::SerializeTo(PageView page) const {
  if (count() > capacity()) {
    return Status::Internal(
        StrFormat("node %u overflows page: %d > %d", self, count(),
                  capacity()));
  }
  std::memset(page.data(), 0, page.size());
  NodeHeader header{};
  header.level = level;
  header.count = static_cast<uint16_t>(count());
  header.dims = static_cast<uint16_t>(dims);
  header.reserved = 0;
  header.stamp = stamp;
  header.unused = 0;
  page.Write(0, header);

  size_t off = kNodeHeaderSize;
  if (is_leaf()) {
    const size_t entry_size = LeafEntrySize(dims);
    for (const MotionSegment& m : segments) {
      size_t p = off;
      page.Write<uint32_t>(p, m.oid);
      p += sizeof(uint32_t);
      page.Write<float>(p, static_cast<float>(m.seg.time.lo));
      p += sizeof(float);
      page.Write<float>(p, static_cast<float>(m.seg.time.hi));
      p += sizeof(float);
      for (int i = 0; i < dims; ++i) {
        page.Write<float>(p, static_cast<float>(m.seg.p0[i]));
        p += sizeof(float);
      }
      for (int i = 0; i < dims; ++i) {
        page.Write<float>(p, static_cast<float>(m.seg.p1[i]));
        p += sizeof(float);
      }
      off += entry_size;
    }
  } else {
    const size_t entry_size = InternalEntrySize(dims);
    for (const ChildEntry& e : children) {
      size_t p = off;
      page.Write<float>(p, FloatLowerBound(e.start_times.lo));
      p += sizeof(float);
      page.Write<float>(p, FloatUpperBound(e.start_times.hi));
      p += sizeof(float);
      page.Write<float>(p, FloatLowerBound(e.end_times.lo));
      p += sizeof(float);
      page.Write<float>(p, FloatUpperBound(e.end_times.hi));
      p += sizeof(float);
      for (int i = 0; i < dims; ++i) {
        page.Write<float>(p, FloatLowerBound(e.bounds.spatial.extent(i).lo));
        p += sizeof(float);
        page.Write<float>(p, FloatUpperBound(e.bounds.spatial.extent(i).hi));
        p += sizeof(float);
      }
      page.Write<PageId>(p, e.child);
      off += entry_size;
    }
  }
  return Status::OK();
}

Result<Node> Node::DeserializeFrom(const uint8_t* data, PageId self) {
  PageView page(const_cast<uint8_t*>(data), kPageSize);
  const NodeHeader header = page.Read<NodeHeader>(0);
  if (header.dims < 1 || header.dims > kMaxSpatialDims) {
    return Status::Corruption(
        StrFormat("page %u: bad dims %u", self, header.dims));
  }
  Node node;
  node.self = self;
  node.level = header.level;
  node.dims = header.dims;
  node.stamp = header.stamp;
  const int dims = node.dims;
  const int count = header.count;
  const int cap = node.capacity();
  if (count > cap) {
    return Status::Corruption(
        StrFormat("page %u: count %d exceeds capacity %d", self, count, cap));
  }

  size_t off = kNodeHeaderSize;
  if (node.is_leaf()) {
    const size_t entry_size = LeafEntrySize(dims);
    node.segments.reserve(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k) {
      size_t p = off;
      MotionSegment m;
      m.oid = page.Read<uint32_t>(p);
      p += sizeof(uint32_t);
      const float tl = page.Read<float>(p);
      p += sizeof(float);
      const float th = page.Read<float>(p);
      p += sizeof(float);
      m.seg.time = Interval(tl, th);
      m.seg.p0 = Vec(dims);
      m.seg.p1 = Vec(dims);
      for (int i = 0; i < dims; ++i) {
        m.seg.p0[i] = page.Read<float>(p);
        p += sizeof(float);
      }
      for (int i = 0; i < dims; ++i) {
        m.seg.p1[i] = page.Read<float>(p);
        p += sizeof(float);
      }
      node.segments.push_back(std::move(m));
      off += entry_size;
    }
  } else {
    const size_t entry_size = InternalEntrySize(dims);
    node.children.reserve(static_cast<size_t>(count));
    for (int k = 0; k < count; ++k) {
      size_t p = off;
      ChildEntry e;
      const float ts_lo = page.Read<float>(p);
      p += sizeof(float);
      const float ts_hi = page.Read<float>(p);
      p += sizeof(float);
      const float te_lo = page.Read<float>(p);
      p += sizeof(float);
      const float te_hi = page.Read<float>(p);
      p += sizeof(float);
      e.start_times = Interval(ts_lo, ts_hi);
      e.end_times = Interval(te_lo, te_hi);
      e.bounds.time = Interval(ts_lo, te_hi);
      e.bounds.spatial = Box(dims);
      for (int i = 0; i < dims; ++i) {
        const float lo = page.Read<float>(p);
        p += sizeof(float);
        const float hi = page.Read<float>(p);
        p += sizeof(float);
        e.bounds.spatial.extent(i) = Interval(lo, hi);
      }
      e.child = page.Read<PageId>(p);
      node.children.push_back(std::move(e));
      off += entry_size;
    }
  }
  return node;
}

std::string Node::ToString() const {
  return StrFormat("node{page=%u, level=%u, count=%d, stamp=%llu}", self,
                   level, count(), static_cast<unsigned long long>(stamp));
}

}  // namespace dqmo
