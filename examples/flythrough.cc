// Fly-through over a populated terrain — the paper's motivating
// visualization scenario (Sect. 1): a renderer needs every object in the
// observer's view frustum at 20 frames/second, and the database must keep
// up without re-reading the index for every frame.
//
// The example runs the same tour twice — naive per-frame snapshot queries
// vs a predictive dynamic query feeding the client's disappearance-time
// cache — and compares the I/O and data-shipping bills.
//
//   $ ./build/examples/flythrough
#include <cstdio>

#include "client/result_cache.h"
#include "common/random.h"
#include "query/pdq.h"
#include "rtree/rtree.h"
#include "workload/data_generator.h"

using namespace dqmo;

namespace {

/// The tour: a closed sweep over the terrain, 30 time units long, with an
/// 12x12 view window.
QueryTrajectory MakeTour() {
  std::vector<KeySnapshot> keys;
  const double side = 12.0;
  keys.emplace_back(10.0, Box::Centered(Vec(15, 15), side));
  keys.emplace_back(18.0, Box::Centered(Vec(85, 20), side));
  keys.emplace_back(26.0, Box::Centered(Vec(80, 80), side));
  keys.emplace_back(34.0, Box::Centered(Vec(20, 85), side));
  keys.emplace_back(40.0, Box::Centered(Vec(15, 15), side));
  return QueryTrajectory::Make(std::move(keys)).value();
}

}  // namespace

int main() {
  // Terrain population: 2000 mobile objects over 60 time units.
  DataGeneratorOptions data_options;
  data_options.num_objects = 2000;
  data_options.horizon = 60.0;
  data_options.seed = 2002;
  auto data = GenerateMotionData(data_options);
  DQMO_CHECK(data.ok());

  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  DQMO_CHECK(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  for (const MotionSegment& m : *data) DQMO_CHECK_OK(tree->Insert(m));
  std::printf("terrain: %zu motion segments from %d objects, %zu pages\n",
              data->size(), data_options.num_objects, file.num_pages());

  const QueryTrajectory tour = MakeTour();
  const double fps = 20.0;
  const double dt = 1.0 / fps;

  // --- Naive renderer: one snapshot range query per frame. ---
  uint64_t naive_reads = 0;
  uint64_t naive_shipped = 0;
  int frames = 0;
  {
    QueryStats stats;
    for (double t = tour.TimeSpan().lo; t + dt <= tour.TimeSpan().hi;
         t += dt) {
      auto result = tree->RangeSearch(tour.FrameQuery(t, t + dt), &stats);
      DQMO_CHECK(result.ok());
      naive_shipped += result->size();
      ++frames;
    }
    naive_reads = stats.node_reads;
  }

  // --- Dynamic-query renderer: PDQ + disappearance-time cache. ---
  uint64_t pdq_reads = 0;
  uint64_t pdq_shipped = 0;
  size_t peak_cache = 0;
  double max_visible = 0.0;
  {
    auto pdq = PredictiveDynamicQuery::Make(tree.get(), tour);
    DQMO_CHECK(pdq.ok());
    ResultCache cache;
    for (double t = tour.TimeSpan().lo; t + dt <= tour.TimeSpan().hi;
         t += dt) {
      auto frame = (*pdq)->Frame(t, t + dt);
      DQMO_CHECK(frame.ok());
      cache.AdvanceTo(t);  // Evict objects that left the view for good.
      for (const PdqResult& r : *frame) {
        cache.Insert(r.motion, r.visible_times);
      }
      pdq_shipped += frame->size();
      // What the renderer actually draws this frame:
      max_visible = std::max(
          max_visible, static_cast<double>(cache.VisibleAt(t + dt).size()));
    }
    pdq_reads = (*pdq)->stats().node_reads;
    peak_cache = cache.peak_size();
  }

  std::printf("\ntour: %d frames at %.0f fps over %.0f time units\n", frames,
              fps, tour.TimeSpan().length());
  std::printf("%-28s %14s %16s\n", "", "disk accesses", "objects shipped");
  std::printf("%-28s %14llu %16llu\n", "naive (snapshot per frame)",
              static_cast<unsigned long long>(naive_reads),
              static_cast<unsigned long long>(naive_shipped));
  std::printf("%-28s %14llu %16llu\n", "PDQ + client cache",
              static_cast<unsigned long long>(pdq_reads),
              static_cast<unsigned long long>(pdq_shipped));
  std::printf("\nclient cache peaked at %zu entries; at most %.0f objects "
              "were on screen at once\n",
              peak_cache, max_visible);
  std::printf("I/O reduction: %.0fx   shipping reduction: %.0fx\n",
              static_cast<double>(naive_reads) /
                  static_cast<double>(std::max<uint64_t>(1, pdq_reads)),
              static_cast<double>(naive_shipped) /
                  static_cast<double>(std::max<uint64_t>(1, pdq_shipped)));
  return 0;
}
