// Interactive flight — the automated PDQ <-> NPDQ hand-off in action
// (future-work item (iv)). A pilot alternates cruise legs (predictable)
// with evasive maneuvers (unpredictable); the DynamicQuerySession decides
// per frame whether to serve from the running SPDQ or to fall back to
// NPDQ, and hands back once the motion stabilizes. The disappearance-time
// cache gives the renderer its per-frame visible set throughout.
//
//   $ ./build/examples/interactive_flight
#include <cstdio>

#include "client/result_cache.h"
#include "common/random.h"
#include "query/session.h"
#include "rtree/rtree.h"
#include "workload/data_generator.h"

using namespace dqmo;

int main() {
  DataGeneratorOptions data_options;
  data_options.num_objects = 1500;
  data_options.horizon = 60.0;
  data_options.seed = 404;
  auto data = GenerateMotionData(data_options);
  DQMO_CHECK(data.ok());

  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  DQMO_CHECK(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();
  for (const MotionSegment& m : *data) DQMO_CHECK_OK(tree->Insert(m));
  std::printf("airspace: %zu motion segments, %zu pages\n\n", data->size(),
              file.num_pages());

  DynamicQuerySession::Options options;
  options.window = 10.0;
  options.deviation_bound = 1.0;
  options.prediction_horizon = 6.0;
  options.stable_frames_to_predict = 5;
  DynamicQuerySession session(tree.get(), options);
  ResultCache cache;

  Rng rng(11);
  Vec pos(20, 20);
  Vec vel(1.5, 0.8);
  DynamicQuerySession::Mode last_mode =
      DynamicQuerySession::Mode::kNonPredictive;
  const double dt = 0.1;
  for (double t = 10.0; t < 50.0; t += dt) {
    // Flight model: cruise, but evasive jinking during [25, 30].
    const bool evasive = t >= 25.0 && t < 30.0;
    if (evasive) {
      vel[0] += rng.Uniform(-1.5, 1.5);
      vel[1] += rng.Uniform(-1.5, 1.5);
    }
    vel[0] = std::clamp(vel[0], -2.5, 2.5);
    vel[1] = std::clamp(vel[1], -2.5, 2.5);
    pos = pos + vel * dt;
    for (int d = 0; d < 2; ++d) {
      if (pos[d] < 6.0 || pos[d] > 94.0) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], 6.0, 94.0);
      }
    }

    auto frame = session.OnFrame(t, pos, vel);
    DQMO_CHECK(frame.ok());
    cache.AdvanceTo(t);
    for (const MotionSegment& m : frame->fresh) {
      // NPDQ frames do not carry visibility times; cache conservatively
      // until the motion's own end.
      cache.Insert(m, TimeSet(m.seg.time));
    }
    if (frame->mode != last_mode || frame->handoff) {
      std::printf(
          "t=%5.1f  %s -> %s (pos %.1f,%.1f; %zu fresh objects)\n", t,
          last_mode == DynamicQuerySession::Mode::kPredictive ? "PDQ "
                                                              : "NPDQ",
          frame->mode == DynamicQuerySession::Mode::kPredictive ? "PDQ "
                                                                : "NPDQ",
          pos[0], pos[1], frame->fresh.size());
      last_mode = frame->mode;
    }
  }

  const auto& stats = session.session_stats();
  std::printf("\nflight summary\n");
  std::printf("  predictive frames      : %llu\n",
              static_cast<unsigned long long>(stats.predictive_frames));
  std::printf("  non-predictive frames  : %llu\n",
              static_cast<unsigned long long>(stats.non_predictive_frames));
  std::printf("  hand-offs PDQ->NPDQ    : %llu\n",
              static_cast<unsigned long long>(stats.handoffs_to_npdq));
  std::printf("  hand-offs NPDQ->PDQ    : %llu\n",
              static_cast<unsigned long long>(stats.handoffs_to_pdq));
  std::printf("  prediction renewals    : %llu\n",
              static_cast<unsigned long long>(stats.pdq_renewals));
  std::printf("  total engine I/O       : %s\n",
              session.TotalStats().ToString().c_str());
  std::printf("  client cache peak      : %zu entries\n", cache.peak_size());
  return 0;
}
