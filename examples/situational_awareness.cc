// Situational awareness — the paper's second motivating scenario (Sect. 1):
// a command vehicle monitors a battlefield mixing mobile units (tracked by
// dead-reckoning sensors that stream updates into the index while queries
// run) and static landmarks (a special case of mobile objects). The
// observer maneuvers unpredictably, so the monitoring query runs as an
// NPDQ; a moving-kNN query reports the nearest contacts at every step.
//
//   $ ./build/examples/situational_awareness
#include <cstdio>
#include <map>

#include "common/random.h"
#include "motion/tracker.h"
#include "query/knn.h"
#include "query/npdq.h"
#include "rtree/rtree.h"

using namespace dqmo;

namespace {

constexpr double kFieldSize = 100.0;
constexpr double kHorizon = 30.0;
constexpr double kTick = 0.25;          // Sensor reporting granularity.
constexpr double kTrackThreshold = 0.5; // Dead-reckoning error bound.

/// Ground truth for one mobile unit: position + smoothly drifting velocity.
struct Unit {
  Vec pos;
  Vec vel;

  void Advance(Rng* rng, double dt) {
    vel[0] = std::clamp(vel[0] + rng->Uniform(-0.3, 0.3), -2.0, 2.0);
    vel[1] = std::clamp(vel[1] + rng->Uniform(-0.3, 0.3), -2.0, 2.0);
    for (int d = 0; d < 2; ++d) {
      pos[d] += vel[d] * dt;
      if (pos[d] < 0.0 || pos[d] > kFieldSize) {
        vel[d] = -vel[d];
        pos[d] = std::clamp(pos[d], 0.0, kFieldSize);
      }
    }
  }
};

}  // namespace

int main() {
  Rng rng(1991);
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  DQMO_CHECK(tree_or.ok());
  std::unique_ptr<RTree> tree = std::move(tree_or).value();

  // Static landmarks (obstructions, sensor posts, minefields): motions
  // with zero velocity spanning the whole exercise.
  const int kLandmarks = 200;
  for (ObjectId oid = 0; oid < kLandmarks; ++oid) {
    const Vec at(rng.Uniform(0, kFieldSize), rng.Uniform(0, kFieldSize));
    DQMO_CHECK_OK(tree->Insert(MotionSegment::FromUpdate(
        oid, at, Vec(0.0, 0.0), Interval(0.0, kHorizon))));
  }

  // Mobile units with dead-reckoning trackers. Updates stream into the
  // index DURING the mission (Sect. 4 update management).
  const int kUnits = 150;
  std::vector<Unit> units;
  std::vector<DeadReckoningTracker> trackers;
  for (int u = 0; u < kUnits; ++u) {
    Unit unit{Vec(rng.Uniform(0, kFieldSize), rng.Uniform(0, kFieldSize)),
              Vec(rng.Uniform(-1, 1), rng.Uniform(-1, 1))};
    trackers.emplace_back(static_cast<ObjectId>(kLandmarks + u),
                          kTrackThreshold, 0.0, unit.pos, unit.vel);
    units.push_back(unit);
  }

  // The command vehicle: maneuvers unpredictably (direction changes every
  // few ticks), monitoring a 16x16 window around itself.
  Unit observer{Vec(50, 50), Vec(1.5, 0.5)};
  const double window = 16.0;

  NpdqOptions npdq_options;  // Paper configuration.
  NonPredictiveDynamicQuery monitor(tree.get(), npdq_options);
  MovingKnnQuery::Options knn_options;
  knn_options.discontinuity_margin = kTrackThreshold;  // Tracker jumps.
  MovingKnnQuery nearest(tree.get(), 3, knn_options);

  std::printf("mission start: %d landmarks, %d mobile units, observer at "
              "(50, 50)\n\n",
              kLandmarks, kUnits);

  uint64_t updates_streamed = 0;
  std::map<ObjectId, int> contacts_seen;
  for (double t = kTick; t <= kHorizon; t += kTick) {
    // Ground truth advances; trackers report only when dead reckoning
    // drifts past the threshold (Sect. 3.1).
    for (int u = 0; u < kUnits; ++u) {
      units[static_cast<size_t>(u)].Advance(&rng, kTick);
      auto closed = trackers[static_cast<size_t>(u)].Observe(
          t, units[static_cast<size_t>(u)].pos,
          units[static_cast<size_t>(u)].vel);
      if (closed.has_value()) {
        DQMO_CHECK_OK(tree->Insert(*closed));
        ++updates_streamed;
      }
    }
    observer.Advance(&rng, kTick);

    // Monitoring query: everything inside the window this tick that the
    // previous tick did not already report.
    const StBox q(Box::Centered(observer.pos, window),
                  Interval(t - kTick, t));
    auto fresh = monitor.Execute(q);
    DQMO_CHECK(fresh.ok());
    for (const MotionSegment& m : *fresh) ++contacts_seen[m.oid];

    // Nearest three contacts right now.
    auto threats = nearest.At(t, observer.pos);
    DQMO_CHECK(threats.ok());

    if (static_cast<int>(t / kTick) % 24 == 0) {
      std::printf("t=%5.2f  obs=(%5.1f,%5.1f)  new contacts: %2zu  "
                  "nearest: ",
                  t, observer.pos[0], observer.pos[1], fresh->size());
      for (const Neighbor& n : *threats) {
        std::printf("#%u@%.1f ", n.motion.oid, n.distance);
      }
      std::printf("\n");
    }
  }

  std::printf("\nmission summary\n");
  std::printf("  sensor updates streamed into the index : %llu\n",
              static_cast<unsigned long long>(updates_streamed));
  std::printf("  distinct contacts reported             : %zu\n",
              contacts_seen.size());
  std::printf("  monitor I/O: %s\n", monitor.stats().ToString().c_str());
  std::printf("  kNN: %llu full searches, %llu answered from cache\n",
              static_cast<unsigned long long>(nearest.full_searches()),
              static_cast<unsigned long long>(nearest.cache_answers()));
  std::printf("  index grew to %llu segments (%zu pages), max speed %.2f\n",
              static_cast<unsigned long long>(tree->num_segments()),
              file.num_pages(), tree->max_speed());
  return 0;
}
