// Quickstart: index mobile objects, ask a snapshot query, then run a
// predictive dynamic query along a known trajectory.
//
//   $ ./build/examples/quickstart
//
// Walks through the core API: PageFile -> RTree -> Insert ->
// RangeSearch (snapshot) -> PredictiveDynamicQuery (dynamic).
#include <cstdio>

#include "common/random.h"
#include "query/pdq.h"
#include "rtree/rtree.h"
#include "storage/page_file.h"

using namespace dqmo;

int main() {
  // 1. A paged store (the simulated disk) and an empty 2-d R-tree in it.
  PageFile file;
  auto tree_or = RTree::Create(&file, RTree::Options());
  if (!tree_or.ok()) {
    std::fprintf(stderr, "create failed: %s\n",
                 tree_or.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<RTree> tree = std::move(tree_or).value();

  // 2. Insert motion updates. Each update says: object `oid` was at
  // `position` at time t_l and moves with `velocity` until t_h (Eq. (1) of
  // the paper). Here: 500 objects drifting randomly for 20 time units.
  Rng rng(7);
  for (ObjectId oid = 0; oid < 500; ++oid) {
    double t = 0.0;
    Vec pos(rng.Uniform(0, 100), rng.Uniform(0, 100));
    while (t < 20.0) {
      const double dt = rng.Uniform(0.5, 1.5);
      const Vec velocity(rng.Uniform(-1, 1), rng.Uniform(-1, 1));
      const MotionSegment update =
          MotionSegment::FromUpdate(oid, pos, velocity, Interval(t, t + dt));
      DQMO_CHECK_OK(tree->Insert(update));
      pos = update.seg.p1;
      t += dt;
    }
  }
  std::printf("indexed %llu motion segments in %zu pages (height %d)\n",
              static_cast<unsigned long long>(tree->num_segments()),
              file.num_pages(), tree->height());

  // 3. Snapshot query (Definition 3): who is in [40,60]x[40,60] during
  // time [10, 10.5]?
  const StBox snapshot(Box(Interval(40, 60), Interval(40, 60)),
                       Interval(10.0, 10.5));
  QueryStats stats;
  auto hits = tree->RangeSearch(snapshot, &stats);
  DQMO_CHECK(hits.ok());
  std::printf("\nsnapshot query %s -> %zu motions, %llu disk accesses\n",
              snapshot.ToString().c_str(), hits->size(),
              static_cast<unsigned long long>(stats.node_reads));

  // 4. Dynamic query (Definition 4): an observer flies from (20,50) to
  // (80,50) between t=5 and t=15, watching an 10x10 window. The PDQ
  // processor returns each visible object exactly once, with the times it
  // stays in view.
  std::vector<KeySnapshot> keys;
  keys.emplace_back(5.0, Box::Centered(Vec(20, 50), 10.0));
  keys.emplace_back(15.0, Box::Centered(Vec(80, 50), 10.0));
  auto trajectory = QueryTrajectory::Make(std::move(keys));
  DQMO_CHECK(trajectory.ok());
  auto pdq = PredictiveDynamicQuery::Make(tree.get(), *trajectory);
  DQMO_CHECK(pdq.ok());

  int frames = 0;
  int objects = 0;
  for (double t = 5.0; t < 15.0; t += 0.1) {  // 10 frames per time unit.
    auto frame = (*pdq)->Frame(t, t + 0.1);
    DQMO_CHECK(frame.ok());
    objects += static_cast<int>(frame->size());
    ++frames;
    if (!frame->empty() && frames % 20 == 0) {
      const PdqResult& first = frame->front();
      std::printf("  t=%.1f: +%zu objects entering view, e.g. oid %u "
                  "visible %s\n",
                  t, frame->size(), first.motion.oid,
                  first.visible_times.ToString().c_str());
    }
  }
  const QueryStats& pstats = (*pdq)->stats();
  std::printf("\ndynamic query: %d frames, %d objects retrieved "
              "(each exactly once), %llu total disk accesses\n",
              frames, objects,
              static_cast<unsigned long long>(pstats.node_reads));
  std::printf("a naive client would have paid ~%llu accesses *per frame* "
              "instead\n",
              static_cast<unsigned long long>(stats.node_reads));
  return 0;
}
